"""Layout containers: Layer, Layout, and Clip.

A ``Layout`` is a set of named ``Layer`` objects, each holding rectilinear
polygons.  Hotspot detection operates on ``Clip`` windows: a fixed-size
square region cut out of a layer, with a smaller concentric *core* region in
which defects are attributed to the clip (the contest convention — a clip is
a hotspot iff a defect's marker falls inside its core).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .polygon import Polygon, polygons_from_rect_soup
from .rect import Rect, bounding_box
from .spatial import GridIndex


@dataclass
class Layer:
    """A single mask layer: a bag of polygons with a spatial index."""

    name: str
    polygons: List[Polygon] = field(default_factory=list)
    _index: Optional[GridIndex] = field(default=None, repr=False, compare=False)

    def add(self, polygon: Polygon) -> None:
        self.polygons.append(polygon)
        self._index = None  # invalidate

    def add_rects(self, rects: Sequence[Rect]) -> None:
        """Add a soup of rects, grouping touching ones into polygons."""
        for poly in polygons_from_rect_soup(rects):
            self.add(poly)

    @property
    def bbox(self) -> Rect:
        if not self.polygons:
            raise ValueError(f"layer {self.name!r} is empty")
        return bounding_box(p.bbox for p in self.polygons)

    def _ensure_index(self) -> GridIndex:
        if self._index is None:
            index = GridIndex()
            for i, poly in enumerate(self.polygons):
                index.insert(i, poly.bbox)
            self._index = index
        return self._index

    def query(self, window: Rect) -> List[Polygon]:
        """Polygons whose bbox intersects the window."""
        index = self._ensure_index()
        return [self.polygons[i] for i in index.query(window)]

    def rects_in(self, window: Rect) -> List[Rect]:
        """All polygon rects clipped to the window."""
        out: List[Rect] = []
        for poly in self.query(window):
            for rect in poly.rects:
                inter = rect.intersection(window)
                if inter is not None:
                    out.append(inter)
        return out


@dataclass
class Layout:
    """A named design holding one or more layers."""

    name: str
    layers: Dict[str, Layer] = field(default_factory=dict)

    def layer(self, name: str) -> Layer:
        """Get-or-create a layer by name."""
        if name not in self.layers:
            self.layers[name] = Layer(name)
        return self.layers[name]

    @property
    def bbox(self) -> Rect:
        boxes = [
            layer.bbox for layer in self.layers.values() if layer.polygons
        ]
        if not boxes:
            raise ValueError(f"layout {self.name!r} is empty")
        return bounding_box(boxes)


@dataclass(frozen=True)
class Clip:
    """A square window of a single layer, the unit of hotspot detection.

    ``window`` is the full field the detector may look at; ``core`` is the
    concentric sub-window defects are attributed to.  ``rects`` are the
    layer shapes clipped to the window, translated so the window's lower-left
    corner is the origin (clip-local coordinates).
    """

    window: Rect
    core: Rect
    rects: Tuple[Rect, ...]
    layer_name: str = "metal1"
    tag: str = ""

    def __post_init__(self) -> None:
        if not self.window.contains(self.core):
            raise ValueError("core must lie inside the window")

    @property
    def size(self) -> int:
        """Side length of the (square) window in nm."""
        return self.window.width

    def local_rects(self) -> Tuple[Rect, ...]:
        """Shapes in clip-local coordinates (window origin at (0, 0))."""
        dx, dy = -self.window.x1, -self.window.y1
        return tuple(r.translate(dx, dy) for r in self.rects)

    def local_core(self) -> Rect:
        return self.core.translate(-self.window.x1, -self.window.y1)

    def density(self) -> float:
        """Fraction of the window area covered by shapes (rects disjoint)."""
        if self.window.area == 0:
            return 0.0
        return sum(r.area for r in self.rects) / self.window.area


def extract_clip(
    layer: Layer,
    center: Tuple[int, int],
    window_size: int,
    core_size: int,
    tag: str = "",
) -> Clip:
    """Cut a clip of ``window_size`` nm centered at ``center`` out of a layer."""
    if core_size > window_size:
        raise ValueError("core_size cannot exceed window_size")
    cx, cy = center
    window = Rect.from_center(cx, cy, window_size, window_size)
    core = Rect.from_center(cx, cy, core_size, core_size)
    rects = tuple(layer.rects_in(window))
    return Clip(
        window=window, core=core, rects=rects, layer_name=layer.name, tag=tag
    )


def tile_centers(
    region: Rect, window_size: int, step: int
) -> List[Tuple[int, int]]:
    """Clip centers tiling a region with the given stride.

    Windows are kept fully inside ``region``; a region smaller than the
    window yields no centers.
    """
    if step <= 0:
        raise ValueError("step must be positive")
    half = window_size // 2
    xs = list(range(region.x1 + half, region.x2 - window_size + half + 1, step))
    ys = list(range(region.y1 + half, region.y2 - window_size + half + 1, step))
    return [(x, y) for y in ys for x in xs]

"""Layout containers: Layer, Layout, and Clip.

A ``Layout`` is a set of named ``Layer`` objects, each holding rectilinear
polygons.  Hotspot detection operates on ``Clip`` windows: a fixed-size
square region cut out of a layer, with a smaller concentric *core* region in
which defects are attributed to the clip (the contest convention — a clip is
a hotspot iff a defect's marker falls inside its core).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .polygon import Polygon, polygons_from_rect_soup
from .rect import Rect, bounding_box
from .spatial import GridIndex


@dataclass
class Layer:
    """A single mask layer: a bag of polygons with a spatial index."""

    name: str
    polygons: List[Polygon] = field(default_factory=list)
    _index: Optional[GridIndex] = field(default=None, repr=False, compare=False)

    def add(self, polygon: Polygon) -> None:
        self.polygons.append(polygon)
        self._index = None  # invalidate

    def add_rects(self, rects: Sequence[Rect]) -> None:
        """Add a soup of rects, grouping touching ones into polygons."""
        for poly in polygons_from_rect_soup(rects):
            self.add(poly)

    @property
    def bbox(self) -> Rect:
        if not self.polygons:
            raise ValueError(f"layer {self.name!r} is empty")
        return bounding_box(p.bbox for p in self.polygons)

    def _ensure_index(self) -> GridIndex:
        if self._index is None:
            index = GridIndex()
            for i, poly in enumerate(self.polygons):
                index.insert(i, poly.bbox)
            self._index = index
        return self._index

    def query(self, window: Rect) -> List[Polygon]:
        """Polygons whose bbox intersects the window."""
        index = self._ensure_index()
        return [self.polygons[i] for i in index.query(window)]

    def rects_in(self, window: Rect) -> List[Rect]:
        """All polygon rects clipped to the window."""
        out: List[Rect] = []
        for poly in self.query(window):
            for rect in poly.rects:
                inter = rect.intersection(window)
                if inter is not None:
                    out.append(inter)
        return out


@dataclass
class Layout:
    """A named design holding one or more layers."""

    name: str
    layers: Dict[str, Layer] = field(default_factory=dict)

    def layer(self, name: str) -> Layer:
        """Get-or-create a layer by name."""
        if name not in self.layers:
            self.layers[name] = Layer(name)
        return self.layers[name]

    @property
    def bbox(self) -> Rect:
        boxes = [
            layer.bbox for layer in self.layers.values() if layer.polygons
        ]
        if not boxes:
            raise ValueError(f"layout {self.name!r} is empty")
        return bounding_box(boxes)


@dataclass(frozen=True)
class Clip:
    """A square window of a single layer, the unit of hotspot detection.

    ``window`` is the full field the detector may look at; ``core`` is the
    concentric sub-window defects are attributed to.  ``rects`` are the
    layer shapes clipped to the window, translated so the window's lower-left
    corner is the origin (clip-local coordinates).
    """

    window: Rect
    core: Rect
    rects: Tuple[Rect, ...]
    layer_name: str = "metal1"
    tag: str = ""

    def __post_init__(self) -> None:
        if not self.window.contains(self.core):
            raise ValueError("core must lie inside the window")

    @property
    def size(self) -> int:
        """Side length of the (square) window in nm."""
        return self.window.width

    def local_rects(self) -> Tuple[Rect, ...]:
        """Shapes in clip-local coordinates (window origin at (0, 0))."""
        dx, dy = -self.window.x1, -self.window.y1
        return tuple(r.translate(dx, dy) for r in self.rects)

    def local_core(self) -> Rect:
        return self.core.translate(-self.window.x1, -self.window.y1)

    def density(self) -> float:
        """Fraction of the window area covered by shapes (rects disjoint)."""
        if self.window.area == 0:
            return 0.0
        return sum(r.area for r in self.rects) / self.window.area


def extract_clip(
    layer: Layer,
    center: Tuple[int, int],
    window_size: int,
    core_size: int,
    tag: str = "",
) -> Clip:
    """Cut a clip of ``window_size`` nm centered at ``center`` out of a layer."""
    if core_size > window_size:
        raise ValueError("core_size cannot exceed window_size")
    cx, cy = center
    window = Rect.from_center(cx, cy, window_size, window_size)
    core = Rect.from_center(cx, cy, core_size, core_size)
    rects = tuple(layer.rects_in(window))
    return Clip(
        window=window, core=core, rects=rects, layer_name=layer.name, tag=tag
    )


def iter_tile_centers(
    region: Rect, window_size: int, step: int
) -> Iterator[Tuple[int, int]]:
    """Lazily yield clip centers tiling a region with the given stride.

    Windows are kept fully inside ``region``; a region smaller than the
    window yields no centers.  The generator form lets full-chip scans
    stream windows without materializing the center list (millions of
    windows on a real block) — :func:`tile_centers` is the eager version.
    """
    if step <= 0:
        raise ValueError("step must be positive")
    half = window_size // 2
    for y in range(region.y1 + half, region.y2 - window_size + half + 1, step):
        for x in range(region.x1 + half, region.x2 - window_size + half + 1, step):
            yield (x, y)


def count_tile_centers(region: Rect, window_size: int, step: int) -> int:
    """Number of centers :func:`iter_tile_centers` will yield (O(1))."""
    if step <= 0:
        raise ValueError("step must be positive")
    nx = max(0, (region.width - window_size) // step + 1)
    ny = max(0, (region.height - window_size) // step + 1)
    return nx * ny


def tile_centers(
    region: Rect, window_size: int, step: int
) -> List[Tuple[int, int]]:
    """Clip centers tiling a region with the given stride (eager list)."""
    return list(iter_tile_centers(region, window_size, step))


def clip_fingerprint(clip: Clip) -> str:
    """Canonical content hash of a clip's window-local geometry.

    Two clips extracted at different absolute positions hash identically
    iff their window size, core placement, and shapes in window-local
    coordinates coincide — exactly the condition under which every
    detector in the library (all of which consume local geometry only)
    produces the same score.  Real layouts are dominated by repeated
    cells, so keying a score cache on this fingerprint turns most of a
    full-chip scan into lookups.

    The hash is a 128-bit BLAKE2b over the sorted local rects, stable
    across processes and interpreter runs (unlike builtin ``hash``).
    """
    core = clip.local_core()
    parts: List[int] = [
        clip.window.width,
        clip.window.height,
        core.x1,
        core.y1,
        core.x2,
        core.y2,
    ]
    for rect in sorted(clip.local_rects()):
        parts.extend(rect.as_tuple())
    digest = hashlib.blake2b(
        ",".join(map(str, parts)).encode("ascii"), digest_size=16
    )
    return digest.hexdigest()

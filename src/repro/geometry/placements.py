"""Instance-placement fingerprints: hierarchy-aware region hashing.

:func:`~repro.geometry.layout.clip_fingerprint` keys the engine's dedup
cache at *window* granularity.  Arrayed designs (``replicate_block``)
repeat far more than single windows: whole cell placements — thousands
of windows each — are exact translated copies of one another.
:func:`region_fingerprint` lifts the same canonical-hash idea to an
arbitrary region: a 128-bit BLAKE2b over the region's dimensions plus
every layer rect clipped to the region, in *region-local* coordinates.

Two regions hash identically iff they contain the same geometry at the
same offsets relative to their own origin — exactly the condition under
which a scan of one region (whose tile grid sits at the same phase)
produces byte-identical scores for the other.  The shard runner uses
this to score one placement of a repeated cell and replay the scores
for every other placement, and the incremental re-scan mode uses it to
decide which shards' score cones a layout edit invalidated.

:class:`InstanceArray` is the planner-facing description of a
``replicate_block``-style array: the cell footprint plus the placement
grid and pitch, from which the planner derives a shard size that snaps
to placement boundaries so interior shards become translated copies.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List

from .layout import Layer
from .rect import Rect

__all__ = ["InstanceArray", "region_fingerprint"]


def region_fingerprint(layer: Layer, region: Rect) -> str:
    """Canonical content hash of a region's geometry, translation-free.

    The hash covers the region's width and height and the sorted list of
    layer rects clipped to the region, each translated so the region's
    lower-left corner is the origin.  It is stable across processes and
    interpreter runs (BLAKE2b, not builtin ``hash``), and deliberately
    independent of *which polygons* the rects came from: only the
    resolved geometry inside the region matters, mirroring what
    :func:`~repro.geometry.layout.clip_fingerprint` sees per window.
    """
    parts: List[int] = [region.width, region.height]
    local = sorted(
        rect.translate(-region.x1, -region.y1)
        for rect in layer.rects_in(region)
    )
    for rect in local:
        parts.extend(rect.as_tuple())
    digest = hashlib.blake2b(
        ",".join(map(str, parts)).encode("ascii"), digest_size=16
    )
    return digest.hexdigest()


@dataclass(frozen=True)
class InstanceArray:
    """A ``replicate_block``-style placement array: cell × (nx, ny) grid.

    ``cell`` is the footprint of placement ``(0, 0)``; placement
    ``(ix, iy)`` sits at ``cell`` translated by ``(ix * pitch_x,
    iy * pitch_y)``.  Pitches may exceed the cell extent (routing
    channels between placements) but not undercut it.
    """

    cell: Rect
    nx: int
    ny: int
    pitch_x: int
    pitch_y: int

    def __post_init__(self) -> None:
        if self.nx < 1 or self.ny < 1:
            raise ValueError("nx and ny must be >= 1")
        if self.pitch_x < self.cell.width or self.pitch_y < self.cell.height:
            raise ValueError("pitch must be >= the cell extent per axis")

    def placement(self, ix: int, iy: int) -> Rect:
        """The footprint of placement ``(ix, iy)``."""
        if not (0 <= ix < self.nx and 0 <= iy < self.ny):
            raise ValueError(
                f"placement ({ix}, {iy}) outside {self.nx}x{self.ny} array"
            )
        return self.cell.translate(ix * self.pitch_x, iy * self.pitch_y)

    @property
    def extent(self) -> Rect:
        """Bounding box of every placement in the array."""
        last = self.placement(self.nx - 1, self.ny - 1)
        return Rect(self.cell.x1, self.cell.y1, last.x2, last.y2)

"""Multi-layer clips: aligned windows across a metal layer and a via layer.

Single-layer clips miss an entire defect class: metal-to-via failures,
where the via prints but the metal above no longer encloses it (ASP-DAC'19
"adaptive squish" motivation).  ``MultiLayerClip`` carries one
:class:`~repro.geometry.layout.Clip` per layer over the *same* window, so
rasters align pixel-for-pixel and cross-layer checks are pure array ops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .layout import Clip, Layer, extract_clip
from .rect import Rect


@dataclass(frozen=True)
class MultiLayerClip:
    """Aligned per-layer clips sharing one window/core."""

    clips: Tuple[Tuple[str, Clip], ...]  # ordered (layer_name, clip) pairs

    def __post_init__(self) -> None:
        if not self.clips:
            raise ValueError("MultiLayerClip needs at least one layer")
        windows = {clip.window for _, clip in self.clips}
        cores = {clip.core for _, clip in self.clips}
        if len(windows) != 1 or len(cores) != 1:
            raise ValueError("all layers must share the same window and core")

    @property
    def window(self) -> Rect:
        return self.clips[0][1].window

    @property
    def core(self) -> Rect:
        return self.clips[0][1].core

    @property
    def layer_names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.clips)

    def layer(self, name: str) -> Clip:
        for layer_name, clip in self.clips:
            if layer_name == name:
                return clip
        raise KeyError(f"no layer {name!r} in {self.layer_names}")


def extract_multilayer_clip(
    layers: Dict[str, Layer],
    center: Tuple[int, int],
    window_nm: int,
    core_nm: int,
    tag: str = "",
) -> MultiLayerClip:
    """Cut one aligned clip per layer (sorted layer-name order)."""
    if not layers:
        raise ValueError("need at least one layer")
    pairs = tuple(
        (name, extract_clip(layers[name], center, window_nm, core_nm, tag=tag))
        for name in sorted(layers)
    )
    return MultiLayerClip(clips=pairs)


def enclosure_violations(
    metal: Clip, via: Clip, min_enclosure_nm: int
) -> List[Rect]:
    """Design-rule enclosure check: vias the metal under-covers.

    Every via rect must sit inside some metal rect with at least
    ``min_enclosure_nm`` margin on every side.  Returns the violating via
    rects (window-absolute coordinates).
    """
    if metal.window != via.window:
        raise ValueError("clips must share a window")
    out: List[Rect] = []
    for v in via.rects:
        required = v.expand(min_enclosure_nm)
        if not any(m.contains(required) for m in metal.rects):
            out.append(v)
    return out

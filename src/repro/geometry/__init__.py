"""Rectilinear layout geometry: the substrate every other package builds on.

Public surface:

* :class:`Rect`, :class:`Polygon` — integer-nm geometry values,
* :class:`Layer`, :class:`Layout`, :class:`Clip` — design containers,
* :func:`extract_clip`, :func:`tile_centers` — clip windowing,
* :func:`rasterize_clip`, :func:`rasterize_rects` — pixel rendering,
* :func:`rasterize_region`, :class:`RasterPlane`,
  :func:`raster_fingerprint` — shared-plane rendering for the scan path,
* :func:`transform_clip`, :data:`D4_NAMES` — orientation augmentation,
* :func:`region_fingerprint`, :class:`InstanceArray` — instance-level
  placement fingerprints for hierarchy-aware dedup,
* :class:`GridIndex` — spatial hashing,
* :class:`DesignRules`, :func:`check_layer`, :func:`is_clean` — DRC,
* ``save_layout``/``load_layout``, ``save_clips``/``load_clips`` — I/O.
"""

from .drc import DesignRules, Violation, check_layer, check_spacing, is_clean
from .gdsii import GDSIIError, read_gdsii, write_gdsii
from .gdsio import (
    ClipFormatError,
    load_clips,
    load_layout,
    save_clips,
    save_layout,
)
from .layout import (
    Clip,
    Layer,
    Layout,
    clip_fingerprint,
    count_tile_centers,
    extract_clip,
    iter_tile_centers,
    tile_centers,
)
from .multilayer import (
    MultiLayerClip,
    enclosure_violations,
    extract_multilayer_clip,
)
from .placements import InstanceArray, region_fingerprint
from .polygon import Polygon, polygons_from_rect_soup
from .rasterize import (
    RasterPlane,
    core_slice,
    raster_fingerprint,
    rasterize_clip,
    rasterize_rects,
    rasterize_region,
)
from .rect import Rect, bounding_box, merge_touching, union_area
from .spatial import GridIndex
from .transform import D4_NAMES, clip_orientations, transform_clip

__all__ = [
    "Rect",
    "Polygon",
    "polygons_from_rect_soup",
    "bounding_box",
    "merge_touching",
    "union_area",
    "Layer",
    "Layout",
    "Clip",
    "extract_clip",
    "tile_centers",
    "iter_tile_centers",
    "count_tile_centers",
    "clip_fingerprint",
    "region_fingerprint",
    "InstanceArray",
    "rasterize_clip",
    "rasterize_rects",
    "rasterize_region",
    "RasterPlane",
    "raster_fingerprint",
    "core_slice",
    "transform_clip",
    "clip_orientations",
    "D4_NAMES",
    "GridIndex",
    "DesignRules",
    "Violation",
    "check_layer",
    "check_spacing",
    "is_clean",
    "save_layout",
    "load_layout",
    "save_clips",
    "load_clips",
    "ClipFormatError",
    "read_gdsii",
    "write_gdsii",
    "GDSIIError",
    "MultiLayerClip",
    "extract_multilayer_clip",
    "enclosure_violations",
]

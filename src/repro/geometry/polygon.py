"""Rectilinear polygons.

Layout shapes on a metal layer are rectilinear (Manhattan) polygons.  For
simulation and feature extraction we mostly work with their decomposition
into axis-aligned rectangles; ``Polygon`` keeps both views consistent:

* built either from a counter-clockwise rectilinear vertex ring or from a
  set of touching rects (the union must be connected and hole-free for the
  ring reconstruction to be meaningful — layout wires satisfy this),
* exposes exact ``area``/``bbox``/point-containment,
* decomposes to horizontal slab rects for rasterization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from .rect import Rect, bounding_box, merge_touching, union_area

Point = Tuple[int, int]


@dataclass(frozen=True)
class Polygon:
    """A rectilinear polygon stored as its rect decomposition.

    ``rects`` are pairwise non-overlapping (interiors disjoint) and their
    union is connected.  ``Polygon`` is a value object: construction
    normalizes the decomposition to maximal horizontal slabs so that two
    polygons with equal point sets compare equal.
    """

    rects: Tuple[Rect, ...]

    def __post_init__(self) -> None:
        if not self.rects:
            raise ValueError("polygon needs at least one rect")

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_rects(rects: Sequence[Rect]) -> "Polygon":
        """Build from possibly-overlapping rects whose union is connected."""
        rects = [r for r in rects if not r.empty()]
        if not rects:
            raise ValueError("polygon needs at least one non-empty rect")
        groups = merge_touching(rects)
        if len(groups) != 1:
            raise ValueError(
                f"rects form {len(groups)} disconnected components, expected 1"
            )
        return Polygon(tuple(_to_slabs(rects)))

    @staticmethod
    def rectangle(rect: Rect) -> "Polygon":
        if rect.empty():
            raise ValueError("degenerate rectangle")
        return Polygon((rect,))

    @staticmethod
    def from_ring(ring: Sequence[Point]) -> "Polygon":
        """Build from a closed rectilinear vertex ring (CW or CCW).

        The ring must alternate horizontal/vertical edges; the final vertex
        may repeat the first.  Decomposition is by horizontal slab cuts.
        """
        pts = list(ring)
        if len(pts) >= 2 and pts[0] == pts[-1]:
            pts.pop()
        if len(pts) < 4:
            raise ValueError("rectilinear ring needs >= 4 vertices")
        for (x1, y1), (x2, y2) in zip(pts, pts[1:] + pts[:1]):
            if x1 != x2 and y1 != y2:
                raise ValueError("ring edge is neither horizontal nor vertical")
        rects = _ring_to_slabs(pts)
        if not rects:
            raise ValueError("ring encloses no area")
        return Polygon(tuple(rects))

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def area(self) -> int:
        return sum(r.area for r in self.rects)

    @property
    def bbox(self) -> Rect:
        return bounding_box(self.rects)

    def contains_point(self, x: float, y: float) -> bool:
        return any(r.contains_point(x, y) for r in self.rects)

    def translate(self, dx: int, dy: int) -> "Polygon":
        return Polygon(tuple(r.translate(dx, dy) for r in self.rects))

    def intersects(self, other: "Polygon") -> bool:
        return any(
            a.intersects(b) for a in self.rects for b in other.rects
        )

    def min_gap(self, other: "Polygon") -> float:
        """Minimum Euclidean gap between two polygons (0 when touching)."""
        return min(a.gap(b) for a in self.rects for b in other.rects)


# ----------------------------------------------------------------------
# decomposition helpers
# ----------------------------------------------------------------------
def _to_slabs(rects: Sequence[Rect]) -> List[Rect]:
    """Normalize a union of rects to maximal horizontal slab rects.

    Cuts the union at every distinct y coordinate, merges x-intervals per
    slab, then vertically coalesces slabs with identical x-interval sets.
    The result is a canonical non-overlapping decomposition.
    """
    ys = sorted({r.y1 for r in rects} | {r.y2 for r in rects})
    rows: List[Tuple[int, int, Tuple[Tuple[int, int], ...]]] = []
    for ya, yb in zip(ys[:-1], ys[1:]):
        if yb <= ya:
            continue
        intervals = _merge_intervals(
            [(r.x1, r.x2) for r in rects if r.y1 <= ya and r.y2 >= yb]
        )
        if intervals:
            rows.append((ya, yb, tuple(intervals)))
    # vertically coalesce adjacent rows with identical interval sets
    out: List[Rect] = []
    i = 0
    while i < len(rows):
        ya, yb, ivs = rows[i]
        j = i + 1
        while j < len(rows) and rows[j][0] == yb and rows[j][2] == ivs:
            yb = rows[j][1]
            j += 1
        for x1, x2 in ivs:
            out.append(Rect(x1, ya, x2, yb))
        i = j
    return out


def _merge_intervals(intervals: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Merge overlapping/touching 1-D integer intervals."""
    if not intervals:
        return []
    intervals = sorted(intervals)
    out = [intervals[0]]
    for lo, hi in intervals[1:]:
        plo, phi = out[-1]
        if lo <= phi:
            out[-1] = (plo, max(phi, hi))
        else:
            out.append((lo, hi))
    return [(lo, hi) for lo, hi in out if hi > lo]


def _ring_to_slabs(pts: List[Point]) -> List[Rect]:
    """Decompose a rectilinear simple-polygon ring into horizontal slabs.

    Classic scanline: at each y-slab, the vertical edges crossing the slab
    sorted by x alternate inside/outside (even-odd rule).
    """
    vedges: List[Tuple[int, int, int]] = []  # (x, ylo, yhi)
    for (x1, y1), (x2, y2) in zip(pts, pts[1:] + pts[:1]):
        if x1 == x2 and y1 != y2:
            vedges.append((x1, min(y1, y2), max(y1, y2)))
    ys = sorted({y for _, ylo, yhi in vedges for y in (ylo, yhi)})
    rects: List[Rect] = []
    for ya, yb in zip(ys[:-1], ys[1:]):
        if yb <= ya:
            continue
        xs = sorted(x for x, ylo, yhi in vedges if ylo <= ya and yhi >= yb)
        for xa, xb in zip(xs[0::2], xs[1::2]):
            if xb > xa:
                rects.append(Rect(xa, ya, xb, yb))
    return _to_slabs(rects) if rects else []


def polygons_from_rect_soup(rects: Sequence[Rect]) -> List[Polygon]:
    """Group a flat list of rects into connected polygons."""
    return [Polygon(tuple(_to_slabs(group))) for group in merge_touching(list(rects))]

"""Rasterization of layout geometry to numpy grids.

The lithography simulator and the CNN detectors both consume pixel images of
clips.  ``rasterize_rects`` converts integer-nm rects to a binary occupancy
grid at a given pixel pitch; partial pixels along shape edges are filled by
exact area coverage, giving an anti-aliased gray image when
``antialias=True`` (the optics model prefers this) or a hard 0/1 image
otherwise.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from .layout import Clip
from .rect import Rect


def rasterize_rects(
    rects: Sequence[Rect],
    window: Rect,
    pixel_nm: int,
    antialias: bool = True,
) -> np.ndarray:
    """Render rects into a ``(H, W)`` float grid covering ``window``.

    Pixel ``[i, j]`` covers nm region
    ``[x1 + j*p, x1 + (j+1)*p) x [y1 + i*p, y1 + (i+1)*p)``
    with row 0 at the *bottom* of the window (math orientation).  Values are
    the covered-area fraction in [0, 1]; overlapping rects saturate at 1.
    """
    if pixel_nm <= 0:
        raise ValueError("pixel_nm must be positive")
    if window.width % pixel_nm or window.height % pixel_nm:
        raise ValueError(
            f"window {window.width}x{window.height} nm not divisible by "
            f"pixel pitch {pixel_nm} nm"
        )
    width = window.width // pixel_nm
    height = window.height // pixel_nm
    grid = np.zeros((height, width), dtype=np.float64)
    for rect in rects:
        inter = rect.intersection(window)
        if inter is None:
            continue
        _paint(grid, inter, window, pixel_nm)
    np.clip(grid, 0.0, 1.0, out=grid)
    if not antialias:
        grid = (grid >= 0.5).astype(np.float64)
    return grid


def _paint(grid: np.ndarray, rect: Rect, window: Rect, p: int) -> None:
    """Accumulate one rect's per-pixel coverage fractions into the grid."""
    # rect coordinates in pixel units relative to the window origin
    fx1 = (rect.x1 - window.x1) / p
    fy1 = (rect.y1 - window.y1) / p
    fx2 = (rect.x2 - window.x1) / p
    fy2 = (rect.y2 - window.y1) / p
    j1, j2 = int(np.floor(fx1)), int(np.ceil(fx2))
    i1, i2 = int(np.floor(fy1)), int(np.ceil(fy2))
    # per-column x coverage and per-row y coverage; outer product fills block
    cols = np.arange(j1, j2)
    rows = np.arange(i1, i2)
    cov_x = np.minimum(cols + 1, fx2) - np.maximum(cols, fx1)
    cov_y = np.minimum(rows + 1, fy2) - np.maximum(rows, fy1)
    np.clip(cov_x, 0.0, 1.0, out=cov_x)
    np.clip(cov_y, 0.0, 1.0, out=cov_y)
    grid[i1:i2, j1:j2] += np.outer(cov_y, cov_x)


def rasterize_clip(
    clip: Clip, pixel_nm: int, antialias: bool = True
) -> np.ndarray:
    """Render a clip's shapes over its window."""
    return rasterize_rects(clip.rects, clip.window, pixel_nm, antialias=antialias)


def core_slice(clip: Clip, pixel_nm: int) -> Tuple[slice, slice]:
    """Row/col slices of the core region inside the clip's raster grid."""
    core = clip.local_core()
    i1 = core.y1 // pixel_nm
    i2 = -(-core.y2 // pixel_nm)  # ceil division
    j1 = core.x1 // pixel_nm
    j2 = -(-core.x2 // pixel_nm)
    return slice(i1, i2), slice(j1, j2)

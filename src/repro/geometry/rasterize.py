"""Rasterization of layout geometry to numpy grids.

The lithography simulator and the CNN detectors both consume pixel images of
clips.  ``rasterize_rects`` converts integer-nm rects to a binary occupancy
grid at a given pixel pitch; partial pixels along shape edges are filled by
exact area coverage, giving an anti-aliased gray image when
``antialias=True`` (the optics model prefers this) or a hard 0/1 image
otherwise.

``rasterize_region`` is the scan-path counterpart: it renders a whole layer
region into one shared :class:`RasterPlane` so overlapping scan windows can
be sliced out as views instead of re-rasterizing the same geometry once per
window.  ``raster_fingerprint`` gives such window slices a canonical content
hash (the raster-plane analogue of
:func:`~repro.geometry.layout.clip_fingerprint`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from .layout import Clip, Layer
from .rect import Rect


def rasterize_rects(
    rects: Sequence[Rect],
    window: Rect,
    pixel_nm: int,
    antialias: bool = True,
) -> np.ndarray:
    """Render rects into a ``(H, W)`` float grid covering ``window``.

    Pixel ``[i, j]`` covers nm region
    ``[x1 + j*p, x1 + (j+1)*p) x [y1 + i*p, y1 + (i+1)*p)``
    with row 0 at the *bottom* of the window (math orientation).  Values are
    the covered-area fraction in [0, 1]; overlapping rects saturate at 1.
    """
    if pixel_nm <= 0:
        raise ValueError("pixel_nm must be positive")
    if window.width % pixel_nm or window.height % pixel_nm:
        raise ValueError(
            f"window {window.width}x{window.height} nm not divisible by "
            f"pixel pitch {pixel_nm} nm"
        )
    width = window.width // pixel_nm
    height = window.height // pixel_nm
    grid = np.zeros((height, width), dtype=np.float64)
    for rect in rects:
        inter = rect.intersection(window)
        if inter is None:
            continue
        _paint(grid, inter, window, pixel_nm)
    np.clip(grid, 0.0, 1.0, out=grid)
    if not antialias:
        grid = (grid >= 0.5).astype(np.float64)
    return grid


def _paint(grid: np.ndarray, rect: Rect, window: Rect, p: int) -> None:
    """Accumulate one rect's per-pixel coverage fractions into the grid."""
    # rect coordinates in pixel units relative to the window origin
    fx1 = (rect.x1 - window.x1) / p
    fy1 = (rect.y1 - window.y1) / p
    fx2 = (rect.x2 - window.x1) / p
    fy2 = (rect.y2 - window.y1) / p
    j1, j2 = int(np.floor(fx1)), int(np.ceil(fx2))
    i1, i2 = int(np.floor(fy1)), int(np.ceil(fy2))
    # per-column x coverage and per-row y coverage; outer product fills block
    cols = np.arange(j1, j2)
    rows = np.arange(i1, i2)
    cov_x = np.minimum(cols + 1, fx2) - np.maximum(cols, fx1)
    cov_y = np.minimum(rows + 1, fy2) - np.maximum(rows, fy1)
    np.clip(cov_x, 0.0, 1.0, out=cov_x)
    np.clip(cov_y, 0.0, 1.0, out=cov_y)
    grid[i1:i2, j1:j2] += np.outer(cov_y, cov_x)


def rasterize_clip(
    clip: Clip, pixel_nm: int, antialias: bool = True
) -> np.ndarray:
    """Render a clip's shapes over its window."""
    return rasterize_rects(clip.rects, clip.window, pixel_nm, antialias=antialias)


@dataclass(frozen=True)
class RasterPlane:
    """A rasterized layer region that scan windows slice views out of.

    ``grid[i, j]`` covers the nm region
    ``[region.x1 + j*p, region.x1 + (j+1)*p) x
    [region.y1 + i*p, region.y1 + (i+1)*p)`` with row 0 at the *bottom*
    (the same orientation as :func:`rasterize_rects`).
    """

    region: Rect
    pixel_nm: int
    grid: np.ndarray

    @property
    def shape(self) -> Tuple[int, int]:
        return self.grid.shape  # type: ignore[return-value]

    def covers(self, window: Rect) -> bool:
        """True when ``window`` lies inside the plane, pixel-aligned."""
        p = self.pixel_nm
        return (
            self.region.contains(window)
            and (window.x1 - self.region.x1) % p == 0
            and (window.y1 - self.region.y1) % p == 0
            and window.width % p == 0
            and window.height % p == 0
        )

    def window(self, window: Rect) -> np.ndarray:
        """The ``(H, W)`` sub-grid covering ``window`` — a view, not a copy.

        The window must lie fully inside the plane and be aligned to the
        pixel grid; anything else would silently shift geometry by a
        sub-pixel amount, so it raises instead.
        """
        if not self.covers(window):
            raise ValueError(
                f"window {window} not pixel-aligned inside plane region "
                f"{self.region} (pixel {self.pixel_nm} nm)"
            )
        p = self.pixel_nm
        i1 = (window.y1 - self.region.y1) // p
        j1 = (window.x1 - self.region.x1) // p
        return self.grid[i1 : i1 + window.height // p, j1 : j1 + window.width // p]


def rasterize_region(
    layer: Layer,
    region: Rect,
    pixel_nm: int,
    antialias: bool = True,
) -> RasterPlane:
    """Render every layer shape intersecting ``region`` into one plane.

    Each piece of geometry is painted exactly once, however many scan
    windows overlap it — the win that makes the raster-plane scan path
    fast.  A window slice of the plane matches
    :func:`rasterize_clip` of the equivalent clip to float rounding
    (~1e-15): both paint the same per-pixel coverage fractions, merely
    relative to different origins.
    """
    if pixel_nm <= 0:
        raise ValueError("pixel_nm must be positive")
    if region.width % pixel_nm or region.height % pixel_nm:
        raise ValueError(
            f"region {region.width}x{region.height} nm not divisible by "
            f"pixel pitch {pixel_nm} nm"
        )
    grid = np.zeros(
        (region.height // pixel_nm, region.width // pixel_nm), dtype=np.float64
    )
    for poly in layer.query(region):
        for rect in poly.rects:
            inter = rect.intersection(region)
            if inter is None:
                continue
            _paint(grid, inter, region, pixel_nm)
    np.clip(grid, 0.0, 1.0, out=grid)
    if not antialias:
        grid = (grid >= 0.5).astype(np.float64)
    return RasterPlane(region=region, pixel_nm=pixel_nm, grid=grid)


#: quantization steps per unit coverage used by :func:`raster_fingerprint`;
#: coarse enough to absorb float rounding between the clip and plane
#: rasterization orders, fine enough that distinct geometry never collides
#: (the smallest real coverage difference at pixel pitch p is 1/p^2).
_FINGERPRINT_QUANT = 4096


def raster_fingerprint(raster: np.ndarray) -> str:
    """Canonical content hash of a window raster (quantized).

    The raster-plane scan path cannot afford per-window geometry queries
    just to compute :func:`~repro.geometry.layout.clip_fingerprint`, so it
    dedups on the raster content itself: coverage values are quantized to
    1/4096 (absorbing the ~1e-15 float jitter between rasterization
    orders) and hashed together with the shape.  Keys carry an ``r:``
    prefix so they can never collide with clip-geometry fingerprints in a
    shared :class:`~repro.runtime.cache.ScoreCache`.
    """
    raster = np.asarray(raster)
    quantized = np.rint(raster * _FINGERPRINT_QUANT).astype(np.uint16)
    digest = hashlib.blake2b(digest_size=16)
    digest.update(np.asarray(quantized.shape, dtype=np.int64).tobytes())
    digest.update(np.ascontiguousarray(quantized).tobytes())
    return "r:" + digest.hexdigest()


def core_slice(clip: Clip, pixel_nm: int) -> Tuple[slice, slice]:
    """Row/col slices of the core region inside the clip's raster grid."""
    core = clip.local_core()
    i1 = core.y1 // pixel_nm
    i2 = -(-core.y2 // pixel_nm)  # ceil division
    j1 = core.x1 // pixel_nm
    j2 = -(-core.x2 // pixel_nm)
    return slice(i1, i2), slice(j1, j2)

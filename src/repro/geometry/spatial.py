"""Spatial hashing for rectangle queries.

``GridIndex`` buckets item bounding boxes into fixed-size cells so window
queries touch only nearby items.  Layout layers use it to answer "which
polygons intersect this clip window" without scanning every polygon.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from .rect import Rect


class GridIndex:
    """A uniform-grid spatial hash mapping int ids to bounding rects."""

    def __init__(self, cell_size: int = 2048) -> None:
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self.cell_size = cell_size
        self._cells: Dict[Tuple[int, int], List[int]] = {}
        self._boxes: Dict[int, Rect] = {}

    def __len__(self) -> int:
        return len(self._boxes)

    def _cells_of(self, rect: Rect) -> Iterable[Tuple[int, int]]:
        cs = self.cell_size
        cx1, cy1 = rect.x1 // cs, rect.y1 // cs
        # include the cell a closing edge lands on, so rects and queries
        # that merely *touch* across a cell boundary still meet in a bucket
        cx2, cy2 = rect.x2 // cs, rect.y2 // cs
        for cy in range(cy1, cy2 + 1):
            for cx in range(cx1, cx2 + 1):
                yield (cx, cy)

    def insert(self, item_id: int, rect: Rect) -> None:
        if item_id in self._boxes:
            raise KeyError(f"duplicate item id {item_id}")
        self._boxes[item_id] = rect
        for cell in self._cells_of(rect):
            self._cells.setdefault(cell, []).append(item_id)

    def remove(self, item_id: int) -> None:
        rect = self._boxes.pop(item_id)
        for cell in self._cells_of(rect):
            bucket = self._cells.get(cell)
            if bucket is not None:
                bucket.remove(item_id)
                if not bucket:
                    del self._cells[cell]

    def query(self, window: Rect) -> List[int]:
        """Ids of items whose bbox touches the window (sorted, unique)."""
        seen: Set[int] = set()
        for cell in self._cells_of(window):
            for item_id in self._cells.get(cell, ()):
                if item_id not in seen and self._boxes[item_id].touches(window):
                    seen.add(item_id)
        return sorted(seen)

    def nearest_gap(self, rect: Rect, max_radius: int) -> Dict[int, float]:
        """Items within ``max_radius`` of ``rect`` mapped to their gap."""
        window = rect.expand(max_radius)
        out: Dict[int, float] = {}
        for item_id in self.query(window):
            gap = self._boxes[item_id].gap(rect)
            if gap <= max_radius:
                out[item_id] = gap
        return out

"""Minimal real GDSII (binary) stream reader/writer.

Enough of the GDSII record set to interchange rectilinear polygon layouts
with real EDA tools: ``HEADER, BGNLIB, LIBNAME, UNITS, BGNSTR, STRNAME,
BOUNDARY, LAYER, DATATYPE, XY, ENDEL, ENDSTR, ENDLIB``.  Polygons are
written as BOUNDARY elements with closed rectilinear rings; on read,
rings are decomposed back through :meth:`Polygon.from_ring`.

Layer numbering: the writer assigns layer numbers in sorted layer-name
order starting at 1 and stores the name map in the library name; readers
from other tools see standard numbered layers.  Coordinates are written
in database units of 1 nm (UNITS = 1e-3 user units per db unit, 1e-9 m).
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Dict, List, Tuple, Union

from .layout import Layout
from .polygon import Polygon

PathLike = Union[str, Path]

# record types
_HEADER = 0x0002
_BGNLIB = 0x0102
_LIBNAME = 0x0206
_UNITS = 0x0305
_BGNSTR = 0x0502
_STRNAME = 0x0606
_ENDSTR = 0x0700
_BOUNDARY = 0x0800
_LAYER = 0x0D02
_DATATYPE = 0x0E02
_XY = 0x1003
_ENDEL = 0x1100
_ENDLIB = 0x0400

_DUMMY_TIME = (2017, 1, 1, 0, 0, 0)  # GDSII timestamps, fixed for determinism


class GDSIIError(ValueError):
    """Raised on malformed GDSII streams."""


def _record(rec_type: int, payload: bytes = b"") -> bytes:
    length = 4 + len(payload)
    if length % 2:
        payload += b"\0"
        length += 1
    return struct.pack(">HH", length, rec_type) + payload


def _ascii(text: str) -> bytes:
    data = text.encode("ascii")
    if len(data) % 2:
        data += b"\0"
    return data


def _gds_real8(value: float) -> bytes:
    """Encode a float as GDSII 8-byte excess-64 real."""
    if value == 0.0:
        return b"\0" * 8
    sign = 0
    if value < 0:
        sign = 0x80
        value = -value
    exponent = 64
    # normalize mantissa into [1/16, 1)
    while value >= 1.0:
        value /= 16.0
        exponent += 1
    while value < 1.0 / 16.0:
        value *= 16.0
        exponent -= 1
    mantissa = int(value * (1 << 56))
    out = bytes([sign | exponent]) + mantissa.to_bytes(7, "big")
    return out


def _parse_real8(data: bytes) -> float:
    sign = -1.0 if data[0] & 0x80 else 1.0
    exponent = (data[0] & 0x7F) - 64
    mantissa = int.from_bytes(data[1:8], "big") / float(1 << 56)
    return sign * mantissa * (16.0**exponent)


def write_gdsii(layout: Layout, path: PathLike) -> Dict[str, int]:
    """Write a layout as a GDSII stream; returns the layer-name -> number map."""
    layer_numbers = {
        name: i + 1 for i, name in enumerate(sorted(layout.layers))
    }
    chunks: List[bytes] = [
        _record(_HEADER, struct.pack(">h", 600)),  # stream version 6
        _record(_BGNLIB, struct.pack(">12h", *(_DUMMY_TIME * 2))),
        _record(_LIBNAME, _ascii(layout.name or "LIB")),
        # 1 db unit = 1e-3 user units (um) = 1e-9 m  ->  db unit is 1 nm
        _record(_UNITS, _gds_real8(1e-3) + _gds_real8(1e-9)),
        _record(_BGNSTR, struct.pack(">12h", *(_DUMMY_TIME * 2))),
        _record(_STRNAME, _ascii("TOP")),
    ]
    for name, layer in sorted(layout.layers.items()):
        number = layer_numbers[name]
        for poly in layer.polygons:
            for rect in poly.rects:
                # each rect as a closed 5-point ring (GDSII convention)
                pts = list(rect.corners()) + [rect.corners()[0]]
                xy = b"".join(struct.pack(">ii", x, y) for x, y in pts)
                chunks += [
                    _record(_BOUNDARY),
                    _record(_LAYER, struct.pack(">h", number)),
                    _record(_DATATYPE, struct.pack(">h", 0)),
                    _record(_XY, xy),
                    _record(_ENDEL),
                ]
    chunks += [_record(_ENDSTR), _record(_ENDLIB)]
    Path(path).write_bytes(b"".join(chunks))
    return layer_numbers


def _iter_records(data: bytes):
    pos = 0
    while pos + 4 <= len(data):
        length, rec_type = struct.unpack(">HH", data[pos : pos + 4])
        if length < 4:
            raise GDSIIError(f"bad record length {length} at offset {pos}")
        payload = data[pos + 4 : pos + length]
        yield rec_type, payload
        pos += length
    if pos != len(data):
        raise GDSIIError("trailing bytes after last record")


def read_gdsii(path: PathLike) -> Tuple[Layout, float]:
    """Read a GDSII stream into a Layout; returns (layout, db_unit_meters).

    Coordinates are kept in raw database units (for streams written by
    :func:`write_gdsii`, that is nm).  Boundary rings become polygons;
    layer numbers become layer names ``L<number>`` unless the stream came
    from this writer, in which case numbering is positional anyway.
    """
    data = Path(path).read_bytes()
    layout = Layout("GDSII")
    db_unit_m = 1e-9
    current_layer: int = 0
    in_boundary = False
    pending_xy: List[Tuple[int, int]] = []
    saw_header = False
    for rec_type, payload in _iter_records(data):
        if rec_type == _HEADER:
            saw_header = True
        elif rec_type == _LIBNAME:
            layout.name = payload.rstrip(b"\0").decode("ascii", "replace")
        elif rec_type == _UNITS:
            if len(payload) < 16:
                raise GDSIIError("short UNITS record")
            db_unit_m = _parse_real8(payload[8:16])
        elif rec_type == _BOUNDARY:
            in_boundary = True
            pending_xy = []
            current_layer = 0
        elif rec_type == _LAYER and in_boundary:
            (current_layer,) = struct.unpack(">h", payload[:2])
        elif rec_type == _XY and in_boundary:
            n = len(payload) // 8
            pending_xy = [
                struct.unpack(">ii", payload[i * 8 : i * 8 + 8])
                for i in range(n)
            ]
        elif rec_type == _ENDEL and in_boundary:
            in_boundary = False
            if len(pending_xy) >= 4:
                ring = pending_xy[:-1]  # drop the closing repeat
                layer = layout.layer(f"L{current_layer}")
                layer.add(Polygon.from_ring(ring))
        elif rec_type == _ENDLIB:
            break
    if not saw_header:
        raise GDSIIError("not a GDSII stream (no HEADER record)")
    return layout, db_unit_m

"""Axis-aligned integer rectangle algebra.

All layout geometry in :mod:`repro` is expressed in integer nanometers.
``Rect`` is the primitive every other geometric structure builds on: layout
polygons are decomposed into rects, rasterization iterates rects, and the
spatial index stores rect bounding boxes.

A ``Rect`` is half-open in neither axis: it covers the closed-open region
``[x1, x2) x [y1, y2)`` when rasterized, but set-algebra operations
(intersection, union area, containment) treat it as the solid box with the
given corner coordinates.  Degenerate (zero-width or zero-height) rects are
permitted as values but report ``empty() == True`` and behave as the empty
set in the algebra.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple


@dataclass(frozen=True, order=True)
class Rect:
    """A closed axis-aligned rectangle ``[x1, x2] x [y1, y2]`` in integer nm.

    Invariant: ``x1 <= x2`` and ``y1 <= y2`` (enforced at construction).
    """

    x1: int
    y1: int
    x2: int
    y2: int

    def __post_init__(self) -> None:
        if self.x1 > self.x2 or self.y1 > self.y2:
            raise ValueError(
                f"malformed rect: ({self.x1},{self.y1})..({self.x2},{self.y2})"
            )

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def width(self) -> int:
        return self.x2 - self.x1

    @property
    def height(self) -> int:
        return self.y2 - self.y1

    @property
    def area(self) -> int:
        return self.width * self.height

    @property
    def perimeter(self) -> int:
        return 2 * (self.width + self.height)

    @property
    def center(self) -> Tuple[float, float]:
        return ((self.x1 + self.x2) / 2.0, (self.y1 + self.y2) / 2.0)

    def empty(self) -> bool:
        """True if the rect has zero area."""
        return self.x1 >= self.x2 or self.y1 >= self.y2

    def corners(self) -> Tuple[Tuple[int, int], ...]:
        """The four corner points, counter-clockwise from lower-left."""
        return (
            (self.x1, self.y1),
            (self.x2, self.y1),
            (self.x2, self.y2),
            (self.x1, self.y2),
        )

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_points(p1: Tuple[int, int], p2: Tuple[int, int]) -> "Rect":
        """Build the bounding rect of two arbitrary points."""
        (x1, y1), (x2, y2) = p1, p2
        return Rect(min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2))

    @staticmethod
    def from_center(cx: int, cy: int, width: int, height: int) -> "Rect":
        """Build a rect of the given size centered (to integer floor) on a point."""
        if width < 0 or height < 0:
            raise ValueError("width/height must be non-negative")
        x1 = cx - width // 2
        y1 = cy - height // 2
        return Rect(x1, y1, x1 + width, y1 + height)

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------
    def contains_point(self, x: float, y: float) -> bool:
        return self.x1 <= x <= self.x2 and self.y1 <= y <= self.y2

    def contains(self, other: "Rect") -> bool:
        return (
            self.x1 <= other.x1
            and self.y1 <= other.y1
            and self.x2 >= other.x2
            and self.y2 >= other.y2
        )

    def intersects(self, other: "Rect") -> bool:
        """True if the rects share interior area (touching edges don't count)."""
        return (
            self.x1 < other.x2
            and other.x1 < self.x2
            and self.y1 < other.y2
            and other.y1 < self.y2
        )

    def touches(self, other: "Rect") -> bool:
        """True if the rects share at least an edge segment or overlap."""
        return (
            self.x1 <= other.x2
            and other.x1 <= self.x2
            and self.y1 <= other.y2
            and other.y1 <= self.y2
        )

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------
    def intersection(self, other: "Rect") -> Optional["Rect"]:
        """The overlapping rect, or None if the interiors are disjoint."""
        x1 = max(self.x1, other.x1)
        y1 = max(self.y1, other.y1)
        x2 = min(self.x2, other.x2)
        y2 = min(self.y2, other.y2)
        if x1 >= x2 or y1 >= y2:
            return None
        return Rect(x1, y1, x2, y2)

    def union_bbox(self, other: "Rect") -> "Rect":
        """Bounding box of both rects (not the set union)."""
        return Rect(
            min(self.x1, other.x1),
            min(self.y1, other.y1),
            max(self.x2, other.x2),
            max(self.y2, other.y2),
        )

    def subtract(self, other: "Rect") -> List["Rect"]:
        """Set difference ``self - other`` as up to four disjoint rects."""
        inter = self.intersection(other)
        if inter is None:
            return [] if self.empty() else [self]
        pieces: List[Rect] = []
        # bottom band
        if self.y1 < inter.y1:
            pieces.append(Rect(self.x1, self.y1, self.x2, inter.y1))
        # top band
        if inter.y2 < self.y2:
            pieces.append(Rect(self.x1, inter.y2, self.x2, self.y2))
        # left band (within the vertical span of the intersection)
        if self.x1 < inter.x1:
            pieces.append(Rect(self.x1, inter.y1, inter.x1, inter.y2))
        # right band
        if inter.x2 < self.x2:
            pieces.append(Rect(inter.x2, inter.y1, self.x2, inter.y2))
        return pieces

    def expand(self, margin: int) -> "Rect":
        """Grow (or shrink, for negative margin) by ``margin`` on all sides.

        Shrinking below a point collapses to the degenerate center rect.
        """
        x1, y1 = self.x1 - margin, self.y1 - margin
        x2, y2 = self.x2 + margin, self.y2 + margin
        if x1 > x2:
            x1 = x2 = (x1 + x2) // 2
        if y1 > y2:
            y1 = y2 = (y1 + y2) // 2
        return Rect(x1, y1, x2, y2)

    def translate(self, dx: int, dy: int) -> "Rect":
        return Rect(self.x1 + dx, self.y1 + dy, self.x2 + dx, self.y2 + dy)

    def scale(self, factor: int) -> "Rect":
        """Scale all coordinates by an integer factor about the origin."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return Rect(
            self.x1 * factor, self.y1 * factor, self.x2 * factor, self.y2 * factor
        )

    # ------------------------------------------------------------------
    # distances
    # ------------------------------------------------------------------
    def gap(self, other: "Rect") -> float:
        """Euclidean gap between the two solid boxes (0 if they touch/overlap)."""
        dx = max(self.x1 - other.x2, other.x1 - self.x2, 0)
        dy = max(self.y1 - other.y2, other.y1 - self.y2, 0)
        return math.hypot(dx, dy)

    def manhattan_gap(self, other: "Rect") -> int:
        """L-inf style spacing: max of the axis gaps, as DRC spacing uses."""
        dx = max(self.x1 - other.x2, other.x1 - self.x2, 0)
        dy = max(self.y1 - other.y2, other.y1 - self.y2, 0)
        return max(dx, dy)

    def as_tuple(self) -> Tuple[int, int, int, int]:
        return (self.x1, self.y1, self.x2, self.y2)


# ----------------------------------------------------------------------
# free functions over collections of rects
# ----------------------------------------------------------------------
def bounding_box(rects: Iterable[Rect]) -> Rect:
    """Bounding box of a non-empty iterable of rects."""
    it: Iterator[Rect] = iter(rects)
    try:
        first = next(it)
    except StopIteration:
        raise ValueError("bounding_box() of an empty collection") from None
    x1, y1, x2, y2 = first.as_tuple()
    for r in it:
        x1 = min(x1, r.x1)
        y1 = min(y1, r.y1)
        x2 = max(x2, r.x2)
        y2 = max(y2, r.y2)
    return Rect(x1, y1, x2, y2)


def union_area(rects: Sequence[Rect]) -> int:
    """Exact area of the union of rects via coordinate-compressed sweep.

    O(n^2) in the number of distinct x-slabs times rects, which is fine for
    the clip-scale collections (tens to hundreds of rects) used here.
    """
    rects = [r for r in rects if not r.empty()]
    if not rects:
        return 0
    xs = sorted({r.x1 for r in rects} | {r.x2 for r in rects})
    total = 0
    for xa, xb in zip(xs[:-1], xs[1:]):
        slab_w = xb - xa
        if slab_w <= 0:
            continue
        # collect y-intervals of rects spanning this x-slab
        ys = sorted(
            (r.y1, r.y2) for r in rects if r.x1 <= xa and r.x2 >= xb
        )
        covered = 0
        cur_lo: Optional[int] = None
        cur_hi: Optional[int] = None
        for y1, y2 in ys:
            if cur_hi is None or y1 > cur_hi:
                if cur_hi is not None:
                    covered += cur_hi - cur_lo  # type: ignore[operator]
                cur_lo, cur_hi = y1, y2
            else:
                cur_hi = max(cur_hi, y2)
        if cur_hi is not None:
            covered += cur_hi - cur_lo  # type: ignore[operator]
        total += slab_w * covered
    return total


def merge_touching(rects: Sequence[Rect]) -> List[List[Rect]]:
    """Group rects into connected components under the ``touches`` relation.

    Used to identify distinct nets/polygons in a soup of rects.  Union-find
    over the pairwise touch graph; clip-scale inputs keep this cheap.
    """
    n = len(rects)
    parent = list(range(n))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        ri, rj = find(i), find(j)
        if ri != rj:
            parent[rj] = ri

    for i in range(n):
        for j in range(i + 1, n):
            if rects[i].touches(rects[j]):
                union(i, j)

    groups: dict[int, List[Rect]] = {}
    for i, r in enumerate(rects):
        groups.setdefault(find(i), []).append(r)
    return list(groups.values())

"""A minimal design-rule checker for synthetic layout legality.

The benchmark generator must emit layouts that are *legal* by construction
rules (minimum width / spacing / area) yet still lithographically marginal —
hotspots in this literature are DRC-clean patterns that nonetheless fail to
print.  This module verifies the legality half.

Rules are expressed per layer in integer nm:

* ``min_width`` — every polygon must be at least this wide at every point
  (checked per decomposed slab rect against the run direction),
* ``min_spacing`` — distinct polygons must be at least this far apart
  (L-inf spacing, the usual Manhattan DRC metric),
* ``min_area`` — every polygon's area must reach this floor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from .layout import Layer
from .polygon import Polygon
from .rect import Rect


@dataclass(frozen=True)
class DesignRules:
    """Per-layer DRC parameters (integer nm)."""

    min_width: int = 32
    min_spacing: int = 32
    min_area: int = 0

    def __post_init__(self) -> None:
        if self.min_width <= 0 or self.min_spacing <= 0 or self.min_area < 0:
            raise ValueError("design rules must be positive (area non-negative)")


@dataclass(frozen=True)
class Violation:
    """A single DRC violation with its kind, location and measured value."""

    kind: str  # "width" | "spacing" | "area"
    where: Rect
    measured: float
    required: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.kind} violation at {self.where.as_tuple()}: "
            f"{self.measured} < {self.required}"
        )


def check_polygon_width(poly: Polygon, rules: DesignRules) -> List[Violation]:
    """Width check on the slab decomposition.

    A slab thinner than ``min_width`` in *both* axes is a definite width
    violation.  A slab thin in one axis only is legal when it extends a
    wider run (e.g. the slabs of an L-bend); we approximate the true
    medial-axis check by requiring the thin axis of every slab to be either
    >= min_width or flush-extended by a neighboring slab, which holds for
    the rect decomposition of legal wire shapes.
    """
    out: List[Violation] = []
    rects = poly.rects
    for r in rects:
        thin = min(r.width, r.height)
        if thin >= rules.min_width:
            continue
        # thin slab: legal only if some touching slab covers its thin span
        absorbed = any(
            other is not r and other.touches(r)
            and _covers_thin_axis(r, other)
            for other in rects
        )
        if not absorbed:
            out.append(
                Violation("width", r, measured=thin, required=rules.min_width)
            )
    return out


def _covers_thin_axis(thin_rect: Rect, other: Rect) -> bool:
    """True if ``other`` flush-covers ``thin_rect`` along its thin axis."""
    if thin_rect.width <= thin_rect.height:
        # thin in x: other must span thin_rect's full x extent
        return other.x1 <= thin_rect.x1 and other.x2 >= thin_rect.x2
    return other.y1 <= thin_rect.y1 and other.y2 >= thin_rect.y2


def check_spacing(polys: Sequence[Polygon], rules: DesignRules) -> List[Violation]:
    """Pairwise L-inf spacing between distinct polygons."""
    out: List[Violation] = []
    for i in range(len(polys)):
        for j in range(i + 1, len(polys)):
            a, b = polys[i], polys[j]
            if not a.bbox.expand(rules.min_spacing).intersects(b.bbox):
                continue
            gap = min(
                ra.manhattan_gap(rb) for ra in a.rects for rb in b.rects
            )
            if gap < rules.min_spacing:
                where = a.bbox.union_bbox(b.bbox)
                out.append(
                    Violation(
                        "spacing", where, measured=gap, required=rules.min_spacing
                    )
                )
    return out


def check_layer(layer: Layer, rules: DesignRules) -> List[Violation]:
    """All width, spacing and area violations on a layer."""
    out: List[Violation] = []
    for poly in layer.polygons:
        out.extend(check_polygon_width(poly, rules))
        if poly.area < rules.min_area:
            out.append(
                Violation("area", poly.bbox, poly.area, rules.min_area)
            )
    out.extend(check_spacing(layer.polygons, rules))
    return out


def is_clean(layer: Layer, rules: DesignRules) -> bool:
    """True when the layer has no DRC violations."""
    return not check_layer(layer, rules)

"""Layout and clip serialization.

Two formats:

* **JSON layout** — a readable GDS-like structure (layout name, layers,
  polygons as rect lists).  Good for small layouts, examples and tests.
* **Clip text format** — one clip per record in a compact line-oriented
  format close in spirit to the ICCAD-2012 contest's clip distribution:

  ::

      CLIP <tag> WINDOW x1 y1 x2 y2 CORE x1 y1 x2 y2 LAYER <name> LABEL <0|1|->
      RECT x1 y1 x2 y2
      ...
      END

  ``LABEL -`` means unlabeled.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from .layout import Clip, Layout
from .polygon import Polygon
from .rect import Rect

PathLike = Union[str, Path]


# ----------------------------------------------------------------------
# JSON layouts
# ----------------------------------------------------------------------
def layout_to_dict(layout: Layout) -> dict:
    return {
        "name": layout.name,
        "layers": {
            name: [[r.as_tuple() for r in poly.rects] for poly in layer.polygons]
            for name, layer in layout.layers.items()
        },
    }


def layout_from_dict(data: dict) -> Layout:
    layout = Layout(name=data["name"])
    for lname, polys in data["layers"].items():
        layer = layout.layer(lname)
        for rect_list in polys:
            layer.add(Polygon(tuple(Rect(*map(int, r)) for r in rect_list)))
    return layout


def save_layout(layout: Layout, path: PathLike) -> None:
    Path(path).write_text(json.dumps(layout_to_dict(layout), indent=1))


def load_layout(path: PathLike) -> Layout:
    return layout_from_dict(json.loads(Path(path).read_text()))


# ----------------------------------------------------------------------
# clip text format
# ----------------------------------------------------------------------
class ClipFormatError(ValueError):
    """Raised when a clip text file is malformed."""


def _format_clip(clip: Clip, label: Optional[int]) -> str:
    lbl = "-" if label is None else str(int(label))
    lines = [
        "CLIP {tag} WINDOW {w} CORE {c} LAYER {layer} LABEL {lbl}".format(
            tag=clip.tag or "-",
            w=" ".join(map(str, clip.window.as_tuple())),
            c=" ".join(map(str, clip.core.as_tuple())),
            layer=clip.layer_name,
            lbl=lbl,
        )
    ]
    for r in clip.rects:
        lines.append("RECT {} {} {} {}".format(*r.as_tuple()))
    lines.append("END")
    return "\n".join(lines)


def save_clips(
    clips: Sequence[Clip],
    path: PathLike,
    labels: Optional[Sequence[int]] = None,
) -> None:
    """Write clips (optionally with 0/1 labels) to a clip text file."""
    if labels is not None and len(labels) != len(clips):
        raise ValueError("labels length must match clips length")
    records = [
        _format_clip(clip, None if labels is None else labels[i])
        for i, clip in enumerate(clips)
    ]
    Path(path).write_text("\n".join(records) + "\n")


def _parse_header(tokens: List[str], lineno: int) -> Tuple[str, Rect, Rect, str, Optional[int]]:
    """Parse a CLIP header line into (tag, window, core, layer, label)."""
    if (
        len(tokens) != 16
        or tokens[2] != "WINDOW"
        or tokens[7] != "CORE"
        or tokens[12] != "LAYER"
        or tokens[14] != "LABEL"
    ):
        raise ClipFormatError(f"line {lineno}: malformed CLIP header")
    tag = "" if tokens[1] == "-" else tokens[1]
    try:
        window = Rect(*map(int, tokens[3:7]))
        core = Rect(*map(int, tokens[8:12]))
    except ValueError as exc:
        raise ClipFormatError(f"line {lineno}: bad coordinates ({exc})") from exc
    layer_name = tokens[13]
    label = None if tokens[15] == "-" else int(tokens[15])
    return tag, window, core, layer_name, label


def load_clips(path: PathLike) -> Tuple[List[Clip], List[Optional[int]]]:
    """Read a clip text file; returns (clips, labels) with None for unlabeled."""
    clips: List[Clip] = []
    labels: List[Optional[int]] = []
    header: Optional[Tuple[str, Rect, Rect, str, Optional[int]]] = None
    rects: List[Rect] = []
    for lineno, raw in enumerate(Path(path).read_text().splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        tokens = line.split()
        kind = tokens[0]
        if kind == "CLIP":
            if header is not None:
                raise ClipFormatError(f"line {lineno}: nested CLIP record")
            header = _parse_header(tokens, lineno)
            rects = []
        elif kind == "RECT":
            if header is None:
                raise ClipFormatError(f"line {lineno}: RECT outside CLIP record")
            if len(tokens) != 5:
                raise ClipFormatError(f"line {lineno}: malformed RECT")
            try:
                rects.append(Rect(*map(int, tokens[1:5])))
            except ValueError as exc:
                raise ClipFormatError(f"line {lineno}: bad RECT ({exc})") from exc
        elif kind == "END":
            if header is None:
                raise ClipFormatError(f"line {lineno}: END outside CLIP record")
            tag, window, core, layer_name, label = header
            clips.append(
                Clip(
                    window=window,
                    core=core,
                    rects=tuple(rects),
                    layer_name=layer_name,
                    tag=tag,
                )
            )
            labels.append(label)
            header = None
        else:
            raise ClipFormatError(f"line {lineno}: unknown record {kind!r}")
    if header is not None:
        raise ClipFormatError("unterminated CLIP record at end of file")
    return clips, labels

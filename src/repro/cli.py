"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``gen-data``    generate and cache the benchmark suite
``list``        list registered detectors
``evaluate``    run detectors on benchmarks and print the contest table
``train``       train the CNN detector on a labeled clip file, save weights
``score``       score a clip file with a saved CNN model
``analyze``     litho-analyze a clip file and print per-clip verdicts
``scan``        sweep a saved CNN model over a GDSII layout layer
``scan-chip``   production full-chip scan: cache, cascade, shards, re-scan
``tune-cascade``  sweep prefilter cutoffs for zero-miss cascade skipping
``serve``       run the queued scan service (HTTP job API + worker fleet)
``submit``      submit a GDSII layer to a running scan service
``pattern``     print a clip's raster as ASCII art (debugging aid)
``lint``        per-file AST rules + project-wide semantic pass (CI gate)
``check``       run the detector/extractor conformance harness (CI gate)
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

import numpy as np


def _cmd_gen_data(args: argparse.Namespace) -> int:
    from .bench.workloads import cache_dir, get_suite

    suite = get_suite(scale=args.scale, seed=args.seed)
    for benchmark in suite:
        print(benchmark.summary())
    print(f"cached under {cache_dir()}")
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    from .core.registry import available

    for name in available():
        print(name)
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from .bench.harness import pivot_metric, run_matrix
    from .bench.tables import format_table
    from .bench.workloads import get_suite
    from .core.registry import create

    suite = get_suite(scale=args.scale, seed=args.seed)
    if args.benchmarks:
        wanted = set(args.benchmarks.split(","))
        suite = [b for b in suite if b.name in wanted]
    names = args.detectors.split(",")
    factories = {name: (lambda n=name: create(n)) for name in names}
    results = run_matrix(factories, suite, seed=args.seed)
    for metric in ("accuracy", "false_alarms", "odst_seconds"):
        rows = pivot_metric(results, metric=metric, fmt="{:.1f}")
        print(format_table(rows, title=metric))
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from .data.dataset import ClipDataset
    from .geometry.gdsio import load_clips
    from .nn import CNNDetector, CNNDetectorConfig

    clips, labels = load_clips(args.clips)
    if any(lbl is None for lbl in labels):
        print("training needs a fully labeled clip file", file=sys.stderr)
        return 2
    dataset = ClipDataset(name=str(args.clips), clips=clips, labels=np.asarray(labels))
    detector = CNNDetector(CNNDetectorConfig(epochs=args.epochs))
    report = detector.fit(dataset, rng=np.random.default_rng(args.seed))
    detector.save(args.out)
    print(
        f"trained on {dataset.summary()} in {report.train_seconds:.1f}s; "
        f"threshold={detector.threshold:.3f}; saved to {args.out}"
    )
    return 0


def _cmd_score(args: argparse.Namespace) -> int:
    from .geometry.gdsio import load_clips
    from .nn import CNNDetector

    detector = CNNDetector.load(args.model)
    clips, labels = load_clips(args.clips)
    scores = detector.predict_proba(clips)
    flagged = scores >= detector.threshold
    for clip, score, flag, label in zip(clips, scores, flagged, labels):
        known = "" if label is None else f" (label={label})"
        verdict = "HOTSPOT" if flag else "ok"
        print(f"{clip.tag or '-'}: {score:.3f} -> {verdict}{known}")
    print(f"-- {int(flagged.sum())}/{len(clips)} flagged")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from .geometry.gdsio import load_clips
    from .litho.hotspot import HotspotOracle

    clips, labels = load_clips(args.clips)
    oracle = HotspotOracle()
    n_hot = 0
    for i, clip in enumerate(clips):
        analysis = oracle.analyze(clip)
        n_hot += analysis.is_hotspot
        verdict = "HOTSPOT" if analysis.is_hotspot else "ok"
        kinds = ",".join(analysis.defect_kinds) or "-"
        known = "" if labels[i] is None else f" (label={labels[i]})"
        print(f"{clip.tag or i}: {verdict} [{kinds}]{known}")
    print(f"-- {n_hot}/{len(clips)} hotspots")
    return 0


def _render_heat(grid: "np.ndarray", threshold: float) -> List[str]:
    """ASCII heat-map rows (top row first).

    Cells the scan never covered (``step_nm`` not evenly tiling the
    region leaves NaN holes in the grid) render as ``' '`` rather than
    being silently treated as cold.
    """
    rows = []
    for row in grid[::-1]:
        rows.append(
            "".join(
                " "
                if np.isnan(s)
                else "#"
                if s >= threshold
                else "+"
                if s >= 0.2
                else "."
                for s in row
            )
        )
    return rows


def _cmd_scan(args: argparse.Namespace) -> int:
    from .core.scan import scan_layer
    from .geometry.gdsii import read_gdsii
    from .nn import CNNDetector

    layout, _db_unit = read_gdsii(args.gds)
    if args.layer not in layout.layers:
        print(
            f"layer {args.layer!r} not in {sorted(layout.layers)}",
            file=sys.stderr,
        )
        return 2
    layer = layout.layer(args.layer)
    detector = CNNDetector.load(args.model)
    region = layer.bbox.expand(-args.margin)
    try:
        result = scan_layer(detector, layer, region)
    except ValueError:
        print(
            f"region {region.width}x{region.height} nm is smaller than one "
            f"768 nm clip window (margin {args.margin} nm); nothing to scan",
            file=sys.stderr,
        )
        return 2
    print(
        f"{len(result.clips)} windows, {result.n_flagged} flagged "
        f"({100 * result.flag_ratio:.0f}%)"
    )
    for row in _render_heat(result.heat_map(), detector.threshold):
        print(row)
    return 0


def _parse_overrides(pairs: List[str]) -> dict:
    """Parse repeated ``--set key=value`` options into typed kwargs."""
    overrides = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise ValueError(f"--set expects key=value, got {pair!r}")
        value: object
        lowered = raw.lower()
        if lowered in ("true", "false"):
            value = lowered == "true"
        elif lowered in ("none", "null"):
            value = None
        else:
            try:
                value = int(raw)
            except ValueError:
                try:
                    value = float(raw)
                except ValueError:
                    value = raw
        overrides[key.replace("-", "_")] = value
    return overrides


def _cmd_scan_chip(args: argparse.Namespace) -> int:
    from .geometry.gdsii import read_gdsii
    from .runtime import CascadeDetector, EngineConfig, scan_chip

    if (args.model is None) == (args.detector is None):
        print("pass exactly one of --model or --detector", file=sys.stderr)
        return 2
    if args.cascade_tuning and not args.cascade:
        print("--cascade-tuning requires --cascade", file=sys.stderr)
        return 2
    layout, _db_unit = read_gdsii(args.gds)
    if args.layer not in layout.layers:
        print(
            f"layer {args.layer!r} not in {sorted(layout.layers)}",
            file=sys.stderr,
        )
        return 2
    layer = layout.layer(args.layer)

    try:
        overrides = _parse_overrides(args.set or [])
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    faults = None
    if args.inject_faults:
        from .runtime import FaultPolicy

        try:
            faults = FaultPolicy.parse(args.inject_faults)
        except ValueError as exc:
            print(f"bad --inject-faults spec: {exc}", file=sys.stderr)
            return 2

    # --- build (and where needed, fit) the detector stack -------------
    if args.model is not None:
        from .nn import CNNDetector

        detector = CNNDetector.load(args.model)
        needs_fit = False
    else:
        from .core.registry import create

        try:
            detector = create(args.detector, **overrides)
        except (KeyError, TypeError) as exc:
            print(str(exc), file=sys.stderr)
            return 2
        needs_fit = True

    if needs_fit or args.cascade:
        from .bench.workloads import get_suite

        rng = np.random.default_rng(args.seed)
        train = get_suite(scale=args.scale, seed=args.seed)[0].train
        if needs_fit:
            detector.fit(train, rng=rng)
            # fit() may recalibrate the threshold; an explicit --set wins
            if "threshold" in overrides:
                detector.threshold = float(overrides["threshold"])
        if args.cascade:
            from .core.registry import create

            matcher = create("pattern-fuzzy")
            matcher.fit(train, rng=rng)
            prefilter = create("logistic-density")
            prefilter.fit(train, rng=rng)
            detector = CascadeDetector(
                primary=detector, matcher=matcher, prefilter=prefilter
            )
            if args.cascade_tuning:
                from .runtime import CascadeTuning

                tuning = CascadeTuning.load(args.cascade_tuning)
                detector.apply_tuning(tuning)
                print(f"applied {tuning.summary()}", file=sys.stderr)

    oracle = None
    if args.verify:
        from .litho.hotspot import HotspotOracle

        oracle = HotspotOracle()

    try:
        config = EngineConfig.from_kwargs(
            workers=args.workers,
            cache_dir=args.cache_dir,
            chunk_clips=args.chunk,
            raster_plane=False if args.no_raster_plane else None,
            chunk_timeout_s=args.chunk_timeout,
            max_chunk_retries=args.max_retries,
            on_invalid_score=args.on_invalid_score,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every_chunks=args.checkpoint_every,
            trace_dir=args.trace_dir,
            metrics=args.metrics_out,
            progress="stderr" if args.progress else None,
            infer_backend=args.infer_backend,
            shards=args.shards,
            shard_workers=args.shard_workers,
            halo_nm=args.halo_nm,
            snap_nm=args.snap_nm,
            instance_dedup=not args.no_instance_dedup,
            manifest=args.manifest_out,
            rescan_from=args.rescan_from,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    region = layer.bbox.expand(-args.margin)
    try:
        # one code path: monolithic (--shards 1), sharded, or
        # incremental (--rescan-from) all go through scan_chip
        report = scan_chip(
            layer,
            detector,
            config,
            region=region,
            window_nm=args.window,
            core_nm=args.core,
            step_nm=args.step,
            oracle=oracle,
            resume=args.resume,
            faults=faults,
        )
    except (OSError, ValueError) as exc:
        if "too small for the clip window" in str(exc):
            print(
                f"region {region.width}x{region.height} nm is smaller "
                f"than one {args.window} nm clip window (margin "
                f"{args.margin} nm); nothing to scan",
                file=sys.stderr,
            )
            return 2
        # checkpoint mismatch, bad cache/manifest dir, resume errors, ...
        print(str(exc), file=sys.stderr)
        return 2

    print(report.summary())
    if report.confirmed is not None and report.n_flagged:
        print(
            f"verified: {int(report.confirmed.sum())}/{report.n_flagged} "
            "flagged windows confirmed by lithography"
        )
    if args.map:
        for row in _render_heat(report.heat_map(), detector.threshold):
            print(row)
    if args.report_json:
        report_path = Path(args.report_json)
        report_path.parent.mkdir(parents=True, exist_ok=True)
        report_path.write_text(report.to_json() + "\n")
        print(f"report written to {report_path}", file=sys.stderr)
    if args.stats:
        from .runtime import format_snapshot, metrics_snapshot

        print()
        print(format_snapshot(metrics_snapshot(report)), end="")
    return 0


def _cmd_tune_cascade(args: argparse.Namespace) -> int:
    from .bench.workloads import get_suite
    from .core.registry import create
    from .runtime import CascadeDetector, tune_cascade

    rng = np.random.default_rng(args.seed)
    benchmark = get_suite(scale=args.scale, seed=args.seed)[0]

    try:
        primary = create(args.detector)
        prefilter = create(args.prefilter)
    except (KeyError, TypeError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    cascade = CascadeDetector(primary=primary, prefilter=prefilter)
    cascade.fit(benchmark.train, rng=rng)

    # tune on the held-out split so the zero-miss guarantee is measured
    # on windows the prefilter never saw during fit
    tuning = tune_cascade(cascade, benchmark.test)
    print(tuning.summary())
    print(f"{'cutoff':>10}  {'skip_rate':>9}  {'missed_hot':>10}")
    for cutoff, skip_rate, missed in tuning.sweep:
        marker = " <- tuned" if cutoff == tuning.filter_cutoff else ""
        print(f"{cutoff:>10.6f}  {skip_rate:>9.1%}  {missed:>10d}{marker}")
    if args.out is not None:
        path = tuning.save(args.out)
        print(f"tuning written to {path}", file=sys.stderr)
    return 0


def _build_service_detector(args: argparse.Namespace):
    """The detector stack a service fleet scans with (scan-chip rules)."""
    if (args.model is None) == (args.detector is None):
        raise ValueError("pass exactly one of --model or --detector")
    if args.model is not None:
        from .nn import CNNDetector

        return CNNDetector.load(args.model)
    from .bench.workloads import get_suite
    from .core.registry import create

    detector = create(args.detector)
    rng = np.random.default_rng(args.seed)
    train = get_suite(scale=args.scale, seed=args.seed)[0].train
    detector.fit(train, rng=rng)
    return detector


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import (
        FileJobQueue,
        FileJobStore,
        FileResultStore,
        InMemoryJobQueue,
        InMemoryJobStore,
        InMemoryResultStore,
        JobManager,
        TokenBucketRateLimiter,
        WorkerFleet,
        serve,
    )

    try:
        detector = _build_service_detector(args)
    except (ValueError, KeyError) as exc:
        print(str(exc), file=sys.stderr)
        return 2

    checkpoint_root = None
    if args.state_dir is not None:
        state_dir = Path(args.state_dir)
        store = FileJobStore(state_dir)
        queue = FileJobQueue(state_dir)
        results = FileResultStore(state_dir)
        checkpoint_root = state_dir / "checkpoints"
    else:
        store = InMemoryJobStore()
        queue = InMemoryJobQueue()
        results = InMemoryResultStore()

    limiter = None
    if args.rate > 0:
        limiter = TokenBucketRateLimiter(args.rate, burst=args.burst)
    manager = JobManager(
        store,
        queue,
        results,
        rate_limiter=limiter,
        max_attempts=args.max_attempts,
        checkpoint_root=checkpoint_root,
        lease_duration_s=args.lease,
        max_queue_depth=args.max_queue_depth,
        default_deadline_s=args.deadline,
        default_attempt_deadline_s=args.attempt_deadline,
    )
    # quarantine events from the file adapters feed the service counters
    store.on_quarantine = manager.on_quarantine
    results.on_quarantine = manager.on_quarantine
    fleet = WorkerFleet(manager, detector, workers=args.workers)
    service = serve(manager, fleet=fleet, host=args.host, port=args.port)
    host, port = service.address
    print(
        f"scan service on http://{host}:{port} "
        f"({args.workers} worker(s), "
        f"state={'in-memory' if args.state_dir is None else args.state_dir})",
        file=sys.stderr,
    )

    import signal
    import threading

    def on_sigterm(signum, frame) -> None:
        # rolling-restart protocol: drain off the signal handler's
        # thread (joining workers inside a handler can deadlock)
        print("SIGTERM: draining", file=sys.stderr)
        threading.Thread(
            target=service.drain,
            kwargs={"timeout": args.drain_grace},
            daemon=True,
        ).start()

    signal.signal(signal.SIGTERM, on_sigterm)
    try:
        # serve until a drain completes (SIGTERM or DELETE /drain) or
        # the operator interrupts
        service.drained.wait()
        print("drained: in-flight work requeued, exiting", file=sys.stderr)
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        service.stop()
    return 0


def _cmd_drain(args: argparse.Namespace) -> int:
    from .service import ServiceClient, ServiceError

    client = ServiceClient(args.url, client_id=args.client)
    try:
        status = client.drain()
    except (ServiceError, OSError) as exc:
        print(str(exc), file=sys.stderr)
        return 1
    print(f"drain started ({status.get('status', 'draining')})")
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from .geometry.gdsii import read_gdsii
    from .service import (
        ServiceClient,
        ServiceError,
        WireError,
        encode_job_request,
    )

    layout, _db_unit = read_gdsii(args.gds)
    if args.layer not in layout.layers:
        print(
            f"layer {args.layer!r} not in {sorted(layout.layers)}",
            file=sys.stderr,
        )
        return 2
    layer = layout.layer(args.layer)
    region = layer.bbox.expand(-args.margin)
    try:
        engine = _parse_overrides(args.engine or [])
        request = encode_job_request(
            layer,
            region,
            window_nm=args.window,
            core_nm=args.core,
            step_nm=args.step,
            engine=engine,
        )
    except (ValueError, WireError) as exc:
        print(str(exc), file=sys.stderr)
        return 2

    client = ServiceClient(args.url, client_id=args.client)
    try:
        status = client.submit(request)
        job_id = str(status["job_id"])
        print(f"submitted job {job_id} ({status['state']})")
        if args.no_wait:
            return 0
        client.wait(job_id, timeout_s=args.timeout, poll_s=args.poll)
        document = client.result(job_id)
    except (ServiceError, TimeoutError, OSError) as exc:
        print(str(exc), file=sys.stderr)
        return 1
    if args.out is not None:
        out_path = Path(args.out)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(document + "\n")
        print(f"report written to {out_path}", file=sys.stderr)
    else:
        print(document)
    return 0


def _cmd_pattern(args: argparse.Namespace) -> int:
    from .geometry.gdsio import load_clips
    from .geometry.rasterize import rasterize_clip

    clips, _labels = load_clips(args.clips)
    if not 0 <= args.index < len(clips):
        print(f"index out of range (file has {len(clips)} clips)", file=sys.stderr)
        return 2
    clip = clips[args.index]
    raster = rasterize_clip(clip, pixel_nm=args.pixel, antialias=False)
    chars = np.where(raster >= 0.5, "#", ".")
    for row in chars[::-1]:  # print top row first
        print("".join(row))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .analysis import (
        all_rules,
        all_semantic_rules,
        analyze_paths,
        format_findings,
        format_sarif,
    )

    if args.list_rules:
        for name, rule_cls in sorted(all_rules().items()):
            print(f"{name}: {rule_cls.description}")
        for name, rule_cls in sorted(all_semantic_rules().items()):
            print(f"{name} [semantic/{rule_cls.scope}]: {rule_cls.description}")
        return 0
    if not args.paths:
        print("lint needs at least one path (or --list-rules)", file=sys.stderr)
        return 2
    select = args.select.split(",") if args.select else None
    cache_dir = None if args.no_cache else args.cache_dir
    try:
        result = analyze_paths(
            args.paths,
            select=select,
            semantic=not args.no_semantic,
            cache_dir=cache_dir,
            jobs=args.jobs,
        )
    except KeyError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    findings = result.findings
    if args.format == "sarif":
        output = format_sarif(findings)
    else:
        output = format_findings(findings, fmt=args.format)
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(output + "\n", encoding="utf-8")
    elif output:
        print(output)
    if args.stats:
        print(
            json.dumps({"stats": result.stats.as_dict()}, indent=2),
            file=sys.stderr,
        )
    if args.format == "text" and findings and args.out is None:
        print(f"-- {len(findings)} finding(s)", file=sys.stderr)
    return 1 if findings else 0


def _cmd_check(args: argparse.Namespace) -> int:
    from .contracts import (
        check_registered_detectors,
        check_registered_extractors,
    )

    detector_names = args.detectors.split(",") if args.detectors else None
    extractor_names = args.extractors.split(",") if args.extractors else None
    reports = {}
    if not args.extractors_only:
        reports.update(
            check_registered_detectors(names=detector_names, seed=args.seed)
        )
    if not args.detectors_only:
        reports.update(check_registered_extractors(names=extractor_names))
    failures = 0
    for name in sorted(reports):
        report = reports[name]
        failures += len(report.diagnostics)
        print(report.summary())
    total_checks = sum(r.checks_run for r in reports.values())
    print(
        f"-- {len(reports)} subjects, {total_checks} checks, "
        f"{failures} violation(s)"
    )
    return 1 if failures else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="lithography hotspot detection toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("gen-data", help="generate and cache the benchmark suite")
    p.add_argument("--scale", type=float, default=None)
    p.add_argument("--seed", type=int, default=2012)
    p.set_defaults(fn=_cmd_gen_data)

    p = sub.add_parser("list", help="list registered detectors")
    p.set_defaults(fn=_cmd_list)

    p = sub.add_parser("evaluate", help="evaluate detectors on the suite")
    p.add_argument(
        "--detectors", default="pattern-fuzzy,svm-ccas,cnn-dct",
        help="comma-separated registry names",
    )
    p.add_argument("--benchmarks", default="", help="e.g. B1,B2 (default: all)")
    p.add_argument("--scale", type=float, default=None)
    p.add_argument("--seed", type=int, default=2012)
    p.set_defaults(fn=_cmd_evaluate)

    p = sub.add_parser("train", help="train the CNN on a labeled clip file")
    p.add_argument("clips", type=Path)
    p.add_argument("--out", type=Path, default=Path("cnn-model.npz"))
    p.add_argument("--epochs", type=int, default=12)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_train)

    p = sub.add_parser("score", help="score a clip file with a saved model")
    p.add_argument("model", type=Path)
    p.add_argument("clips", type=Path)
    p.set_defaults(fn=_cmd_score)

    p = sub.add_parser("analyze", help="litho-analyze a clip file")
    p.add_argument("clips", type=Path)
    p.set_defaults(fn=_cmd_analyze)

    p = sub.add_parser("scan", help="scan a GDSII layer with a saved model")
    p.add_argument("model", type=Path)
    p.add_argument("gds", type=Path)
    p.add_argument("--layer", default="L1")
    p.add_argument("--margin", type=int, default=0, help="inset from the bbox (nm)")
    p.set_defaults(fn=_cmd_scan)

    p = sub.add_parser(
        "scan-chip",
        help="production full-chip scan (cache, cascade, worker pool)",
    )
    p.add_argument("gds", type=Path)
    p.add_argument("--model", type=Path, default=None, help="saved CNN (npz)")
    p.add_argument(
        "--detector",
        default=None,
        help="registry name; fitted on the cached benchmark suite",
    )
    p.add_argument(
        "--set",
        action="append",
        metavar="KEY=VALUE",
        help="detector factory override (repeatable), e.g. threshold=0.6",
    )
    p.add_argument("--layer", default="L1")
    p.add_argument("--margin", type=int, default=0, help="inset from the bbox (nm)")
    p.add_argument("--window", type=int, default=768)
    p.add_argument("--core", type=int, default=256)
    p.add_argument("--step", type=int, default=None)
    p.add_argument("--workers", type=int, default=1, help="scoring processes")
    p.add_argument(
        "--shards", type=int, default=1,
        help="split the chip into this many halo-overlapped shards "
        "(1 = monolithic; the merged report is byte-identical either way)",
    )
    p.add_argument(
        "--shard-workers", type=int, default=1,
        help="shards scanned concurrently, each on its own engine",
    )
    p.add_argument(
        "--halo-nm", type=int, default=None,
        help="shard overlap margin in nm (default: the full window "
        "extent, which preserves monolithic scores at shard seams)",
    )
    p.add_argument(
        "--snap-nm", type=int, default=None,
        help="snap shard boundaries to this pitch (nm), e.g. the "
        "instance-array pitch, so repeated cells shard congruently",
    )
    p.add_argument(
        "--no-instance-dedup", action="store_true",
        help="score every shard even when its geometry is an exact "
        "translated copy of an already-scored shard",
    )
    p.add_argument(
        "--manifest-out", type=Path, default=None,
        help="write the fingerprint->score manifest here (default: "
        "chip-manifest.npz inside --checkpoint-dir, if any)",
    )
    p.add_argument(
        "--rescan-from", type=Path, default=None,
        help="incremental re-scan: replay shards whose fingerprint is "
        "unchanged since this manifest (or its directory) and re-score "
        "only the changed cone",
    )
    p.add_argument(
        "--cascade",
        action="store_true",
        help="wrap the detector in the pattern-match -> prefilter cascade",
    )
    p.add_argument(
        "--cascade-tuning",
        type=Path,
        default=None,
        help="apply a saved tune-cascade JSON to the cascade prefilter "
        "cutoff (requires --cascade)",
    )
    p.add_argument(
        "--infer-backend",
        choices=("layers", "fused", "fused-int8"),
        default=None,
        help="CNN inference backend: layers (reference), fused "
        "(conv+BN folding, batched GEMM), fused-int8 (quantized weights)",
    )
    p.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="persist the dedup score cache here across scans",
    )
    p.add_argument("--chunk", type=int, default=256, help="clips per chunk")
    p.add_argument(
        "--no-raster-plane",
        action="store_true",
        help="force the per-clip reference scan path (raster-plane "
        "batching is used automatically when the detector supports it)",
    )
    p.add_argument(
        "--verify",
        action="store_true",
        help="litho-verify flagged windows (slow)",
    )
    p.add_argument(
        "--chunk-timeout", type=float, default=300.0,
        help="seconds a worker may spend on one chunk before it is retried",
    )
    p.add_argument(
        "--max-retries", type=int, default=2,
        help="retries per chunk before rebuilding the pool / degrading",
    )
    p.add_argument(
        "--on-invalid-score", choices=("repair", "raise"), default="repair",
        help="rescore NaN/out-of-range chunks in-process, or fail the scan",
    )
    p.add_argument(
        "--checkpoint-dir", type=Path, default=None,
        help="directory for periodic atomic scan checkpoints",
    )
    p.add_argument(
        "--checkpoint-every", type=int, default=16,
        help="scored chunks between checkpoint saves",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="resume an interrupted scan from --checkpoint-dir",
    )
    p.add_argument(
        "--inject-faults", default="",
        help="deterministic fault-injection spec, e.g. "
        "'seed=1,worker_crash@0,chunk_error=0.1' (testing/drills only)",
    )
    p.add_argument(
        "--trace-dir", type=Path, default=None,
        help="write the hierarchical JSONL span trace into this directory",
    )
    p.add_argument(
        "--metrics-out", type=Path, default=None,
        help="metrics snapshot base path; writes <base>.json and <base>.prom",
    )
    p.add_argument(
        "--progress", action="store_true",
        help="print live progress heartbeats (windows/s, dedup, ETA) to stderr",
    )
    p.add_argument(
        "--report-json", type=Path, default=None,
        help="write the versioned ScanReport JSON artifact here",
    )
    p.add_argument(
        "--stats", action="store_true",
        help="print the structured metrics snapshot (stable JSON)",
    )
    p.add_argument(
        "--map", action="store_true", help="print the ASCII hotspot map"
    )
    p.add_argument("--scale", type=float, default=None)
    p.add_argument("--seed", type=int, default=2012)
    p.set_defaults(fn=_cmd_scan_chip)

    p = sub.add_parser(
        "tune-cascade",
        help="sweep prefilter cutoffs for max CNN-skip at zero missed hotspots",
    )
    p.add_argument(
        "--detector",
        default="cnn-dct",
        help="registered primary detector name (default: cnn-dct)",
    )
    p.add_argument(
        "--prefilter",
        default="logistic-density",
        help="registered prefilter detector name (default: logistic-density)",
    )
    p.add_argument(
        "--out",
        type=Path,
        default=None,
        help="write the tuning JSON here (consumed by scan-chip "
        "--cascade-tuning)",
    )
    p.add_argument("--scale", type=float, default=None)
    p.add_argument("--seed", type=int, default=2012)
    p.set_defaults(fn=_cmd_tune_cascade)

    p = sub.add_parser(
        "serve", help="run the queued scan service (HTTP API + worker fleet)"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8787, help="0 = ephemeral")
    p.add_argument("--workers", type=int, default=1, help="scan worker threads")
    p.add_argument("--model", type=Path, default=None, help="saved CNN (npz)")
    p.add_argument(
        "--detector",
        default=None,
        help="registry name; fitted on the cached benchmark suite",
    )
    p.add_argument(
        "--state-dir",
        type=Path,
        default=None,
        help="durable service state (jobs/queue/results/checkpoints); "
        "default keeps everything in memory",
    )
    p.add_argument(
        "--max-attempts", type=int, default=3,
        help="claims per job (first run + checkpoint-resumed retries)",
    )
    p.add_argument(
        "--rate", type=float, default=0.0,
        help="submissions/second allowed per client (0 = unlimited)",
    )
    p.add_argument(
        "--burst", type=int, default=None,
        help="token-bucket burst size (default: max(1, rate))",
    )
    p.add_argument(
        "--lease", type=float, default=30.0,
        help="worker lease duration (s); expired leases are reaped and "
        "the job requeued (default: 30)",
    )
    p.add_argument(
        "--max-queue-depth", type=int, default=None,
        help="shed submissions (503 + Retry-After) past this many "
        "pending jobs (default: unlimited)",
    )
    p.add_argument(
        "--deadline", type=float, default=None,
        help="default per-job wall-clock budget (s), queue wait included",
    )
    p.add_argument(
        "--attempt-deadline", type=float, default=None,
        help="default per-attempt wall-clock budget (s)",
    )
    p.add_argument(
        "--drain-grace", type=float, default=30.0,
        help="seconds a SIGTERM drain waits for in-flight attempts to "
        "checkpoint and requeue (default: 30)",
    )
    p.add_argument("--scale", type=float, default=None)
    p.add_argument("--seed", type=int, default=2012)
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "drain",
        help="gracefully drain a running scan service (DELETE /drain)",
    )
    p.add_argument("url", help="service base URL, e.g. http://127.0.0.1:8787")
    p.add_argument("--client", default=None, help="X-Client id")
    p.set_defaults(fn=_cmd_drain)

    p = sub.add_parser(
        "submit", help="submit a GDSII layer to a running scan service"
    )
    p.add_argument("url", help="service base URL, e.g. http://127.0.0.1:8787")
    p.add_argument("gds", type=Path)
    p.add_argument("--layer", default="L1")
    p.add_argument("--margin", type=int, default=0, help="inset from the bbox (nm)")
    p.add_argument("--window", type=int, default=768)
    p.add_argument("--core", type=int, default=256)
    p.add_argument("--step", type=int, default=None)
    p.add_argument(
        "--engine",
        action="append",
        metavar="KEY=VALUE",
        help="client-settable engine option (repeatable), e.g. workers=2",
    )
    p.add_argument(
        "--no-wait", action="store_true",
        help="submit and print the job id without polling for the result",
    )
    p.add_argument("--timeout", type=float, default=300.0, help="wait deadline (s)")
    p.add_argument("--poll", type=float, default=0.2, help="poll period (s)")
    p.add_argument(
        "--out", type=Path, default=None,
        help="write the ScanReport JSON here instead of stdout",
    )
    p.add_argument("--client", default=None, help="X-Client id for rate limiting")
    p.set_defaults(fn=_cmd_submit)

    p = sub.add_parser("pattern", help="ASCII-render a clip")
    p.add_argument("clips", type=Path)
    p.add_argument("--index", type=int, default=0)
    p.add_argument("--pixel", type=int, default=16)
    p.set_defaults(fn=_cmd_pattern)

    p = sub.add_parser(
        "lint", help="project-specific AST lint pass (exit 1 on findings)"
    )
    p.add_argument("paths", nargs="*", help="files or directories to lint")
    p.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="diagnostic output format",
    )
    p.add_argument(
        "--select", default="",
        help="comma-separated rule names to run (default: all)",
    )
    p.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog"
    )
    p.add_argument(
        "--out", type=Path, default=None,
        help="write the formatted findings to a file instead of stdout",
    )
    p.add_argument(
        "--no-semantic", action="store_true",
        help="per-file rules only (skip the project-wide semantic pass)",
    )
    p.add_argument(
        "--no-cache", action="store_true",
        help="ignore and do not write the incremental cache",
    )
    p.add_argument(
        "--cache-dir", type=Path, default=Path(".lint_cache"),
        help="incremental cache directory (default: .lint_cache)",
    )
    p.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for parsing cache misses (default: 1)",
    )
    p.add_argument(
        "--stats", action="store_true",
        help="print incremental-analysis statistics to stderr",
    )
    p.set_defaults(fn=_cmd_lint)

    p = sub.add_parser(
        "check",
        help="detector/extractor conformance harness (exit 1 on violations)",
    )
    p.add_argument(
        "--detectors", default="",
        help="comma-separated registry names (default: all)",
    )
    p.add_argument(
        "--extractors", default="",
        help="comma-separated extractor names (default: all)",
    )
    p.add_argument(
        "--detectors-only", action="store_true",
        help="skip the extractor sweep",
    )
    p.add_argument(
        "--extractors-only", action="store_true",
        help="skip the detector sweep",
    )
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_check)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``gen-data``    generate and cache the benchmark suite
``list``        list registered detectors
``evaluate``    run detectors on benchmarks and print the contest table
``train``       train the CNN detector on a labeled clip file, save weights
``score``       score a clip file with a saved CNN model
``analyze``     litho-analyze a clip file and print per-clip verdicts
``scan``        sweep a saved CNN model over a GDSII layout layer
``pattern``     print a clip's raster as ASCII art (debugging aid)
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

import numpy as np


def _cmd_gen_data(args: argparse.Namespace) -> int:
    from .bench.workloads import cache_dir, get_suite

    suite = get_suite(scale=args.scale, seed=args.seed)
    for benchmark in suite:
        print(benchmark.summary())
    print(f"cached under {cache_dir()}")
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    from .core.registry import available

    for name in available():
        print(name)
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from .bench.harness import pivot_metric, run_matrix
    from .bench.tables import format_table
    from .bench.workloads import get_suite
    from .core.registry import create

    suite = get_suite(scale=args.scale, seed=args.seed)
    if args.benchmarks:
        wanted = set(args.benchmarks.split(","))
        suite = [b for b in suite if b.name in wanted]
    names = args.detectors.split(",")
    factories = {name: (lambda n=name: create(n)) for name in names}
    results = run_matrix(factories, suite, seed=args.seed)
    for metric in ("accuracy", "false_alarms", "odst_seconds"):
        rows = pivot_metric(results, metric=metric, fmt="{:.1f}")
        print(format_table(rows, title=metric))
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from .data.dataset import ClipDataset
    from .geometry.gdsio import load_clips
    from .nn import CNNDetector, CNNDetectorConfig

    clips, labels = load_clips(args.clips)
    if any(lbl is None for lbl in labels):
        print("training needs a fully labeled clip file", file=sys.stderr)
        return 2
    dataset = ClipDataset(name=str(args.clips), clips=clips, labels=np.asarray(labels))
    detector = CNNDetector(CNNDetectorConfig(epochs=args.epochs))
    report = detector.fit(dataset, rng=np.random.default_rng(args.seed))
    detector.save(args.out)
    print(
        f"trained on {dataset.summary()} in {report.train_seconds:.1f}s; "
        f"threshold={detector.threshold:.3f}; saved to {args.out}"
    )
    return 0


def _cmd_score(args: argparse.Namespace) -> int:
    from .geometry.gdsio import load_clips
    from .nn import CNNDetector

    detector = CNNDetector.load(args.model)
    clips, labels = load_clips(args.clips)
    scores = detector.predict_proba(clips)
    flagged = scores >= detector.threshold
    for clip, score, flag, label in zip(clips, scores, flagged, labels):
        known = "" if label is None else f" (label={label})"
        verdict = "HOTSPOT" if flag else "ok"
        print(f"{clip.tag or '-'}: {score:.3f} -> {verdict}{known}")
    print(f"-- {int(flagged.sum())}/{len(clips)} flagged")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from .geometry.gdsio import load_clips
    from .litho.hotspot import HotspotOracle

    clips, labels = load_clips(args.clips)
    oracle = HotspotOracle()
    n_hot = 0
    for i, clip in enumerate(clips):
        analysis = oracle.analyze(clip)
        n_hot += analysis.is_hotspot
        verdict = "HOTSPOT" if analysis.is_hotspot else "ok"
        kinds = ",".join(analysis.defect_kinds) or "-"
        known = "" if labels[i] is None else f" (label={labels[i]})"
        print(f"{clip.tag or i}: {verdict} [{kinds}]{known}")
    print(f"-- {n_hot}/{len(clips)} hotspots")
    return 0


def _cmd_scan(args: argparse.Namespace) -> int:
    from .core.scan import scan_layer
    from .geometry.gdsii import read_gdsii
    from .nn import CNNDetector

    layout, _db_unit = read_gdsii(args.gds)
    if args.layer not in layout.layers:
        print(
            f"layer {args.layer!r} not in {sorted(layout.layers)}",
            file=sys.stderr,
        )
        return 2
    layer = layout.layer(args.layer)
    detector = CNNDetector.load(args.model)
    result = scan_layer(detector, layer, layer.bbox.expand(-args.margin))
    print(
        f"{len(result.clips)} windows, {result.n_flagged} flagged "
        f"({100 * result.flag_ratio:.0f}%)"
    )
    grid = result.heat_map()
    for row in grid[::-1]:
        print(
            "".join(
                "#" if s >= detector.threshold else "+" if s >= 0.2 else "."
                for s in row
            )
        )
    return 0


def _cmd_pattern(args: argparse.Namespace) -> int:
    from .geometry.gdsio import load_clips
    from .geometry.rasterize import rasterize_clip

    clips, _labels = load_clips(args.clips)
    if not 0 <= args.index < len(clips):
        print(f"index out of range (file has {len(clips)} clips)", file=sys.stderr)
        return 2
    clip = clips[args.index]
    raster = rasterize_clip(clip, pixel_nm=args.pixel, antialias=False)
    chars = np.where(raster >= 0.5, "#", ".")
    for row in chars[::-1]:  # print top row first
        print("".join(row))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="lithography hotspot detection toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("gen-data", help="generate and cache the benchmark suite")
    p.add_argument("--scale", type=float, default=None)
    p.add_argument("--seed", type=int, default=2012)
    p.set_defaults(fn=_cmd_gen_data)

    p = sub.add_parser("list", help="list registered detectors")
    p.set_defaults(fn=_cmd_list)

    p = sub.add_parser("evaluate", help="evaluate detectors on the suite")
    p.add_argument(
        "--detectors", default="pattern-fuzzy,svm-ccas,cnn-dct",
        help="comma-separated registry names",
    )
    p.add_argument("--benchmarks", default="", help="e.g. B1,B2 (default: all)")
    p.add_argument("--scale", type=float, default=None)
    p.add_argument("--seed", type=int, default=2012)
    p.set_defaults(fn=_cmd_evaluate)

    p = sub.add_parser("train", help="train the CNN on a labeled clip file")
    p.add_argument("clips", type=Path)
    p.add_argument("--out", type=Path, default=Path("cnn-model.npz"))
    p.add_argument("--epochs", type=int, default=12)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_train)

    p = sub.add_parser("score", help="score a clip file with a saved model")
    p.add_argument("model", type=Path)
    p.add_argument("clips", type=Path)
    p.set_defaults(fn=_cmd_score)

    p = sub.add_parser("analyze", help="litho-analyze a clip file")
    p.add_argument("clips", type=Path)
    p.set_defaults(fn=_cmd_analyze)

    p = sub.add_parser("scan", help="scan a GDSII layer with a saved model")
    p.add_argument("model", type=Path)
    p.add_argument("gds", type=Path)
    p.add_argument("--layer", default="L1")
    p.add_argument("--margin", type=int, default=0, help="inset from the bbox (nm)")
    p.set_defaults(fn=_cmd_scan)

    p = sub.add_parser("pattern", help="ASCII-render a clip")
    p.add_argument("clips", type=Path)
    p.add_argument("--index", type=int, default=0)
    p.add_argument("--pixel", type=int, default=16)
    p.set_defaults(fn=_cmd_pattern)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Tests for density-grid features."""

import numpy as np
import pytest

from repro.features import DensityGrid, block_reduce_mean
from repro.geometry import Rect

from ..conftest import clip_from_rects


class TestBlockReduce:
    def test_exact_division(self):
        raster = np.arange(16, dtype=float).reshape(4, 4)
        out = block_reduce_mean(raster, 2)
        assert out.shape == (2, 2)
        assert out[0, 0] == pytest.approx(raster[:2, :2].mean())

    def test_uneven_division(self):
        raster = np.ones((10, 10))
        out = block_reduce_mean(raster, 3)
        assert out.shape == (3, 3)
        np.testing.assert_allclose(out, 1.0)

    def test_grid_too_large_raises(self):
        with pytest.raises(ValueError):
            block_reduce_mean(np.ones((4, 4)), 8)

    def test_mean_preserved_for_even_blocks(self):
        rng = np.random.default_rng(0)
        raster = rng.random((12, 12))
        out = block_reduce_mean(raster, 4)
        assert out.mean() == pytest.approx(raster.mean())


class TestDensityGrid:
    def test_shape(self, grating_clip):
        feats = DensityGrid(grid=12).extract(grating_clip)
        assert feats.shape == (144,)
        assert DensityGrid(grid=12).feature_shape == (144,)

    def test_values_are_fractions(self, grating_clip):
        feats = DensityGrid(grid=12).extract(grating_clip)
        assert feats.min() >= 0.0
        assert feats.max() <= 1.0

    def test_empty_clip_zero(self, empty_clip):
        assert DensityGrid(grid=8).extract(empty_clip).sum() == 0.0

    def test_full_cover_ones(self):
        clip = clip_from_rects([Rect(0, 0, 1200, 1200)])
        feats = DensityGrid(grid=8).extract(clip)
        np.testing.assert_allclose(feats, 1.0)

    def test_mean_matches_clip_density(self, grating_clip):
        feats = DensityGrid(grid=12).extract(grating_clip)
        assert feats.mean() == pytest.approx(grating_clip.density(), abs=1e-6)

    def test_extract_many_stacks(self, grating_clip, tip_pair_clip):
        extractor = DensityGrid(grid=6)
        batch = extractor.extract_many([grating_clip, tip_pair_clip])
        assert batch.shape == (2, 36)
        np.testing.assert_array_equal(batch[0], extractor.extract(grating_clip))

    def test_extract_many_empty_returns_shaped_array(self):
        out = DensityGrid(grid=12).extract_many([])
        assert out.shape == (0, 144)
        assert out.dtype == np.float64

    def test_bad_grid_raises(self):
        with pytest.raises(ValueError):
            DensityGrid(grid=0)

    def test_translation_of_pattern_changes_features(self, grating_clip):
        """Density grid is position-sensitive at tile granularity."""
        shifted = clip_from_rects(
            [r.translate(64, 0) for r in grating_clip.rects], tag="shifted"
        )
        a = DensityGrid(grid=12).extract(grating_clip)
        b = DensityGrid(grid=12).extract(shifted)
        assert not np.allclose(a, b)

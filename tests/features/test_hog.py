"""Tests for HOG features."""

import numpy as np
import pytest

from repro.features import HOGFeatures, hog_features
from repro.geometry import Rect

from ..conftest import clip_from_rects


class TestHogFeatures:
    def test_shape(self):
        raster = np.random.default_rng(0).random((48, 48))
        feats = hog_features(raster, cells=6, n_bins=4)
        assert feats.shape == (6 * 6 * 4,)

    def test_flat_raster_zero(self):
        feats = hog_features(np.ones((24, 24)), cells=3, n_bins=4)
        np.testing.assert_array_equal(feats, 0.0)

    def test_cells_normalized(self):
        raster = np.zeros((24, 24))
        raster[:, 12:] = 1.0  # a single vertical edge
        feats = hog_features(raster, cells=3, n_bins=4).reshape(3, 3, 4)
        norms = np.linalg.norm(feats, axis=2)
        active = norms > 0
        np.testing.assert_allclose(norms[active], 1.0)

    def test_bad_params_raise(self):
        with pytest.raises(ValueError):
            hog_features(np.ones((8, 8)), cells=0)

    def test_orientation_sensitivity(self):
        """A vertical edge and a horizontal edge land in different bins."""
        vertical = np.zeros((24, 24))
        vertical[:, 12:] = 1.0
        horizontal = vertical.T.copy()
        fv = hog_features(vertical, cells=1, n_bins=4)
        fh = hog_features(horizontal, cells=1, n_bins=4)
        assert fv.argmax() != fh.argmax()


class TestExtractor:
    def test_on_clip(self, grating_clip):
        feats = HOGFeatures(cells=6, n_bins=4).extract(grating_clip)
        assert feats.shape == HOGFeatures(cells=6, n_bins=4).feature_shape
        assert feats.max() > 0

    def test_empty_clip_zero(self, empty_clip):
        feats = HOGFeatures().extract(empty_clip)
        np.testing.assert_array_equal(feats, 0.0)

    def test_distinguishes_orientations(self):
        h = clip_from_rects([Rect(96, 568, 1104, 632)])
        v = clip_from_rects([Rect(568, 96, 632, 1104)])
        extractor = HOGFeatures(cells=4, n_bins=4)
        assert not np.allclose(extractor.extract(h), extractor.extract(v))

    def test_bad_config_raises(self):
        with pytest.raises(ValueError):
            HOGFeatures(cells=0)

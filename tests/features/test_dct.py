"""Tests for the DCT feature tensor: shapes, energy, invertibility."""

import numpy as np
import pytest

from repro.features import (
    DCTFeatureTensor,
    feature_tensor,
    inverse_feature_tensor,
)
from repro.geometry import rasterize_clip


class TestFeatureTensor:
    def test_shape(self):
        raster = np.random.default_rng(0).random((96, 96))
        t = feature_tensor(raster, block=8, keep=4)
        assert t.shape == (16, 12, 12)

    def test_indivisible_raises(self):
        with pytest.raises(ValueError):
            feature_tensor(np.ones((90, 96)), block=8, keep=4)

    def test_dc_channel_is_block_mean(self):
        rng = np.random.default_rng(1)
        raster = rng.random((32, 32))
        t = feature_tensor(raster, block=8, keep=2)
        # ortho-normalized 2-D DCT: DC coefficient = block_sum / block_size
        expected = raster.reshape(4, 8, 4, 8).transpose(0, 2, 1, 3).mean(axis=(2, 3)) * 8
        np.testing.assert_allclose(t[0], expected, rtol=1e-10)

    def test_full_keep_is_lossless(self):
        rng = np.random.default_rng(2)
        raster = rng.random((32, 32))
        t = feature_tensor(raster, block=8, keep=8)
        back = inverse_feature_tensor(t, block=8, keep=8)
        np.testing.assert_allclose(back, raster, atol=1e-10)

    def test_truncation_is_lowpass(self):
        """Reconstruction error decreases as more coefficients are kept."""
        rng = np.random.default_rng(3)
        raster = rng.random((32, 32))
        errors = []
        for keep in (2, 4, 6, 8):
            t = feature_tensor(raster, block=8, keep=keep)
            back = inverse_feature_tensor(t, block=8, keep=keep)
            errors.append(np.abs(back - raster).mean())
        assert errors == sorted(errors, reverse=True)
        assert errors[-1] == pytest.approx(0.0, abs=1e-10)

    def test_smooth_pattern_reconstructs_well_at_low_keep(self):
        """Layout-like (blocky) content concentrates in low frequencies."""
        raster = np.zeros((32, 32))
        raster[:, 8:24] = 1.0
        t = feature_tensor(raster, block=8, keep=4)
        back = inverse_feature_tensor(t, block=8, keep=4)
        assert np.abs(back - raster).mean() < 0.05

    def test_inverse_channel_mismatch_raises(self):
        with pytest.raises(ValueError):
            inverse_feature_tensor(np.zeros((9, 4, 4)), block=8, keep=4)


class TestExtractor:
    def test_tensor_mode(self, grating_clip):
        t = DCTFeatureTensor(block=8, keep=4).extract(grating_clip)
        assert t.shape == (16, 12, 12)

    def test_flat_mode(self, grating_clip):
        v = DCTFeatureTensor(block=8, keep=4, flatten=True).extract(grating_clip)
        assert v.shape == (16 * 12 * 12,)

    def test_matches_manual_pipeline(self, grating_clip):
        extractor = DCTFeatureTensor(block=8, keep=4)
        manual = feature_tensor(rasterize_clip(grating_clip, 8), 8, 4)
        np.testing.assert_allclose(extractor.extract(grating_clip), manual)

    def test_bad_keep_raises(self):
        with pytest.raises(ValueError):
            DCTFeatureTensor(block=8, keep=9)
        with pytest.raises(ValueError):
            DCTFeatureTensor(block=8, keep=0)

    def test_names_distinct(self):
        a = DCTFeatureTensor(block=8, keep=4)
        b = DCTFeatureTensor(block=8, keep=4, flatten=True)
        assert a.name != b.name


class TestPlaneFeatureSlicing:
    """Block independence: a window's tensor is a slice of the plane's.

    The raster-plane scan engine relies on this to transform each band
    once and slice per-window feature tensors out — the equality must be
    bit-exact, since the plan path promises byte-identical flags.
    """

    def test_window_slice_is_bit_identical(self):
        from repro.nn.detector import CNNDetector

        rng = np.random.default_rng(3)
        det = CNNDetector()  # unfitted is fine: extraction has no weights
        plane = rng.random((160, 224))
        feats = det.plane_feature_tensor(plane)
        assert feats.shape == (16, 20, 28)
        for oy, ox in [(0, 0), (32, 64), (64, 128)]:
            window = plane[oy : oy + 96, ox : ox + 96]
            direct = det.extractor.extract_batch(window[None].copy())[0]
            sliced = feats[:, oy // 8 : oy // 8 + 12, ox // 8 : ox // 8 + 12]
            assert np.array_equal(sliced, direct), (oy, ox)

    def test_detector_advertises_block(self):
        from repro.nn.detector import CNNDetector

        assert CNNDetector().plane_feature_block() == 8

"""Tests for squish-pattern encoding."""

import numpy as np
import pytest

from repro.features import SquishFeatures, squish, unsquish
from repro.geometry import Rect, union_area

from ..conftest import clip_from_rects


class TestSquish:
    def test_single_wire(self):
        clip = clip_from_rects([Rect(96, 568, 1104, 632)])
        pat = squish(clip)
        # cuts: y at 0, wire bottom, wire top, size -> 3 intervals
        assert len(pat.dy) == 3
        assert len(pat.dx) == 1
        assert pat.matrix().sum() == 1  # one covered cell

    def test_deltas_sum_to_clip_size(self, grating_clip):
        pat = squish(grating_clip)
        assert sum(pat.dx) == grating_clip.size
        assert sum(pat.dy) == grating_clip.size

    def test_unsquish_restores_area(self, grating_clip):
        pat = squish(grating_clip)
        cells = unsquish(pat)
        assert union_area(cells) == union_area(list(grating_clip.local_rects()))

    def test_unsquish_restores_geometry(self):
        clip = clip_from_rects([Rect(300, 400, 800, 464), Rect(300, 464, 364, 900)])
        restored = set()
        for r in unsquish(squish(clip)):
            restored.add(r.as_tuple())
        # cells tile the same region: area and bbox agree
        local = list(clip.local_rects())
        assert union_area([Rect(*t) for t in restored]) == union_area(local)

    def test_translation_invariant_topology(self):
        a = clip_from_rects([Rect(300, 560, 900, 624)])
        b = clip_from_rects([Rect(364, 592, 964, 656)])  # same wire, shifted
        assert squish(a).topology_key() == squish(b).topology_key()

    def test_different_patterns_different_topology(self, grating_clip, tip_pair_clip):
        assert (
            squish(grating_clip).topology_key()
            != squish(tip_pair_clip).topology_key()
        )

    def test_empty_clip(self, empty_clip):
        pat = squish(empty_clip)
        assert pat.matrix().sum() == 0
        assert len(pat.dx) == 1 and len(pat.dy) == 1

    def test_shape_property(self, grating_clip):
        pat = squish(grating_clip)
        assert pat.shape == (len(pat.dy), len(pat.dx))


class TestSquishFeatures:
    def test_fixed_length(self, grating_clip, tip_pair_clip, empty_clip):
        extractor = SquishFeatures(max_cuts=24)
        for clip in (grating_clip, tip_pair_clip, empty_clip):
            assert extractor.extract(clip).shape == (24 * 24 + 48,)

    def test_matches_feature_shape(self):
        e = SquishFeatures(max_cuts=16)
        assert e.feature_shape == (16 * 16 + 32,)

    def test_normalized_deltas(self, grating_clip):
        feats = SquishFeatures(max_cuts=32).extract(grating_clip)
        deltas = feats[-64:]
        assert deltas.max() <= 1.0
        assert deltas.min() >= 0.0

    def test_bad_max_cuts(self):
        with pytest.raises(ValueError):
            SquishFeatures(max_cuts=1)

    def test_distinguishes_patterns(self, grating_clip, tip_pair_clip):
        e = SquishFeatures()
        assert not np.allclose(
            e.extract(grating_clip), e.extract(tip_pair_clip)
        )

"""Tests for extractor infrastructure: caching, standardization, concat."""

import numpy as np
import pytest

from repro.features import (
    CachingExtractor,
    ConcatFeatures,
    DensityGrid,
    Standardizer,
    vectorize,
    vectorize_standardized,
)
from repro.features.base import FeatureExtractor


class CountingExtractor(FeatureExtractor):
    name = "counting"

    def __init__(self):
        self.calls = 0

    def extract(self, clip):
        self.calls += 1
        return np.array([clip.density()])


class TestCaching:
    def test_second_extract_cached(self, grating_clip):
        inner = CountingExtractor()
        cached = CachingExtractor(inner)
        a = cached.extract(grating_clip)
        b = cached.extract(grating_clip)
        assert inner.calls == 1
        np.testing.assert_array_equal(a, b)
        assert cached.cache_size() == 1

    def test_clear(self, grating_clip):
        inner = CountingExtractor()
        cached = CachingExtractor(inner)
        cached.extract(grating_clip)
        cached.clear()
        cached.extract(grating_clip)
        assert inner.calls == 2

    def test_name_wraps_inner(self):
        assert "counting" in CachingExtractor(CountingExtractor()).name


class TestStandardizer:
    def test_zero_mean_unit_std(self, rng):
        x = rng.normal(5.0, 3.0, size=(200, 4))
        z = Standardizer().fit_transform(x)
        np.testing.assert_allclose(z.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(z.std(axis=0), 1.0, rtol=1e-10)

    def test_constant_column_safe(self):
        x = np.ones((10, 2))
        z = Standardizer().fit_transform(x)
        assert np.isfinite(z).all()

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            Standardizer().transform(np.ones((2, 2)))

    def test_train_statistics_applied_to_test(self, rng):
        train = rng.normal(0, 1, (100, 3))
        test = rng.normal(10, 1, (50, 3))
        s = Standardizer().fit(train)
        z = s.transform(test)
        assert z.mean() > 5  # test shifted relative to train stats


class TestVectorize:
    def test_vectorize(self, tiny_dataset):
        x, y = vectorize(DensityGrid(grid=6), tiny_dataset)
        assert x.shape == (len(tiny_dataset), 36)
        np.testing.assert_array_equal(y, tiny_dataset.labels)

    def test_vectorize_standardized(self, tiny_dataset, rng):
        train, test = tiny_dataset.split(0.3, rng)
        x_tr, y_tr, x_te, y_te, scaler = vectorize_standardized(
            DensityGrid(grid=6), train, test
        )
        np.testing.assert_allclose(x_tr.mean(axis=0), 0.0, atol=1e-9)
        assert x_te.shape[1] == x_tr.shape[1]
        assert scaler.mean_ is not None


class TestConcat:
    def test_concatenates(self, grating_clip):
        concat = ConcatFeatures([DensityGrid(grid=4), DensityGrid(grid=6)])
        feats = concat.extract(grating_clip)
        assert feats.shape == (16 + 36,)
        assert "+" in concat.name

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ConcatFeatures([])

"""Tests for the raster/batched extractor APIs and the bounded cache."""

import numpy as np
import pytest

from repro.features import (
    CachingExtractor,
    DCTFeatureTensor,
    DensityGrid,
    HOGFeatures,
    block_reduce_mean_batch,
    feature_tensor_batch,
)
from repro.features.base import FeatureExtractor

from ..conftest import clip_from_rects
from repro.geometry import Rect


def _raster_stack(n=5, side=96, seed=0):
    rng = np.random.default_rng(seed)
    return rng.random((n, side, side))


class TestBatchParity:
    """extract_batch must equal stacking extract_raster per raster."""

    @pytest.mark.parametrize(
        "extractor",
        [
            DCTFeatureTensor(block=8, keep=4),
            DCTFeatureTensor(block=8, keep=3, flatten=True),
            DensityGrid(grid=12),
            HOGFeatures(cells=6, n_bins=4),  # generic fallback path
        ],
        ids=lambda e: e.name,
    )
    def test_batch_matches_loop(self, extractor):
        rasters = _raster_stack()
        batched = extractor.extract_batch(rasters)
        looped = np.stack([extractor.extract_raster(r) for r in rasters])
        np.testing.assert_allclose(batched, looped, atol=1e-12)

    def test_feature_tensor_batch_matches_single(self):
        rasters = _raster_stack(n=3, side=64)
        batched = feature_tensor_batch(rasters, block=8, keep=4)
        from repro.features import feature_tensor

        for i, raster in enumerate(rasters):
            np.testing.assert_allclose(
                batched[i], feature_tensor(raster, 8, 4), atol=1e-12
            )

    def test_block_reduce_batch_matches_single(self):
        from repro.features import block_reduce_mean

        rasters = _raster_stack(n=4, side=100)  # 100 not divisible by 12
        batched = block_reduce_mean_batch(rasters, grid=12)
        for i, raster in enumerate(rasters):
            np.testing.assert_allclose(
                batched[i], block_reduce_mean(raster, 12), atol=1e-12
            )

    def test_supports_rasters_flags(self):
        from repro.features import ConcentricSampling, SquishFeatures

        assert DCTFeatureTensor().supports_rasters
        assert DensityGrid().supports_rasters
        assert HOGFeatures().supports_rasters
        assert not SquishFeatures().supports_rasters  # geometry-only


class TestEmptyInputs:
    def test_extract_many_empty_with_shape(self):
        out = HOGFeatures(cells=6, n_bins=4).extract_many([])
        assert out.shape == (0, 144)

    def test_extract_many_empty_without_shape(self):
        # DCT feature shape depends on the clip; empty still returns (0, ...)
        out = DCTFeatureTensor().extract_many([])
        assert out.shape[0] == 0

    def test_extract_batch_empty(self):
        out = DensityGrid(grid=6).extract_batch(np.zeros((0, 96, 96)))
        assert out.shape == (0, 36)

    def test_feature_tensor_batch_empty(self):
        out = feature_tensor_batch(np.zeros((0, 96, 96)), block=8, keep=4)
        assert out.shape == (0, 16, 12, 12)


class CountingExtractor(FeatureExtractor):
    name = "counting"

    def __init__(self):
        self.calls = 0

    def extract(self, clip):
        self.calls += 1
        return np.array([clip.density()])


def _clip(tag, width):
    return clip_from_rects([Rect(0, 0, width, 256)], tag=tag)


class TestBoundedCache:
    def test_eviction_at_cap(self):
        inner = CountingExtractor()
        cached = CachingExtractor(inner, max_entries=2)
        a, b, c = _clip("a", 64), _clip("b", 128), _clip("c", 192)
        cached.extract(a)
        cached.extract(b)
        cached.extract(c)  # evicts a (least recently used)
        assert cached.cache_size() == 2
        assert cached.evictions == 1
        cached.extract(a)  # miss again: was evicted
        assert inner.calls == 4

    def test_lru_order_refreshed_on_hit(self):
        inner = CountingExtractor()
        cached = CachingExtractor(inner, max_entries=2)
        a, b, c = _clip("a", 64), _clip("b", 128), _clip("c", 192)
        cached.extract(a)
        cached.extract(b)
        cached.extract(a)  # refresh a; b is now LRU
        cached.extract(c)  # evicts b
        cached.extract(a)
        assert inner.calls == 3  # a never re-extracted

    def test_hit_miss_counters(self):
        cached = CachingExtractor(CountingExtractor(), max_entries=8)
        a = _clip("a", 64)
        cached.extract(a)
        cached.extract(a)
        cached.extract(a)
        assert (cached.hits, cached.misses) == (2, 1)
        assert cached.hit_ratio == pytest.approx(2 / 3)
        cached.reset_counters()
        assert (cached.hits, cached.misses, cached.evictions) == (0, 0, 0)

    def test_bad_cap_raises(self):
        with pytest.raises(ValueError):
            CachingExtractor(CountingExtractor(), max_entries=0)

    def test_delegates_raster_support(self):
        cached = CachingExtractor(DensityGrid(grid=6))
        assert cached.supports_rasters
        rasters = _raster_stack(n=3)
        np.testing.assert_allclose(
            cached.extract_batch(rasters),
            DensityGrid(grid=6).extract_batch(rasters),
        )

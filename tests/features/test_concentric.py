"""Tests for concentric-circle area sampling."""

import numpy as np
import pytest

from repro.features import ConcentricSampling
from repro.geometry import Rect, transform_clip

from ..conftest import clip_from_rects


class TestShapes:
    def test_samples_mode(self, grating_clip):
        feats = ConcentricSampling(n_rings=10, n_angles=16).extract(grating_clip)
        assert feats.shape == (160,)

    def test_rings_mode(self, grating_clip):
        feats = ConcentricSampling(n_rings=10, n_angles=16, mode="rings").extract(
            grating_clip
        )
        assert feats.shape == (10,)

    def test_feature_shape_property(self):
        assert ConcentricSampling(8, 12).feature_shape == (96,)
        assert ConcentricSampling(8, 12, mode="rings").feature_shape == (8,)

    def test_bad_params_raise(self):
        with pytest.raises(ValueError):
            ConcentricSampling(mode="bogus")
        with pytest.raises(ValueError):
            ConcentricSampling(n_rings=0)


class TestValues:
    def test_in_unit_range(self, grating_clip):
        feats = ConcentricSampling().extract(grating_clip)
        assert feats.min() >= 0.0
        assert feats.max() <= 1.0

    def test_empty_clip_zero(self, empty_clip):
        assert ConcentricSampling().extract(empty_clip).sum() == 0.0

    def test_full_cover_ones(self):
        clip = clip_from_rects([Rect(0, 0, 1200, 1200)])
        feats = ConcentricSampling().extract(clip)
        np.testing.assert_allclose(feats, 1.0, atol=1e-9)

    def test_center_blob_hits_inner_rings_only(self):
        clip = clip_from_rects([Rect(560, 560, 640, 640)])  # small center square
        rings = ConcentricSampling(n_rings=12, n_angles=32, mode="rings").extract(
            clip
        )
        assert rings[0] > 0.3
        assert rings[-1] == pytest.approx(0.0, abs=1e-9)

    def test_ring_means_rotation_tolerant(self):
        """Ring-mean CCAS barely changes under 90-degree rotation."""
        clip = clip_from_rects(
            [Rect(300, 560, 900, 624), Rect(560, 300, 624, 560)], tag="T"
        )
        rot = transform_clip(clip, "rot90")
        extractor = ConcentricSampling(n_rings=10, n_angles=64, mode="rings")
        a = extractor.extract(clip)
        b = extractor.extract(rot)
        np.testing.assert_allclose(a, b, atol=0.03)

    def test_samples_detect_direction(self):
        """Full samples distinguish a horizontal from a vertical wire."""
        horizontal = clip_from_rects([Rect(96, 568, 1104, 632)])
        vertical = clip_from_rects([Rect(568, 96, 632, 1104)])
        extractor = ConcentricSampling(n_rings=8, n_angles=16)
        assert not np.allclose(
            extractor.extract(horizontal), extractor.extract(vertical)
        )

"""Property-based invariants across the feature extractors (hypothesis)."""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.features import (
    ConcentricSampling,
    DCTFeatureTensor,
    DensityGrid,
    SquishFeatures,
    squish,
    unsquish,
)
from repro.geometry import Clip, Rect, union_area

WINDOW = 768


@st.composite
def clip_rects(draw):
    """A small random soup of grid-aligned rects inside the window."""
    n = draw(st.integers(1, 6))
    rects = []
    for _ in range(n):
        x1 = draw(st.integers(0, 80)) * 8
        y1 = draw(st.integers(0, 80)) * 8
        w = draw(st.integers(2, 20)) * 8
        h = draw(st.integers(2, 20)) * 8
        rects.append(
            Rect(x1, y1, min(x1 + w, WINDOW), min(y1 + h, WINDOW))
        )
    return tuple(r for r in rects if not r.empty())


def make_clip(rects):
    return Clip(
        window=Rect(0, 0, WINDOW, WINDOW),
        core=Rect.from_center(WINDOW // 2, WINDOW // 2, 256, 256),
        rects=rects,
    )


@settings(max_examples=30, deadline=None)
@given(clip_rects())
def test_squish_roundtrip_preserves_union_area(rects):
    clip = make_clip(rects)
    cells = unsquish(squish(clip))
    assert union_area(cells) == union_area(list(rects))


@settings(max_examples=30, deadline=None)
@given(clip_rects())
def test_extractors_deterministic(rects):
    clip = make_clip(rects)
    for extractor in (
        DensityGrid(grid=8),
        ConcentricSampling(n_rings=6, n_angles=8),
        DCTFeatureTensor(block=8, keep=2),
        SquishFeatures(max_cuts=16),
    ):
        a = extractor.extract(clip)
        b = extractor.extract(clip)
        np.testing.assert_array_equal(a, b)


@settings(max_examples=30, deadline=None)
@given(clip_rects())
def test_density_features_bounded_and_consistent(rects):
    clip = make_clip(rects)
    feats = DensityGrid(grid=8).extract(clip)
    assert feats.min() >= 0.0
    assert feats.max() <= 1.0 + 1e-12
    # overall mean equals exact covered-area fraction (rects may overlap)
    covered = union_area(list(rects)) / (WINDOW * WINDOW)
    assert abs(feats.mean() - covered) < 1e-9


@settings(max_examples=20, deadline=None)
@given(clip_rects(), st.integers(-20, 20), st.integers(-20, 20))
def test_global_translation_invariance(rects, dx8, dy8):
    """Moving geometry AND window together changes nothing."""
    dx, dy = dx8 * 8, dy8 * 8
    base = make_clip(rects)
    moved = Clip(
        window=base.window.translate(dx, dy),
        core=base.core.translate(dx, dy),
        rects=tuple(r.translate(dx, dy) for r in rects),
    )
    for extractor in (DensityGrid(grid=8), DCTFeatureTensor(block=8, keep=2)):
        np.testing.assert_allclose(
            extractor.extract(base), extractor.extract(moved)
        )

"""Property tests: batch APIs agree with scalar APIs for every registered
extractor (hypothesis).

These are the machine-checked versions of the contract the conformance
harness probes with fixed inputs: for arbitrary clip geometry,

* ``extract(clip) == extract_many([clip])[0]`` exactly, and
* ``extract_raster(r) == extract_batch(r[None])[0]`` (to float tolerance:
  vectorized batch kernels may reassociate reductions)

for every extractor in the registry.
"""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.features import available_extractors, create_extractor
from repro.geometry import Clip, Rect
from repro.geometry.rasterize import rasterize_clip

WINDOW = 768
CORE = 256


@st.composite
def clip_rects(draw):
    """A small random soup of grid-aligned rects inside the window."""
    n = draw(st.integers(1, 6))
    rects = []
    for _ in range(n):
        x1 = draw(st.integers(0, 80)) * 8
        y1 = draw(st.integers(0, 80)) * 8
        w = draw(st.integers(2, 20)) * 8
        h = draw(st.integers(2, 20)) * 8
        rects.append(Rect(x1, y1, min(x1 + w, WINDOW), min(y1 + h, WINDOW)))
    return tuple(r for r in rects if not r.empty())


def make_clip(rects):
    return Clip(
        window=Rect(0, 0, WINDOW, WINDOW),
        core=Rect.from_center(WINDOW // 2, WINDOW // 2, CORE, CORE),
        rects=rects,
    )


@pytest.mark.parametrize("name", sorted(available_extractors()))
@settings(max_examples=10, deadline=None)
@given(rects=clip_rects())
def test_extract_many_matches_extract(name, rects):
    extractor = create_extractor(name)
    clip = make_clip(rects)
    single = extractor.extract(clip)
    stacked = extractor.extract_many([clip])
    assert stacked.shape == (1,) + single.shape
    assert np.array_equal(stacked[0], single)


@pytest.mark.parametrize("name", sorted(available_extractors()))
@settings(max_examples=10, deadline=None)
@given(rects=clip_rects())
def test_extract_batch_matches_extract_raster(name, rects):
    extractor = create_extractor(name)
    if not extractor.supports_rasters:
        pytest.skip(f"{name} needs clip geometry, not rasters")
    raster = rasterize_clip(
        make_clip(rects), extractor.pixel_nm, antialias=True
    )
    single = extractor.extract_raster(raster)
    batched = extractor.extract_batch(raster[None])
    assert batched.shape == (1,) + single.shape
    assert np.allclose(batched[0], single, rtol=1e-9, atol=1e-12)


@pytest.mark.parametrize("name", sorted(available_extractors()))
def test_empty_batches_return_zero_rows(name):
    extractor = create_extractor(name)
    empty = extractor.extract_many([])
    assert isinstance(empty, np.ndarray) and empty.shape[0] == 0
    if extractor.supports_rasters:
        side = WINDOW // extractor.pixel_nm
        empty = extractor.extract_batch(np.zeros((0, side, side)))
        assert isinstance(empty, np.ndarray) and empty.shape[0] == 0

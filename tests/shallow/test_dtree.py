"""Tests for the CART decision tree."""

import numpy as np
import pytest

from repro.shallow import DecisionTree


def step_data(rng, n=100):
    """Label = x0 > 0.5, one clean axis-aligned split."""
    x = rng.random((n, 3))
    y = (x[:, 0] > 0.5).astype(np.int64)
    return x, y


class TestBasics:
    def test_single_split_task(self, rng):
        x, y = step_data(rng)
        tree = DecisionTree(max_depth=2).fit(x, y)
        assert (tree.predict(x) == y).all()
        assert tree.depth <= 2

    def test_pure_leaf_probabilities(self, rng):
        x, y = step_data(rng)
        tree = DecisionTree(max_depth=3).fit(x, y)
        probs = tree.predict_proba(x)
        assert set(np.round(probs, 6)) <= {0.0, 1.0}

    def test_depth_limit_respected(self, rng):
        x = rng.random((200, 5))
        y = (x.sum(axis=1) > 2.5).astype(np.int64)
        tree = DecisionTree(max_depth=3).fit(x, y)
        assert tree.depth <= 3

    def test_min_samples_leaf(self, rng):
        x, y = step_data(rng, n=10)
        tree = DecisionTree(max_depth=10, min_samples_leaf=5).fit(x, y)
        assert tree.depth <= 1

    def test_constant_labels_single_leaf(self, rng):
        x = rng.random((20, 2))
        tree = DecisionTree().fit(x, np.zeros(20, dtype=int))
        assert tree.depth == 0
        assert (tree.predict_proba(x) == 0.0).all()

    def test_constant_features_no_split(self, rng):
        x = np.ones((20, 3))
        y = np.array([0, 1] * 10)
        tree = DecisionTree().fit(x, y)
        assert tree.depth == 0
        np.testing.assert_allclose(tree.predict_proba(x), 0.5)

    def test_unfitted_raises(self, rng):
        with pytest.raises(RuntimeError):
            DecisionTree().predict(rng.random((2, 2)))

    def test_entropy_criterion_works(self, rng):
        x, y = step_data(rng)
        tree = DecisionTree(criterion="entropy").fit(x, y)
        assert (tree.predict(x) == y).all()

    def test_bad_criterion_raises(self):
        with pytest.raises(ValueError):
            DecisionTree(criterion="mse")


class TestWeights:
    def test_weights_shift_decision(self, rng):
        """Heavily weighting one class makes ambiguous points go its way."""
        x = np.array([[0.0], [0.0], [1.0], [1.0]])
        y = np.array([0, 1, 0, 1])  # features useless: labels mixed
        w_hot = np.array([0.01, 1.0, 0.01, 1.0])
        tree = DecisionTree(max_depth=1, min_samples_leaf=1).fit(
            x, y, sample_weight=w_hot
        )
        assert (tree.predict(x) == 1).all()

    def test_zero_weighted_points_ignored(self, rng):
        x, y = step_data(rng, n=50)
        # weight only the first 25 points; corrupt labels on the rest
        y_bad = y.copy()
        y_bad[25:] = 1 - y_bad[25:]
        w = np.array([1.0] * 25 + [0.0] * 25)
        tree = DecisionTree(max_depth=2).fit(x, y_bad, sample_weight=w)
        assert (tree.predict(x[:25]) == y[:25]).mean() == 1.0


class TestXor:
    def test_deep_tree_solves_xor(self, rng):
        """Greedy CART needs depth to carve XOR; it gets most of the way."""
        x = rng.uniform(-1, 1, (200, 2))
        y = ((x[:, 0] > 0) ^ (x[:, 1] > 0)).astype(np.int64)
        tree = DecisionTree(max_depth=8).fit(x, y)
        assert (tree.predict(x) == y).mean() >= 0.85

    def test_stump_cannot_solve_xor(self, rng):
        x = rng.uniform(-1, 1, (200, 2))
        y = ((x[:, 0] > 0) ^ (x[:, 1] > 0)).astype(np.int64)
        stump = DecisionTree(max_depth=1).fit(x, y)
        assert (stump.predict(x) == y).mean() < 0.75

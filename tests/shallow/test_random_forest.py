"""Tests for the random forest."""

import numpy as np
import pytest

from repro.shallow import RandomForest, RandomForestConfig
from repro.shallow.dtree import DecisionTree


def xor(rng, n=300):
    x = rng.uniform(-1, 1, (n, 2))
    y = ((x[:, 0] > 0) ^ (x[:, 1] > 0)).astype(np.int64)
    return x, y


class TestConfig:
    def test_invalid_raise(self):
        with pytest.raises(ValueError):
            RandomForestConfig(n_trees=0)
        with pytest.raises(ValueError):
            RandomForestConfig(feature_fraction=0.0)
        with pytest.raises(ValueError):
            RandomForestConfig(feature_fraction=1.5)


class TestForest:
    def test_fits_requested_trees(self, rng):
        x, y = xor(rng)
        forest = RandomForest(RandomForestConfig(n_trees=7)).fit(x, y, rng=rng)
        assert forest.n_trees_fitted == 7

    def test_learns_separable(self, rng):
        x = rng.random((200, 4))
        y = (x[:, 1] > 0.5).astype(np.int64)
        forest = RandomForest(RandomForestConfig(n_trees=15, feature_fraction=1.0))
        forest.fit(x, y, rng=rng)
        assert (forest.predict(x) == y).mean() >= 0.97

    def test_generalizes_on_xor(self, rng):
        x, y = xor(rng, n=500)
        forest = RandomForest(
            RandomForestConfig(n_trees=25, max_depth=8, feature_fraction=1.0)
        ).fit(x[:400], y[:400], rng=rng)
        assert (forest.predict(x[400:]) == y[400:]).mean() >= 0.8

    def test_forest_smoother_than_single_tree(self, rng):
        """Averaging yields intermediate probabilities, not only 0/1."""
        x, y = xor(rng)
        forest = RandomForest(RandomForestConfig(n_trees=20)).fit(x, y, rng=rng)
        probs = forest.predict_proba(x)
        assert ((probs > 0.05) & (probs < 0.95)).any()

    def test_feature_subsets_respected(self, rng):
        x = rng.random((100, 10))
        y = (x[:, 0] > 0.5).astype(np.int64)
        forest = RandomForest(
            RandomForestConfig(n_trees=5, feature_fraction=0.3)
        ).fit(x, y, rng=rng)
        for cols in forest.feature_subsets:
            assert len(cols) == 3

    def test_unfitted_raises(self, rng):
        with pytest.raises(RuntimeError):
            RandomForest().predict(rng.random((2, 3)))

    def test_deterministic_given_rng(self, rng):
        x, y = xor(rng)
        a = RandomForest().fit(x, y, rng=np.random.default_rng(4)).predict_proba(x)
        b = RandomForest().fit(x, y, rng=np.random.default_rng(4)).predict_proba(x)
        np.testing.assert_allclose(a, b)

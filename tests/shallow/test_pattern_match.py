"""Tests for pattern-matching detectors."""

import numpy as np
import pytest

from repro.data import ClipDataset
from repro.geometry import Rect, transform_clip
from repro.shallow import ExactPatternMatcher, FuzzyPatternMatcher

from ..conftest import clip_from_rects


def pattern_clip(gap, tag="pat"):
    """A tip-pair pattern parameterized by its gap."""
    x_end = 600 - gap // 2
    return clip_from_rects(
        [Rect(96, 568, x_end, 632), Rect(x_end + gap, 568, 1104, 632)], tag=tag
    )


@pytest.fixture
def library_dataset():
    """Two known hotspot patterns + two benign ones."""
    clips = [
        pattern_clip(32, "hot-a"),
        clip_from_rects([Rect(504, 96, 568, 1104), Rect(608, 96, 672, 1104)], "hot-b"),
        clip_from_rects([Rect(96, 568, 1104, 632)], "cold-a"),
        pattern_clip(128, "cold-b"),
    ]
    return ClipDataset("lib", clips, np.array([1, 1, 0, 0]))


class TestExact:
    def test_detects_seen_hotspot(self, library_dataset):
        matcher = ExactPatternMatcher()
        matcher.fit(library_dataset)
        seen = library_dataset.clips[0]
        assert matcher.predict([seen])[0] == 1

    def test_detects_d4_orientation_of_seen(self, library_dataset):
        matcher = ExactPatternMatcher()
        matcher.fit(library_dataset)
        rotated = transform_clip(library_dataset.clips[0], "rot90")
        assert matcher.predict([rotated])[0] == 1

    def test_ignores_benign_library_entries(self, library_dataset):
        matcher = ExactPatternMatcher()
        matcher.fit(library_dataset)
        benign = library_dataset.clips[2]
        assert matcher.predict([benign])[0] == 0

    def test_misses_slightly_different_pattern(self, library_dataset):
        """The defining weakness: 8nm of change defeats exact matching."""
        matcher = ExactPatternMatcher()
        matcher.fit(library_dataset)
        near_miss = pattern_clip(40)  # library has gap=32
        assert matcher.predict([near_miss])[0] == 0

    def test_unfitted_raises(self, library_dataset):
        with pytest.raises(RuntimeError):
            ExactPatternMatcher().predict_proba(library_dataset.clips[:1])

    def test_fit_report_counts_library(self, library_dataset):
        report = ExactPatternMatcher().fit(library_dataset)
        assert "library=" in report.notes


class TestFuzzy:
    def test_detects_seen_exactly(self, library_dataset):
        matcher = FuzzyPatternMatcher(tolerance_nm=24)
        matcher.fit(library_dataset)
        assert matcher.match_score(library_dataset.clips[0]) == 1.0

    def test_catches_near_miss_within_tolerance(self, library_dataset):
        matcher = FuzzyPatternMatcher(tolerance_nm=24)
        matcher.fit(library_dataset)
        near_miss = pattern_clip(40)  # 8nm off the library's 32nm gap
        score = matcher.match_score(near_miss)
        assert score >= 0.5

    def test_score_decays_with_deviation(self, library_dataset):
        matcher = FuzzyPatternMatcher(tolerance_nm=24)
        matcher.fit(library_dataset)
        scores = [matcher.match_score(pattern_clip(g)) for g in (32, 40, 56, 96)]
        assert scores == sorted(scores, reverse=True)

    def test_unknown_topology_scores_zero(self, library_dataset):
        matcher = FuzzyPatternMatcher()
        matcher.fit(library_dataset)
        novel = clip_from_rects(
            [Rect(300, 300, 900, 364), Rect(300, 500, 900, 564), Rect(300, 700, 900, 764)],
            tag="novel",
        )
        assert matcher.match_score(novel) == 0.0

    def test_predict_proba_vector(self, library_dataset):
        matcher = FuzzyPatternMatcher()
        matcher.fit(library_dataset)
        probs = matcher.predict_proba(library_dataset.clips)
        assert probs.shape == (4,)
        assert probs[0] == 1.0

    def test_bad_tolerance_raises(self):
        with pytest.raises(ValueError):
            FuzzyPatternMatcher(tolerance_nm=0)

    def test_library_size(self, library_dataset):
        matcher = FuzzyPatternMatcher()
        assert matcher.library_size() == 0
        matcher.fit(library_dataset)
        assert matcher.library_size() == 16  # 2 hotspots x 8 orientations

"""Tests for the from-scratch SMO SVM."""

import numpy as np
import pytest

from repro.shallow import SVM, SVMConfig
from repro.shallow.svm import linear_kernel, rbf_kernel


def linear_blobs(rng, n=60, gap=2.0):
    """Two linearly separable Gaussian blobs."""
    x0 = rng.normal((-gap, -gap), 0.5, size=(n // 2, 2))
    x1 = rng.normal((gap, gap), 0.5, size=(n // 2, 2))
    x = np.vstack([x0, x1])
    y = np.array([0] * (n // 2) + [1] * (n // 2))
    perm = rng.permutation(n)
    return x[perm], y[perm]


def xor_data(rng, n=80):
    """The classic non-linear task: XOR quadrants."""
    x = rng.uniform(-1, 1, size=(n, 2))
    y = ((x[:, 0] > 0) ^ (x[:, 1] > 0)).astype(np.int64)
    return x + rng.normal(0, 0.02, x.shape), y


class TestKernels:
    def test_linear_kernel_is_gram(self, rng):
        a = rng.random((4, 3))
        b = rng.random((5, 3))
        np.testing.assert_allclose(linear_kernel(a, b), a @ b.T)

    def test_rbf_diagonal_ones(self, rng):
        a = rng.random((6, 3))
        k = rbf_kernel(a, a, gamma=0.7)
        np.testing.assert_allclose(np.diag(k), 1.0)

    def test_rbf_decays_with_distance(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[0.0, 1.0], [0.0, 3.0]])
        k = rbf_kernel(a, b, gamma=1.0)
        assert k[0, 0] > k[0, 1]


class TestConfig:
    def test_invalid_raise(self):
        with pytest.raises(ValueError):
            SVMConfig(C=0)
        with pytest.raises(ValueError):
            SVMConfig(kernel="poly")


class TestTraining:
    def test_separable_linear(self, rng):
        x, y = linear_blobs(rng)
        svm = SVM(SVMConfig(kernel="linear", C=1.0))
        svm.fit(x, y, rng=rng)
        assert (svm.predict(x) == y).mean() == 1.0

    def test_xor_needs_rbf(self, rng):
        x, y = xor_data(rng)
        rbf = SVM(SVMConfig(kernel="rbf", C=10.0)).fit(x, y, rng=rng)
        lin = SVM(SVMConfig(kernel="linear", C=10.0)).fit(x, y, rng=rng)
        assert (rbf.predict(x) == y).mean() >= 0.9
        assert (lin.predict(x) == y).mean() < 0.8

    def test_generalization(self, rng):
        x, y = xor_data(rng, n=120)
        svm = SVM(SVMConfig(kernel="rbf", C=10.0)).fit(x[:80], y[:80], rng=rng)
        assert (svm.predict(x[80:]) == y[80:]).mean() >= 0.85

    def test_single_class_raises(self, rng):
        x = rng.random((10, 2))
        with pytest.raises(ValueError):
            SVM().fit(x, np.zeros(10, dtype=int), rng=rng)

    def test_non_binary_labels_raise(self, rng):
        x = rng.random((10, 2))
        y = np.arange(10)
        with pytest.raises(ValueError):
            SVM().fit(x, y, rng=rng)

    def test_unfitted_raises(self, rng):
        with pytest.raises(RuntimeError):
            SVM().decision_function(rng.random((2, 2)))

    def test_has_support_vectors(self, rng):
        x, y = linear_blobs(rng)
        svm = SVM(SVMConfig(kernel="linear")).fit(x, y, rng=rng)
        assert 0 < svm.n_support <= len(x)


class TestScores:
    def test_proba_in_unit_interval(self, rng):
        x, y = linear_blobs(rng)
        svm = SVM().fit(x, y, rng=rng)
        probs = svm.predict_proba(x)
        assert probs.min() >= 0.0 and probs.max() <= 1.0

    def test_proba_monotone_in_decision(self, rng):
        x, y = linear_blobs(rng)
        svm = SVM().fit(x, y, rng=rng)
        dec = svm.decision_function(x)
        probs = svm.predict_proba(x)
        order = np.argsort(dec)
        assert (np.diff(probs[order]) >= -1e-12).all()

    def test_margin_signs_match_labels_on_separable(self, rng):
        x, y = linear_blobs(rng)
        svm = SVM(SVMConfig(kernel="linear")).fit(x, y, rng=rng)
        dec = svm.decision_function(x)
        assert ((dec >= 0).astype(int) == y).all()


class TestClassWeighting:
    def test_balanced_helps_minority_recall(self, rng):
        """On 10:1 imbalance, balanced C recovers minority recall."""
        x0 = rng.normal((-0.5, 0.0), 1.0, size=(200, 2))
        x1 = rng.normal((0.5, 0.0), 1.0, size=(20, 2))
        x = np.vstack([x0, x1])
        y = np.array([0] * 200 + [1] * 20)
        balanced = SVM(SVMConfig(class_weight="balanced")).fit(x, y, rng=rng)
        plain = SVM(SVMConfig(class_weight=None)).fit(x, y, rng=rng)
        # balanced weighting pushes the boundary toward the majority side:
        # minority decision values rise, and recall cannot drop
        dec_b = balanced.decision_function(x)[y == 1].mean()
        dec_p = plain.decision_function(x)[y == 1].mean()
        assert dec_b > dec_p
        recall_b = balanced.predict(x)[y == 1].mean()
        recall_p = plain.predict(x)[y == 1].mean()
        assert recall_b >= recall_p

"""Tests for logistic regression."""

import numpy as np
import pytest

from repro.shallow import LogisticConfig, LogisticRegression


def blobs(rng, n=100, gap=2.0):
    x0 = rng.normal(-gap, 1.0, size=(n // 2, 2))
    x1 = rng.normal(gap, 1.0, size=(n // 2, 2))
    return np.vstack([x0, x1]), np.array([0] * (n // 2) + [1] * (n // 2))


class TestTraining:
    def test_separable(self, rng):
        x, y = blobs(rng)
        model = LogisticRegression().fit(x, y)
        assert (model.predict(x) == y).mean() >= 0.98

    def test_proba_calibration_direction(self, rng):
        x, y = blobs(rng)
        model = LogisticRegression().fit(x, y)
        probs = model.predict_proba(x)
        assert probs[y == 1].mean() > probs[y == 0].mean()

    def test_convergence_stops_early(self, rng):
        x, y = blobs(rng, gap=5.0)
        model = LogisticRegression(LogisticConfig(max_iter=500, tol=1e-4))
        model.fit(x, y)
        assert model.n_iter_ < 500

    def test_l2_shrinks_weights(self, rng):
        x, y = blobs(rng)
        small = LogisticRegression(LogisticConfig(l2=1e-4)).fit(x, y)
        large = LogisticRegression(LogisticConfig(l2=10.0)).fit(x, y)
        assert np.linalg.norm(large.weights) < np.linalg.norm(small.weights)

    def test_balanced_weighting_boosts_minority(self, rng):
        x0 = rng.normal(-0.5, 1.0, size=(190, 2))
        x1 = rng.normal(0.5, 1.0, size=(10, 2))
        x = np.vstack([x0, x1])
        y = np.array([0] * 190 + [1] * 10)
        balanced = LogisticRegression(LogisticConfig(balanced=True)).fit(x, y)
        plain = LogisticRegression(LogisticConfig(balanced=False)).fit(x, y)
        assert balanced.predict(x).sum() >= plain.predict(x).sum()

    def test_unfitted_raises(self, rng):
        with pytest.raises(RuntimeError):
            LogisticRegression().decision_function(rng.random((2, 2)))

    def test_bad_config_raises(self):
        with pytest.raises(ValueError):
            LogisticConfig(lr=0)
        with pytest.raises(ValueError):
            LogisticConfig(l2=-1)

"""Tests for the FeatureDetector adapter and detector factories."""

import numpy as np
import pytest

from repro.features import DensityGrid
from repro.shallow import (
    FeatureDetector,
    LogisticRegression,
    make_adaboost_density,
    make_dtree_density,
    make_logistic_density,
    make_nb_density,
    make_svm_ccas,
)


@pytest.fixture
def detector():
    return FeatureDetector(
        name="logreg-density",
        extractor=DensityGrid(grid=8),
        learner=LogisticRegression(),
    )


class TestFeatureDetector:
    def test_fit_predict_roundtrip(self, detector, tiny_dataset, rng):
        report = detector.fit(tiny_dataset, rng=rng)
        assert report.train_seconds > 0
        # calibration may hold out a slice; everything else is fitted on
        assert 0 < report.n_train <= len(tiny_dataset)
        probs = detector.predict_proba(tiny_dataset.clips)
        assert probs.shape == (len(tiny_dataset),)
        assert ((probs >= 0) & (probs <= 1)).all()

    def test_learns_separable_toy_task(self, detector, tiny_dataset, rng):
        detector.fit(tiny_dataset, rng=rng)
        pred = detector.predict(tiny_dataset.clips)
        assert (pred == tiny_dataset.labels).mean() >= 0.9

    def test_upsampling_path(self, tiny_dataset, rng):
        det = FeatureDetector(
            name="up",
            extractor=DensityGrid(grid=8),
            learner=LogisticRegression(),
            upsample_ratio=0.9,
        )
        det.fit(tiny_dataset, rng=rng)
        assert det.predict(tiny_dataset.clips).shape == (len(tiny_dataset),)

    def test_standardizer_fitted(self, detector, tiny_dataset, rng):
        detector.fit(tiny_dataset, rng=rng)
        assert detector._scaler is not None


class TestFactories:
    @pytest.mark.parametrize(
        "factory",
        [
            make_svm_ccas,
            make_adaboost_density,
            make_dtree_density,
            make_logistic_density,
            make_nb_density,
        ],
    )
    def test_factory_trains_and_scores(self, factory, tiny_dataset, rng):
        det = factory()
        det.fit(tiny_dataset, rng=rng)
        probs = det.predict_proba(tiny_dataset.clips[:5])
        assert probs.shape == (5,)

    def test_factory_names_unique(self):
        names = {
            make_svm_ccas().name,
            make_adaboost_density().name,
            make_dtree_density().name,
            make_logistic_density().name,
            make_nb_density().name,
        }
        assert len(names) == 5


class TestThresholdCalibration:
    def test_calibration_moves_threshold(self, tiny_dataset, rng):
        det = FeatureDetector(
            name="cal",
            extractor=DensityGrid(grid=8),
            learner=LogisticRegression(),
            calibrate="f1",
        )
        det.fit(tiny_dataset, rng=rng)
        # threshold was chosen from held-out scores, not left at 0.5 exactly
        assert 0.0 <= det.threshold <= 1.0

    def test_calibration_disabled_keeps_default(self, tiny_dataset, rng):
        det = FeatureDetector(
            name="nocal",
            extractor=DensityGrid(grid=8),
            learner=LogisticRegression(),
            calibrate=None,
        )
        det.fit(tiny_dataset, rng=rng)
        assert det.threshold == 0.5

    def test_bad_calibrate_value_raises(self):
        import pytest as _pytest

        with _pytest.raises(ValueError):
            FeatureDetector(
                name="bad",
                extractor=DensityGrid(grid=8),
                learner=LogisticRegression(),
                calibrate="bogus",
            )

    def test_few_hotspots_skips_calibration(self, rng):
        import numpy as _np

        from repro.data import ClipDataset

        from ..conftest import synthetic_labeled_clips

        clips, _ = synthetic_labeled_clips(rng, n=20)
        labels = _np.zeros(20, dtype=_np.int64)
        labels[:2] = 1  # below the 4-hotspot minimum
        ds = ClipDataset("few", clips, labels)
        det = FeatureDetector(
            name="few",
            extractor=DensityGrid(grid=8),
            learner=LogisticRegression(),
            calibrate="f1",
        )
        det.fit(ds, rng=rng)
        assert det.threshold == 0.5

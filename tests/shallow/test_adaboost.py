"""Tests for AdaBoost."""

import numpy as np
import pytest

from repro.shallow import AdaBoost, AdaBoostConfig, DecisionTree


def xor(rng, n=200):
    x = rng.uniform(-1, 1, (n, 2))
    y = ((x[:, 0] > 0) ^ (x[:, 1] > 0)).astype(np.int64)
    return x, y


class TestConfig:
    def test_invalid_raise(self):
        with pytest.raises(ValueError):
            AdaBoostConfig(n_rounds=0)
        with pytest.raises(ValueError):
            AdaBoostConfig(learning_rate=0)


class TestBoosting:
    def test_boosting_beats_single_stump(self, rng):
        x, y = xor(rng)
        stump_acc = (DecisionTree(max_depth=1).fit(x, y).predict(x) == y).mean()
        boost = AdaBoost(AdaBoostConfig(n_rounds=40, weak_depth=2)).fit(x, y)
        boost_acc = (boost.predict(x) == y).mean()
        assert boost_acc > stump_acc
        assert boost_acc >= 0.95

    def test_generalizes(self, rng):
        x, y = xor(rng, n=400)
        boost = AdaBoost(AdaBoostConfig(n_rounds=30, weak_depth=2)).fit(
            x[:300], y[:300]
        )
        assert (boost.predict(x[300:]) == y[300:]).mean() >= 0.9

    def test_early_stop_on_perfect_fit(self, rng):
        x = rng.random((50, 2))
        y = (x[:, 0] > 0.5).astype(np.int64)
        boost = AdaBoost(AdaBoostConfig(n_rounds=50, weak_depth=1)).fit(x, y)
        assert boost.n_rounds_used < 50  # perfect stump ends boosting

    def test_alphas_positive(self, rng):
        x, y = xor(rng)
        boost = AdaBoost().fit(x, y)
        assert all(a > 0 for a in boost.alphas)

    def test_degenerate_labels_fallback(self, rng):
        x = rng.random((20, 2))
        y = np.zeros(20, dtype=np.int64)
        boost = AdaBoost().fit(x, y)
        assert boost.n_rounds_used >= 1
        assert (boost.predict(x) == 0).all()


class TestScores:
    def test_proba_range_and_threshold_consistency(self, rng):
        x, y = xor(rng)
        boost = AdaBoost().fit(x, y)
        probs = boost.predict_proba(x)
        assert probs.min() >= 0.0 and probs.max() <= 1.0
        np.testing.assert_array_equal(
            (probs >= 0.5).astype(int), boost.predict(x)
        )

    def test_unfitted_raises(self, rng):
        with pytest.raises(RuntimeError):
            AdaBoost().decision_function(rng.random((3, 2)))

"""Tests for Gaussian naive Bayes."""

import numpy as np
import pytest

from repro.shallow import GaussianNB


class TestGaussianNB:
    def test_separable_blobs(self, rng):
        x0 = rng.normal(-2, 0.5, size=(50, 3))
        x1 = rng.normal(2, 0.5, size=(50, 3))
        x = np.vstack([x0, x1])
        y = np.array([0] * 50 + [1] * 50)
        model = GaussianNB().fit(x, y)
        assert (model.predict(x) == y).mean() == 1.0

    def test_probabilities_sum_to_one(self, rng):
        x = rng.random((40, 2))
        y = (x[:, 0] > 0.5).astype(np.int64)
        model = GaussianNB().fit(x, y)
        p_hot = model.predict_proba(x)
        assert ((p_hot >= 0) & (p_hot <= 1)).all()

    def test_prior_influences_prediction(self, rng):
        """With identical likelihoods, the majority class wins."""
        x = np.vstack([rng.normal(0, 1, (90, 2)), rng.normal(0, 1, (10, 2))])
        y = np.array([0] * 90 + [1] * 10)
        model = GaussianNB().fit(x, y)
        probe = rng.normal(0, 1, (20, 2))
        assert model.predict_proba(probe).mean() < 0.5

    def test_single_class_raises(self, rng):
        with pytest.raises(ValueError):
            GaussianNB().fit(rng.random((10, 2)), np.zeros(10, dtype=int))

    def test_unfitted_raises(self, rng):
        with pytest.raises(RuntimeError):
            GaussianNB().predict(rng.random((2, 2)))

    def test_zero_variance_feature_safe(self, rng):
        x = rng.random((30, 3))
        x[:, 1] = 7.0  # constant feature
        y = (x[:, 0] > 0.5).astype(np.int64)
        model = GaussianNB().fit(x, y)
        assert np.isfinite(model.predict_proba(x)).all()

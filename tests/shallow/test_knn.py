"""Tests for kNN."""

import numpy as np
import pytest

from repro.shallow import KNN


class TestKNN:
    def test_memorizes_training_points(self, rng):
        x = rng.random((30, 2))
        y = (x[:, 0] > 0.5).astype(np.int64)
        model = KNN(k=1).fit(x, y)
        assert (model.predict(x) == y).all()

    def test_k_larger_than_dataset_clamped(self, rng):
        x = rng.random((3, 2))
        y = np.array([0, 1, 1])
        model = KNN(k=10).fit(x, y)
        probs = model.predict_proba(rng.random((5, 2)))
        assert np.isfinite(probs).all()

    def test_weighted_beats_unweighted_near_boundary(self, rng):
        """A query sitting on a training point should echo its label."""
        x = np.array([[0.0, 0.0], [1.0, 0.0], [1.01, 0.0]])
        y = np.array([1, 0, 0])
        weighted = KNN(k=3, weighted=True).fit(x, y)
        assert weighted.predict_proba(np.array([[0.0, 0.0]]))[0] > 0.9

    def test_unweighted_majority(self, rng):
        x = np.array([[0.0, 0.0], [0.1, 0.0], [5.0, 5.0]])
        y = np.array([1, 1, 0])
        model = KNN(k=3, weighted=False).fit(x, y)
        assert model.predict_proba(np.array([[0.05, 0.0]]))[0] == pytest.approx(
            2.0 / 3.0
        )

    def test_bad_k_raises(self):
        with pytest.raises(ValueError):
            KNN(k=0)

    def test_unfitted_raises(self, rng):
        with pytest.raises(RuntimeError):
            KNN().predict(rng.random((2, 2)))

    def test_generalization_on_blobs(self, rng):
        x0 = rng.normal(-2, 0.6, (60, 2))
        x1 = rng.normal(2, 0.6, (60, 2))
        x = np.vstack([x0, x1])
        y = np.array([0] * 60 + [1] * 60)
        model = KNN(k=5).fit(x[:100], y[:100])
        assert (model.predict(x[100:]) == y[100:]).mean() >= 0.9

"""The shared cache counter-ledger invariant (repro.counters).

Guards the drift this helper was written to catch: ``clear()`` emptying
a cache while its counters keep claiming the old contents, and bulk
reloads re-basing some counters but not others.
"""

import numpy as np
import pytest

from repro.counters import (
    CounterDriftError,
    assert_counters_consistent,
    counter_ledger,
)
from repro.features.base import CachingExtractor
from repro.features.density import DensityGrid
from repro.runtime import ScoreCache


class TestScoreCacheLedger:
    def test_put_evict_balance(self):
        cache = ScoreCache(max_entries=5, detector_tag="t")
        for i in range(8):
            cache.put(f"fp{i}", i * 0.1)
        ledger = assert_counters_consistent(cache)
        assert ledger == {
            "inserts": 8, "evictions": 3, "removed": 0, "size": 5
        }

    def test_overwrite_is_not_an_insert(self):
        cache = ScoreCache(max_entries=5)
        cache.put("fp", 0.1)
        cache.put("fp", 0.9)
        assert cache.inserts == 1
        assert_counters_consistent(cache)

    def test_clear_counts_removed(self):
        cache = ScoreCache(max_entries=5)
        for i in range(3):
            cache.put(f"fp{i}", 0.1)
        cache.clear()
        assert len(cache) == 0 and cache.removed == 3
        assert_counters_consistent(cache)

    def test_reset_counters_rebases_inserts(self):
        # the historical drift: zeroing every counter while the map is
        # still populated breaks the ledger on the next eviction
        cache = ScoreCache(max_entries=5)
        for i in range(4):
            cache.put(f"fp{i}", 0.1)
        cache.hits = 7
        cache.reset_counters()
        assert cache.hits == 0 and cache.inserts == 4
        assert_counters_consistent(cache)

    def test_load_starts_with_consistent_ledger(self, tmp_path):
        cache = ScoreCache(max_entries=10, detector_tag="t")
        for i in range(6):
            cache.put(f"fp{i}", 0.1 * i)
        path = cache.save(tmp_path / "scores.json")
        # reload under a smaller budget: only the recent tail is kept,
        # and the ledger must account for exactly what survived
        loaded = ScoreCache.load(path, max_entries=4, detector_tag="t")
        ledger = assert_counters_consistent(loaded)
        assert ledger["size"] == 4 and ledger["evictions"] == 0

    def test_drift_is_detected(self):
        cache = ScoreCache(max_entries=5)
        cache.put("fp", 0.1)
        cache.inserts = 0  # simulate a mutation path missing its counter
        with pytest.raises(CounterDriftError, match="drifted"):
            assert_counters_consistent(cache, label="ScoreCache")


class TestCachingExtractorLedger:
    @pytest.fixture()
    def clips(self):
        from repro.data.benchmarks import SUITE_CONFIGS
        from repro.data.synth import generate_clips

        rng = np.random.default_rng(0)
        clips, _ = generate_clips(rng, SUITE_CONFIGS[0].mix, 10, 768, 256)
        return clips

    def test_extract_and_evict_balance(self, clips):
        ext = CachingExtractor(DensityGrid(), max_entries=6)
        for clip in clips:
            ext.extract(clip)
        ledger = assert_counters_consistent(ext, label=ext.name)
        assert ledger["inserts"] == 10
        assert ledger["evictions"] == 4
        assert ledger["size"] == 6

    def test_clear_keeps_ledger_balanced(self, clips):
        ext = CachingExtractor(DensityGrid(), max_entries=16)
        for clip in clips:
            ext.extract(clip)
        ext.clear()
        assert ext.cache_size() == 0 and ext.removed == 10
        # and the cache still works after clearing
        ext.extract(clips[0])
        assert_counters_consistent(ext, label=ext.name)

    def test_reset_counters_rebases_inserts(self, clips):
        ext = CachingExtractor(DensityGrid(), max_entries=16)
        for clip in clips[:4]:
            ext.extract(clip)
        ext.reset_counters()
        assert ext.inserts == 4 and ext.misses == 0
        assert_counters_consistent(ext, label=ext.name)

    def test_counter_ledger_uses_cache_size(self, clips):
        # CachingExtractor has no __len__; the helper must fall back
        ext = CachingExtractor(DensityGrid(), max_entries=16)
        ext.extract(clips[0])
        assert counter_ledger(ext)["size"] == 1

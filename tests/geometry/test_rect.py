"""Unit tests for the Rect algebra."""

import pytest

from repro.geometry import Rect, bounding_box, merge_touching, union_area


class TestConstruction:
    def test_basic_properties(self):
        r = Rect(0, 0, 10, 4)
        assert r.width == 10
        assert r.height == 4
        assert r.area == 40
        assert r.perimeter == 28
        assert r.center == (5.0, 2.0)

    def test_malformed_raises(self):
        with pytest.raises(ValueError):
            Rect(5, 0, 0, 10)
        with pytest.raises(ValueError):
            Rect(0, 5, 10, 0)

    def test_degenerate_is_empty(self):
        assert Rect(3, 3, 3, 10).empty()
        assert Rect(3, 3, 10, 3).empty()
        assert not Rect(0, 0, 1, 1).empty()

    def test_from_points_normalizes(self):
        assert Rect.from_points((10, 8), (2, 3)) == Rect(2, 3, 10, 8)

    def test_from_center(self):
        r = Rect.from_center(100, 100, 50, 30)
        assert (r.width, r.height) == (50, 30)
        assert r.contains_point(100, 100)

    def test_from_center_negative_raises(self):
        with pytest.raises(ValueError):
            Rect.from_center(0, 0, -2, 4)

    def test_corners_ccw(self):
        assert Rect(0, 0, 2, 3).corners() == ((0, 0), (2, 0), (2, 3), (0, 3))


class TestPredicates:
    def test_contains_point_boundary_inclusive(self):
        r = Rect(0, 0, 10, 10)
        assert r.contains_point(0, 0)
        assert r.contains_point(10, 10)
        assert not r.contains_point(10.5, 5)

    def test_contains_rect(self):
        assert Rect(0, 0, 10, 10).contains(Rect(2, 2, 8, 8))
        assert Rect(0, 0, 10, 10).contains(Rect(0, 0, 10, 10))
        assert not Rect(0, 0, 10, 10).contains(Rect(5, 5, 11, 8))

    def test_intersects_open(self):
        a = Rect(0, 0, 10, 10)
        assert a.intersects(Rect(5, 5, 15, 15))
        # edge contact is not interior intersection
        assert not a.intersects(Rect(10, 0, 20, 10))

    def test_touches_closed(self):
        a = Rect(0, 0, 10, 10)
        assert a.touches(Rect(10, 0, 20, 10))
        assert a.touches(Rect(10, 10, 20, 20))  # corner contact
        assert not a.touches(Rect(11, 0, 20, 10))


class TestAlgebra:
    def test_intersection(self):
        a = Rect(0, 0, 10, 10)
        assert a.intersection(Rect(5, 5, 15, 15)) == Rect(5, 5, 10, 10)
        assert a.intersection(Rect(10, 0, 20, 10)) is None

    def test_union_bbox(self):
        assert Rect(0, 0, 1, 1).union_bbox(Rect(5, 5, 6, 7)) == Rect(0, 0, 6, 7)

    def test_subtract_inner_hole_produces_four(self):
        outer = Rect(0, 0, 10, 10)
        pieces = outer.subtract(Rect(3, 3, 7, 7))
        assert len(pieces) == 4
        assert sum(p.area for p in pieces) == 100 - 16
        for p in pieces:
            for q in pieces:
                assert p is q or not p.intersects(q)

    def test_subtract_disjoint_returns_self(self):
        a = Rect(0, 0, 5, 5)
        assert a.subtract(Rect(10, 10, 12, 12)) == [a]

    def test_subtract_covering_returns_empty(self):
        assert Rect(2, 2, 4, 4).subtract(Rect(0, 0, 10, 10)) == []

    def test_subtract_partial_edge(self):
        a = Rect(0, 0, 10, 10)
        pieces = a.subtract(Rect(5, 0, 15, 10))
        assert pieces == [Rect(0, 0, 5, 10)]

    def test_expand_and_shrink(self):
        assert Rect(5, 5, 10, 10).expand(2) == Rect(3, 3, 12, 12)
        shrunk = Rect(0, 0, 4, 4).expand(-3)
        assert shrunk.empty()

    def test_translate(self):
        assert Rect(1, 2, 3, 4).translate(10, -2) == Rect(11, 0, 13, 2)

    def test_scale(self):
        assert Rect(1, 2, 3, 4).scale(3) == Rect(3, 6, 9, 12)
        with pytest.raises(ValueError):
            Rect(0, 0, 1, 1).scale(-1)


class TestDistances:
    def test_gap_zero_when_touching(self):
        assert Rect(0, 0, 5, 5).gap(Rect(5, 0, 10, 5)) == 0.0

    def test_gap_axis(self):
        assert Rect(0, 0, 5, 5).gap(Rect(8, 0, 10, 5)) == 3.0

    def test_gap_diagonal(self):
        assert Rect(0, 0, 5, 5).gap(Rect(8, 9, 10, 12)) == 5.0  # 3-4-5

    def test_manhattan_gap(self):
        assert Rect(0, 0, 5, 5).manhattan_gap(Rect(8, 9, 10, 12)) == 4


class TestCollections:
    def test_bounding_box(self):
        box = bounding_box([Rect(0, 0, 1, 1), Rect(5, -2, 6, 3)])
        assert box == Rect(0, -2, 6, 3)

    def test_bounding_box_empty_raises(self):
        with pytest.raises(ValueError):
            bounding_box([])

    def test_union_area_disjoint(self):
        assert union_area([Rect(0, 0, 2, 2), Rect(10, 10, 12, 12)]) == 8

    def test_union_area_overlap_counted_once(self):
        assert union_area([Rect(0, 0, 4, 4), Rect(2, 2, 6, 6)]) == 28

    def test_union_area_nested(self):
        assert union_area([Rect(0, 0, 10, 10), Rect(2, 2, 4, 4)]) == 100

    def test_union_area_empty(self):
        assert union_area([]) == 0
        assert union_area([Rect(1, 1, 1, 5)]) == 0

    def test_merge_touching_groups(self):
        groups = merge_touching(
            [Rect(0, 0, 2, 2), Rect(2, 0, 4, 2), Rect(10, 10, 11, 11)]
        )
        sizes = sorted(len(g) for g in groups)
        assert sizes == [1, 2]

"""Property-based tests for the Rect algebra (hypothesis)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.geometry import Rect, union_area

coords = st.integers(min_value=-1000, max_value=1000)
sizes = st.integers(min_value=1, max_value=500)


@st.composite
def rects(draw):
    x1 = draw(coords)
    y1 = draw(coords)
    return Rect(x1, y1, x1 + draw(sizes), y1 + draw(sizes))


@given(rects(), rects())
def test_intersection_commutative(a, b):
    assert a.intersection(b) == b.intersection(a)


@given(rects(), rects())
def test_intersection_contained_in_both(a, b):
    inter = a.intersection(b)
    if inter is not None:
        assert a.contains(inter)
        assert b.contains(inter)


@given(rects(), rects())
def test_intersection_iff_intersects(a, b):
    assert (a.intersection(b) is not None) == a.intersects(b)


@given(rects(), rects())
def test_subtract_partitions_area(a, b):
    """area(a - b) + area(a ∩ b) == area(a)."""
    pieces = a.subtract(b)
    inter = a.intersection(b)
    inter_area = inter.area if inter else 0
    assert sum(p.area for p in pieces) + inter_area == a.area


@given(rects(), rects())
def test_subtract_pieces_disjoint_from_b(a, b):
    for p in a.subtract(b):
        assert not p.intersects(b)
        assert a.contains(p)


@given(rects(), coords, coords)
def test_translate_preserves_shape(r, dx, dy):
    t = r.translate(dx, dy)
    assert (t.width, t.height) == (r.width, r.height)
    assert t.translate(-dx, -dy) == r


@given(rects(), st.integers(min_value=0, max_value=50))
def test_expand_monotone(r, m):
    grown = r.expand(m)
    assert grown.contains(r)
    assert grown.width == r.width + 2 * m


@given(rects(), rects())
def test_gap_symmetric_and_nonnegative(a, b):
    assert a.gap(b) == b.gap(a)
    assert a.gap(b) >= 0.0
    if a.touches(b):
        assert a.gap(b) == 0.0


@settings(max_examples=50)
@given(st.lists(rects(), min_size=0, max_size=8))
def test_union_area_bounds(rect_list):
    """max(single areas) <= union <= sum of areas."""
    total = union_area(rect_list)
    assert total <= sum(r.area for r in rect_list)
    if rect_list:
        assert total >= max(r.area for r in rect_list)


@settings(max_examples=50)
@given(st.lists(rects(), min_size=1, max_size=6))
def test_union_area_idempotent_under_duplication(rect_list):
    assert union_area(rect_list) == union_area(rect_list + rect_list)

"""Property-based GDSII round-trip tests (hypothesis)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.geometry import Layout, Polygon, Rect
from repro.geometry.gdsii import read_gdsii, write_gdsii


@st.composite
def layouts(draw):
    layout = Layout(draw(st.sampled_from(["chip", "block", "LIB7"])))
    n_layers = draw(st.integers(1, 3))
    for li in range(n_layers):
        layer = layout.layer(f"layer{li}")
        n_polys = draw(st.integers(1, 4))
        for _ in range(n_polys):
            x1 = draw(st.integers(-500, 500))
            y1 = draw(st.integers(-500, 500))
            w = draw(st.integers(1, 300))
            h = draw(st.integers(1, 300))
            layer.add(Polygon.rectangle(Rect(x1, y1, x1 + w, y1 + h)))
    return layout


@settings(max_examples=25, deadline=None)
@given(layouts())
def test_roundtrip_preserves_area_per_layer(tmp_path_factory, layout):
    path = tmp_path_factory.mktemp("gds") / "x.gds"
    layer_map = write_gdsii(layout, path)
    loaded, db_unit = read_gdsii(path)
    assert db_unit > 0
    for name, number in layer_map.items():
        orig = sum(p.area for p in layout.layer(name).polygons)
        back = sum(p.area for p in loaded.layer(f"L{number}").polygons)
        assert back == orig


@settings(max_examples=25, deadline=None)
@given(layouts())
def test_roundtrip_preserves_bbox(tmp_path_factory, layout):
    path = tmp_path_factory.mktemp("gds") / "x.gds"
    write_gdsii(layout, path)
    loaded, _ = read_gdsii(path)
    assert loaded.bbox == layout.bbox

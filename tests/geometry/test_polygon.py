"""Unit and property tests for rectilinear polygons."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.geometry import Polygon, Rect, polygons_from_rect_soup, union_area


class TestConstruction:
    def test_rectangle(self):
        p = Polygon.rectangle(Rect(0, 0, 10, 5))
        assert p.area == 50
        assert p.bbox == Rect(0, 0, 10, 5)

    def test_degenerate_rectangle_raises(self):
        with pytest.raises(ValueError):
            Polygon.rectangle(Rect(0, 0, 0, 5))

    def test_from_rects_l_shape(self):
        p = Polygon.from_rects([Rect(0, 0, 10, 4), Rect(0, 4, 4, 10)])
        assert p.area == 40 + 24

    def test_from_rects_overlapping_union_area(self):
        p = Polygon.from_rects([Rect(0, 0, 6, 6), Rect(4, 0, 10, 6)])
        assert p.area == union_area([Rect(0, 0, 6, 6), Rect(4, 0, 10, 6)])

    def test_from_rects_disconnected_raises(self):
        with pytest.raises(ValueError):
            Polygon.from_rects([Rect(0, 0, 1, 1), Rect(5, 5, 6, 6)])

    def test_from_rects_empty_raises(self):
        with pytest.raises(ValueError):
            Polygon.from_rects([])

    def test_normalization_canonical(self):
        """Same point set from different decompositions compares equal."""
        a = Polygon.from_rects([Rect(0, 0, 10, 4), Rect(0, 4, 10, 10)])
        b = Polygon.from_rects([Rect(0, 0, 10, 10)])
        assert a == b


class TestFromRing:
    def test_square_ring(self):
        p = Polygon.from_ring([(0, 0), (10, 0), (10, 10), (0, 10)])
        assert p.area == 100

    def test_ring_with_repeat_endpoint(self):
        p = Polygon.from_ring([(0, 0), (10, 0), (10, 10), (0, 10), (0, 0)])
        assert p.area == 100

    def test_l_shape_ring(self):
        ring = [(0, 0), (10, 0), (10, 4), (4, 4), (4, 10), (0, 10)]
        p = Polygon.from_ring(ring)
        assert p.area == 10 * 4 + 4 * 6

    def test_ring_matches_rect_construction(self):
        ring = [(0, 0), (10, 0), (10, 4), (4, 4), (4, 10), (0, 10)]
        a = Polygon.from_ring(ring)
        b = Polygon.from_rects([Rect(0, 0, 10, 4), Rect(0, 4, 4, 10)])
        assert a == b

    def test_diagonal_edge_raises(self):
        with pytest.raises(ValueError):
            Polygon.from_ring([(0, 0), (10, 10), (0, 10)])

    def test_too_few_vertices_raises(self):
        with pytest.raises(ValueError):
            Polygon.from_ring([(0, 0), (10, 0), (10, 10)])


class TestQueries:
    def test_contains_point(self):
        p = Polygon.from_rects([Rect(0, 0, 10, 4), Rect(0, 4, 4, 10)])
        assert p.contains_point(1, 1)
        assert p.contains_point(1, 9)
        assert not p.contains_point(9, 9)

    def test_translate(self):
        p = Polygon.rectangle(Rect(0, 0, 4, 4)).translate(10, 20)
        assert p.bbox == Rect(10, 20, 14, 24)

    def test_intersects(self):
        a = Polygon.rectangle(Rect(0, 0, 10, 10))
        b = Polygon.rectangle(Rect(5, 5, 15, 15))
        c = Polygon.rectangle(Rect(20, 20, 30, 30))
        assert a.intersects(b)
        assert not a.intersects(c)

    def test_min_gap(self):
        a = Polygon.rectangle(Rect(0, 0, 10, 10))
        b = Polygon.rectangle(Rect(13, 0, 20, 10))
        assert a.min_gap(b) == 3.0


class TestSoup:
    def test_groups_disconnected(self):
        polys = polygons_from_rect_soup(
            [Rect(0, 0, 2, 2), Rect(2, 0, 4, 2), Rect(10, 0, 12, 2)]
        )
        areas = sorted(p.area for p in polys)
        assert areas == [4, 8]


coords = st.integers(min_value=0, max_value=200)
sizes = st.integers(min_value=1, max_value=60)


@st.composite
def touching_chain(draw):
    """A horizontally touching chain of rects (always connected)."""
    n = draw(st.integers(min_value=1, max_value=5))
    y1 = draw(coords)
    h = draw(sizes)
    x = draw(coords)
    rects = []
    for _ in range(n):
        w = draw(sizes)
        rects.append(Rect(x, y1, x + w, y1 + h))
        x += w
    return rects


@settings(max_examples=60)
@given(touching_chain())
def test_polygon_area_equals_union_area(rects):
    poly = Polygon.from_rects(rects)
    assert poly.area == union_area(rects)


@settings(max_examples=60)
@given(touching_chain(), st.integers(-50, 50), st.integers(-50, 50))
def test_translate_preserves_area(rects, dx, dy):
    poly = Polygon.from_rects(rects)
    assert poly.translate(dx, dy).area == poly.area

"""Tests for the GridIndex spatial hash."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.geometry import GridIndex, Rect


class TestBasics:
    def test_insert_query(self):
        idx = GridIndex(cell_size=100)
        idx.insert(1, Rect(0, 0, 50, 50))
        idx.insert(2, Rect(500, 500, 550, 550))
        assert idx.query(Rect(0, 0, 60, 60)) == [1]
        assert idx.query(Rect(0, 0, 1000, 1000)) == [1, 2]
        assert len(idx) == 2

    def test_duplicate_id_raises(self):
        idx = GridIndex()
        idx.insert(1, Rect(0, 0, 1, 1))
        with pytest.raises(KeyError):
            idx.insert(1, Rect(5, 5, 6, 6))

    def test_remove(self):
        idx = GridIndex(cell_size=64)
        idx.insert(1, Rect(0, 0, 50, 50))
        idx.remove(1)
        assert idx.query(Rect(0, 0, 100, 100)) == []
        assert len(idx) == 0

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            GridIndex().remove(42)

    def test_bad_cell_size(self):
        with pytest.raises(ValueError):
            GridIndex(cell_size=0)

    def test_rect_spanning_many_cells(self):
        idx = GridIndex(cell_size=10)
        idx.insert(1, Rect(0, 0, 100, 100))
        assert idx.query(Rect(95, 95, 99, 99)) == [1]

    def test_query_deduplicates(self):
        idx = GridIndex(cell_size=10)
        idx.insert(1, Rect(0, 0, 100, 5))
        hits = idx.query(Rect(0, 0, 100, 100))
        assert hits == [1]

    def test_edge_on_cell_boundary(self):
        """A rect ending exactly at a cell boundary stays in its cell."""
        idx = GridIndex(cell_size=10)
        idx.insert(1, Rect(0, 0, 10, 10))
        # a window strictly in the next cell that still *touches* at x=10
        assert idx.query(Rect(10, 0, 20, 10)) == [1]
        assert idx.query(Rect(11, 0, 20, 10)) == []

    def test_negative_coordinates(self):
        idx = GridIndex(cell_size=64)
        idx.insert(1, Rect(-100, -100, -50, -50))
        assert idx.query(Rect(-120, -120, -90, -90)) == [1]


class TestNearestGap:
    def test_within_radius(self):
        idx = GridIndex(cell_size=50)
        idx.insert(1, Rect(0, 0, 10, 10))
        idx.insert(2, Rect(100, 0, 110, 10))
        gaps = idx.nearest_gap(Rect(20, 0, 30, 10), max_radius=50)
        assert gaps == {1: 10.0}

    def test_touching_is_zero(self):
        idx = GridIndex()
        idx.insert(1, Rect(0, 0, 10, 10))
        gaps = idx.nearest_gap(Rect(10, 0, 20, 10), max_radius=5)
        assert gaps[1] == 0.0


rect_strategy = st.builds(
    lambda x, y, w, h: Rect(x, y, x + w, y + h),
    st.integers(-500, 500),
    st.integers(-500, 500),
    st.integers(1, 200),
    st.integers(1, 200),
)


@settings(max_examples=40)
@given(st.lists(rect_strategy, min_size=0, max_size=20), rect_strategy)
def test_query_matches_bruteforce(rect_list, window):
    """Index query == brute-force touch scan, for any cell alignment."""
    idx = GridIndex(cell_size=64)
    for i, r in enumerate(rect_list):
        idx.insert(i, r)
    expected = sorted(
        i for i, r in enumerate(rect_list) if r.touches(window)
    )
    assert idx.query(window) == expected

"""Tests for D4 clip transforms."""

import numpy as np
import pytest

from repro.geometry import (
    D4_NAMES,
    Rect,
    clip_orientations,
    rasterize_clip,
    transform_clip,
)

from ..conftest import clip_from_rects


@pytest.fixture
def asym_clip():
    """An L-shaped, deliberately asymmetric clip."""
    return clip_from_rects(
        [Rect(300, 400, 800, 464), Rect(300, 464, 364, 900)], tag="L"
    )


class TestGroupStructure:
    def test_identity_is_noop(self, asym_clip):
        assert transform_clip(asym_clip, "identity").rects == asym_clip.rects

    def test_unknown_name_raises(self, asym_clip):
        with pytest.raises(ValueError):
            transform_clip(asym_clip, "rot45")

    def test_rot90_four_times_is_identity(self, asym_clip):
        clip = asym_clip
        for _ in range(4):
            clip = transform_clip(clip, "rot90")
        assert set(clip.rects) == set(asym_clip.rects)

    @pytest.mark.parametrize(
        "name", ["rot180", "mirror_x", "mirror_y", "transpose", "anti_transpose"]
    )
    def test_involutions(self, asym_clip, name):
        twice = transform_clip(transform_clip(asym_clip, name), name)
        assert set(twice.rects) == set(asym_clip.rects)

    def test_window_and_core_preserved(self, asym_clip):
        for name in D4_NAMES:
            t = transform_clip(asym_clip, name)
            assert t.window == asym_clip.window
            assert t.core == asym_clip.core

    def test_area_preserved(self, asym_clip):
        base = sum(r.area for r in asym_clip.rects)
        for name in D4_NAMES:
            t = transform_clip(asym_clip, name)
            assert sum(r.area for r in t.rects) == base


class TestRasterConsistency:
    """Raster of transformed clip == numpy transform of the raster."""

    def test_mirror_x_matches_flipud(self, asym_clip):
        a = rasterize_clip(transform_clip(asym_clip, "mirror_x"), 8)
        b = np.flipud(rasterize_clip(asym_clip, 8))
        np.testing.assert_allclose(a, b)

    def test_mirror_y_matches_fliplr(self, asym_clip):
        a = rasterize_clip(transform_clip(asym_clip, "mirror_y"), 8)
        b = np.fliplr(rasterize_clip(asym_clip, 8))
        np.testing.assert_allclose(a, b)

    def test_rot90_matches_numpy(self, asym_clip):
        # rot90 point map (x,y)->(s-y,x) rotates the pattern +90deg; the
        # raster (rows=y, cols=x) then equals np.rot90 along the right axes
        a = rasterize_clip(transform_clip(asym_clip, "rot90"), 8)
        b = np.rot90(rasterize_clip(asym_clip, 8), k=-1)
        np.testing.assert_allclose(a, b)

    def test_transpose_matches_numpy_T(self, asym_clip):
        a = rasterize_clip(transform_clip(asym_clip, "transpose"), 8)
        b = rasterize_clip(asym_clip, 8).T
        np.testing.assert_allclose(a, b)


class TestOrientations:
    def test_all_orientations_count(self, asym_clip):
        assert len(clip_orientations(asym_clip)) == 8

    def test_orientations_distinct_for_asymmetric(self, asym_clip):
        rastered = [
            rasterize_clip(c, 8).tobytes() for c in clip_orientations(asym_clip)
        ]
        assert len(set(rastered)) == 8

    def test_tags_marked(self, asym_clip):
        t = transform_clip(asym_clip, "rot90")
        assert "rot90" in t.tag

    def test_non_square_raises(self):
        from repro.geometry import Clip

        clip = Clip(
            window=Rect(0, 0, 100, 50), core=Rect(40, 20, 60, 30), rects=()
        )
        with pytest.raises(ValueError):
            transform_clip(clip, "rot90")

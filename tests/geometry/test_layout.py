"""Tests for Layer / Layout / Clip containers and clip extraction."""

import pytest

from repro.geometry import (
    Clip,
    Layer,
    Layout,
    Polygon,
    Rect,
    extract_clip,
    tile_centers,
)


class TestLayer:
    def test_add_and_bbox(self):
        layer = Layer("m1")
        layer.add(Polygon.rectangle(Rect(0, 0, 10, 10)))
        layer.add(Polygon.rectangle(Rect(100, 100, 110, 120)))
        assert layer.bbox == Rect(0, 0, 110, 120)

    def test_empty_bbox_raises(self):
        with pytest.raises(ValueError):
            Layer("m1").bbox

    def test_add_rects_groups_polygons(self):
        layer = Layer("m1")
        layer.add_rects([Rect(0, 0, 2, 2), Rect(2, 0, 4, 2), Rect(10, 10, 12, 12)])
        assert len(layer.polygons) == 2

    def test_query_window(self):
        layer = Layer("m1")
        for i in range(20):
            layer.add(Polygon.rectangle(Rect(i * 100, 0, i * 100 + 50, 50)))
        hits = layer.query(Rect(240, 0, 420, 50))
        xs = sorted(p.bbox.x1 for p in hits)
        assert xs == [200, 300, 400]

    def test_query_after_mutation(self):
        """Index must invalidate when polygons are added."""
        layer = Layer("m1")
        layer.add(Polygon.rectangle(Rect(0, 0, 10, 10)))
        assert len(layer.query(Rect(0, 0, 1000, 1000))) == 1
        layer.add(Polygon.rectangle(Rect(500, 500, 510, 510)))
        assert len(layer.query(Rect(0, 0, 1000, 1000))) == 2

    def test_rects_in_clips_to_window(self):
        layer = Layer("m1")
        layer.add(Polygon.rectangle(Rect(0, 0, 100, 10)))
        rects = layer.rects_in(Rect(50, 0, 200, 10))
        assert rects == [Rect(50, 0, 100, 10)]


class TestLayout:
    def test_layer_get_or_create(self):
        layout = Layout("chip")
        m1 = layout.layer("metal1")
        assert layout.layer("metal1") is m1
        assert "metal1" in layout.layers

    def test_bbox_across_layers(self):
        layout = Layout("chip")
        layout.layer("m1").add(Polygon.rectangle(Rect(0, 0, 10, 10)))
        layout.layer("m2").add(Polygon.rectangle(Rect(50, 50, 60, 60)))
        assert layout.bbox == Rect(0, 0, 60, 60)

    def test_empty_layout_bbox_raises(self):
        with pytest.raises(ValueError):
            Layout("chip").bbox


class TestClip:
    def test_core_inside_window_enforced(self):
        with pytest.raises(ValueError):
            Clip(
                window=Rect(0, 0, 100, 100),
                core=Rect(50, 50, 150, 150),
                rects=(),
            )

    def test_local_rects_origin(self):
        layer = Layer("m1")
        layer.add(Polygon.rectangle(Rect(90, 90, 110, 140)))
        clip = extract_clip(layer, (100, 100), 64, 32)
        local = clip.local_rects()
        assert all(0 <= r.x1 and r.x2 <= 64 for r in local)
        assert clip.local_core() == Rect(16, 16, 48, 48)

    def test_density(self):
        layer = Layer("m1")
        layer.add(Polygon.rectangle(Rect(0, 0, 64, 64)))
        clip = extract_clip(layer, (32, 32), 64, 32)
        assert clip.density() == pytest.approx(1.0)

    def test_density_empty(self):
        layer = Layer("m1")
        clip = extract_clip(layer, (32, 32), 64, 32)
        assert clip.density() == 0.0

    def test_extract_core_too_big_raises(self):
        layer = Layer("m1")
        with pytest.raises(ValueError):
            extract_clip(layer, (0, 0), 64, 128)

    def test_clip_is_hashable(self):
        layer = Layer("m1")
        layer.add(Polygon.rectangle(Rect(0, 0, 64, 64)))
        a = extract_clip(layer, (32, 32), 64, 32)
        b = extract_clip(layer, (32, 32), 64, 32)
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1


class TestTileCenters:
    def test_tiling_counts(self):
        centers = tile_centers(Rect(0, 0, 1000, 1000), window_size=200, step=100)
        assert len(centers) == 81  # 9 x 9

    def test_windows_stay_inside(self):
        region = Rect(0, 0, 500, 300)
        for cx, cy in tile_centers(region, window_size=200, step=100):
            window = Rect.from_center(cx, cy, 200, 200)
            assert region.contains(window)

    def test_region_smaller_than_window(self):
        assert tile_centers(Rect(0, 0, 100, 100), 200, 50) == []

    def test_bad_step_raises(self):
        with pytest.raises(ValueError):
            tile_centers(Rect(0, 0, 100, 100), 50, 0)

    def test_iter_matches_list(self):
        from repro.geometry import iter_tile_centers

        region = Rect(0, 0, 1000, 700)
        assert list(iter_tile_centers(region, 200, 100)) == tile_centers(
            region, 200, 100
        )

    def test_count_matches_len(self):
        from repro.geometry import count_tile_centers

        for region in (
            Rect(0, 0, 1000, 1000),
            Rect(0, 0, 500, 300),
            Rect(0, 0, 100, 100),  # smaller than the window
            Rect(0, 0, 999, 333),  # uneven strides
        ):
            assert count_tile_centers(region, 200, 100) == len(
                tile_centers(region, 200, 100)
            )

"""Tests for the binary GDSII reader/writer."""

import struct

import pytest

from repro.geometry import Layout, Polygon, Rect
from repro.geometry.gdsii import (
    GDSIIError,
    _gds_real8,
    _parse_real8,
    read_gdsii,
    write_gdsii,
)


@pytest.fixture
def layout():
    layout = Layout("chip")
    m1 = layout.layer("metal1")
    m1.add(Polygon.rectangle(Rect(0, 0, 100, 40)))
    m1.add(Polygon.from_rects([Rect(200, 0, 300, 40), Rect(200, 40, 240, 160)]))
    via = layout.layer("via1")
    via.add(Polygon.rectangle(Rect(50, 50, 122, 122)))
    return layout


class TestReal8:
    @pytest.mark.parametrize(
        "value", [0.0, 1.0, -1.0, 1e-3, 1e-9, 0.5, 123456.789, -2.5e-7]
    )
    def test_roundtrip(self, value):
        assert _parse_real8(_gds_real8(value)) == pytest.approx(
            value, rel=1e-12, abs=1e-300
        )


class TestRoundTrip:
    def test_write_read(self, layout, tmp_path):
        path = tmp_path / "chip.gds"
        layer_map = write_gdsii(layout, path)
        assert set(layer_map) == {"metal1", "via1"}
        loaded, db_unit = read_gdsii(path)
        assert loaded.name == "chip"
        assert db_unit == pytest.approx(1e-9)
        # layers come back as numbered names
        assert set(loaded.layers) == {f"L{n}" for n in layer_map.values()}
        # total area preserved per layer
        m1_number = layer_map["metal1"]
        loaded_m1 = loaded.layer(f"L{m1_number}")
        orig_area = sum(p.area for p in layout.layer("metal1").polygons)
        loaded_area = sum(p.area for p in loaded_m1.polygons)
        assert loaded_area == orig_area

    def test_geometry_exact(self, tmp_path):
        layout = Layout("one")
        layout.layer("m").add(Polygon.rectangle(Rect(8, 16, 120, 64)))
        path = tmp_path / "one.gds"
        write_gdsii(layout, path)
        loaded, _ = read_gdsii(path)
        (poly,) = loaded.layer("L1").polygons
        assert poly.bbox == Rect(8, 16, 120, 64)
        assert poly.area == 112 * 48

    def test_file_is_even_aligned_binary(self, layout, tmp_path):
        path = tmp_path / "chip.gds"
        write_gdsii(layout, path)
        data = path.read_bytes()
        assert len(data) % 2 == 0
        # starts with a HEADER record
        length, rec_type = struct.unpack(">HH", data[:4])
        assert rec_type == 0x0002

    def test_deterministic_output(self, layout, tmp_path):
        a = tmp_path / "a.gds"
        b = tmp_path / "b.gds"
        write_gdsii(layout, a)
        write_gdsii(layout, b)
        assert a.read_bytes() == b.read_bytes()


class TestMalformed:
    def test_not_gdsii_raises(self, tmp_path):
        path = tmp_path / "x.gds"
        path.write_bytes(b"\x00\x04\x04\x00")  # lone ENDLIB, no header
        with pytest.raises(GDSIIError):
            read_gdsii(path)

    def test_bad_record_length(self, tmp_path):
        path = tmp_path / "x.gds"
        path.write_bytes(b"\x00\x01\x00\x02")
        with pytest.raises(GDSIIError):
            read_gdsii(path)

    def test_truncated_stream(self, layout, tmp_path):
        path = tmp_path / "x.gds"
        write_gdsii(layout, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2 + 1])  # cut mid-record
        with pytest.raises(GDSIIError):
            read_gdsii(path)

    def test_trailing_bytes_after_endlib_tolerated(self, layout, tmp_path):
        """Real tools pad streams; everything after ENDLIB is ignored."""
        path = tmp_path / "x.gds"
        write_gdsii(layout, path)
        path.write_bytes(path.read_bytes() + b"\x00\x00")
        loaded, _ = read_gdsii(path)
        assert loaded.layers

"""Round-trip and error tests for layout/clip serialization."""

import pytest

from repro.geometry import (
    ClipFormatError,
    Layout,
    Polygon,
    Rect,
    load_clips,
    load_layout,
    save_clips,
    save_layout,
)

from ..conftest import clip_from_rects


class TestLayoutJson:
    def test_roundtrip(self, tmp_path):
        layout = Layout("chip")
        layout.layer("m1").add(Polygon.rectangle(Rect(0, 0, 10, 10)))
        layout.layer("m2").add(
            Polygon.from_rects([Rect(0, 0, 10, 4), Rect(0, 4, 4, 10)])
        )
        path = tmp_path / "layout.json"
        save_layout(layout, path)
        loaded = load_layout(path)
        assert loaded.name == "chip"
        assert set(loaded.layers) == {"m1", "m2"}
        assert loaded.layer("m2").polygons[0] == layout.layer("m2").polygons[0]


class TestClipText:
    def test_roundtrip_with_labels(self, tmp_path):
        clips = [
            clip_from_rects([Rect(300, 300, 900, 364)], tag="a"),
            clip_from_rects([Rect(300, 500, 364, 900)], tag="b"),
        ]
        path = tmp_path / "clips.txt"
        save_clips(clips, path, labels=[1, 0])
        loaded, labels = load_clips(path)
        assert labels == [1, 0]
        assert [c.tag for c in loaded] == ["a", "b"]
        assert loaded[0].rects == clips[0].rects
        assert loaded[0].window == clips[0].window
        assert loaded[0].core == clips[0].core

    def test_roundtrip_unlabeled(self, tmp_path):
        clips = [clip_from_rects([Rect(300, 300, 900, 364)])]
        path = tmp_path / "clips.txt"
        save_clips(clips, path)
        loaded, labels = load_clips(path)
        assert labels == [None]
        assert len(loaded) == 1

    def test_empty_clip_roundtrip(self, tmp_path, empty_clip):
        path = tmp_path / "clips.txt"
        save_clips([empty_clip], path, labels=[0])
        loaded, labels = load_clips(path)
        assert loaded[0].rects == ()
        assert labels == [0]

    def test_label_length_mismatch_raises(self, tmp_path):
        clips = [clip_from_rects([Rect(300, 300, 900, 364)])]
        with pytest.raises(ValueError):
            save_clips(clips, tmp_path / "x.txt", labels=[1, 0])

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        clips = [clip_from_rects([Rect(300, 300, 900, 364)], tag="a")]
        path = tmp_path / "clips.txt"
        save_clips(clips, path, labels=[1])
        text = "# header comment\n\n" + path.read_text()
        path.write_text(text)
        loaded, labels = load_clips(path)
        assert len(loaded) == 1 and labels == [1]


class TestMalformed:
    def _write(self, tmp_path, text):
        p = tmp_path / "bad.txt"
        p.write_text(text)
        return p

    def test_rect_outside_clip(self, tmp_path):
        p = self._write(tmp_path, "RECT 0 0 1 1\n")
        with pytest.raises(ClipFormatError):
            load_clips(p)

    def test_end_outside_clip(self, tmp_path):
        p = self._write(tmp_path, "END\n")
        with pytest.raises(ClipFormatError):
            load_clips(p)

    def test_unterminated_clip(self, tmp_path):
        p = self._write(
            tmp_path,
            "CLIP a WINDOW 0 0 8 8 CORE 2 2 6 6 LAYER m1 LABEL 1\nRECT 0 0 1 1\n",
        )
        with pytest.raises(ClipFormatError):
            load_clips(p)

    def test_nested_clip(self, tmp_path):
        header = "CLIP a WINDOW 0 0 8 8 CORE 2 2 6 6 LAYER m1 LABEL 1\n"
        p = self._write(tmp_path, header + header)
        with pytest.raises(ClipFormatError):
            load_clips(p)

    def test_unknown_record(self, tmp_path):
        p = self._write(tmp_path, "BOGUS 1 2 3\n")
        with pytest.raises(ClipFormatError):
            load_clips(p)

    def test_malformed_header(self, tmp_path):
        p = self._write(tmp_path, "CLIP a WINDOW 0 0 8 8 LABEL 1\n")
        with pytest.raises(ClipFormatError):
            load_clips(p)

    def test_bad_coordinates(self, tmp_path):
        p = self._write(
            tmp_path,
            "CLIP a WINDOW 8 8 0 0 CORE 2 2 6 6 LAYER m1 LABEL 1\nEND\n",
        )
        with pytest.raises(ClipFormatError):
            load_clips(p)

"""Tests for rasterization: coverage exactness and orientation."""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.geometry import (
    Layer,
    Rect,
    raster_fingerprint,
    rasterize_clip,
    rasterize_rects,
    rasterize_region,
)
from repro.geometry.rasterize import core_slice

from ..conftest import clip_from_rects


class TestRasterizeRects:
    def test_full_cover(self):
        window = Rect(0, 0, 64, 64)
        grid = rasterize_rects([window], window, pixel_nm=8)
        assert grid.shape == (8, 8)
        assert np.all(grid == 1.0)

    def test_empty(self):
        grid = rasterize_rects([], Rect(0, 0, 64, 64), pixel_nm=8)
        assert grid.sum() == 0.0

    def test_pixel_aligned_block(self):
        window = Rect(0, 0, 64, 64)
        grid = rasterize_rects([Rect(8, 16, 24, 32)], window, pixel_nm=8)
        assert grid[2:4, 1:3].sum() == 4.0
        assert grid.sum() == 4.0

    def test_orientation_row0_is_bottom(self):
        window = Rect(0, 0, 64, 64)
        grid = rasterize_rects([Rect(0, 0, 64, 8)], window, pixel_nm=8)
        assert np.all(grid[0] == 1.0)
        assert grid[1:].sum() == 0.0

    def test_antialias_partial_pixels(self):
        window = Rect(0, 0, 16, 16)
        grid = rasterize_rects([Rect(0, 0, 4, 8)], window, pixel_nm=8)
        # covers half the height and half the width of pixel (0,0)
        assert grid[0, 0] == pytest.approx(0.5)
        assert grid[1, 0] == 0.0

    def test_hard_threshold_mode(self):
        window = Rect(0, 0, 16, 16)
        grid = rasterize_rects(
            [Rect(0, 0, 5, 8)], window, pixel_nm=8, antialias=False
        )
        assert set(np.unique(grid)) <= {0.0, 1.0}
        assert grid[0, 0] == 1.0  # 5/8 coverage rounds to printed

    def test_overlap_saturates(self):
        window = Rect(0, 0, 16, 16)
        grid = rasterize_rects(
            [Rect(0, 0, 16, 16), Rect(0, 0, 16, 16)], window, pixel_nm=8
        )
        assert grid.max() == 1.0

    def test_out_of_window_clipped(self):
        window = Rect(0, 0, 16, 16)
        grid = rasterize_rects([Rect(-100, -100, 8, 8)], window, pixel_nm=8)
        assert grid[0, 0] == 1.0
        assert grid.sum() == 1.0

    def test_indivisible_window_raises(self):
        with pytest.raises(ValueError):
            rasterize_rects([], Rect(0, 0, 60, 64), pixel_nm=8)

    def test_bad_pixel_raises(self):
        with pytest.raises(ValueError):
            rasterize_rects([], Rect(0, 0, 64, 64), pixel_nm=0)


class TestCoverageExactness:
    @settings(max_examples=60)
    @given(
        st.integers(0, 56), st.integers(0, 56), st.integers(1, 60), st.integers(1, 60)
    )
    def test_total_coverage_equals_area(self, x1, y1, w, h):
        """Sum of coverage fractions * pixel area == rect area (clipped)."""
        window = Rect(0, 0, 64, 64)
        rect = Rect(x1, y1, min(x1 + w, 64), min(y1 + h, 64))
        grid = rasterize_rects([rect], window, pixel_nm=8)
        assert grid.sum() * 64 == pytest.approx(rect.area)


class TestClipRaster:
    def test_clip_shape_and_core_slice(self, grating_clip):
        grid = rasterize_clip(grating_clip, pixel_nm=8)
        assert grid.shape == (96, 96)
        rs, cs = core_slice(grating_clip, pixel_nm=8)
        assert rs.stop - rs.start == 32
        assert cs.stop - cs.start == 32

    def test_grating_density(self, grating_clip):
        grid = rasterize_clip(grating_clip, pixel_nm=8)
        # 64/128 grating covers ~half the window
        assert 0.4 <= grid.mean() <= 0.6


def _wire_layer() -> Layer:
    layer = Layer("metal1")
    layer.add_rects(
        [Rect(0, i * 96, 1024, i * 96 + 48) for i in range(10)]
        + [Rect(100, 0, 160, 1024), Rect(500, 37, 707, 911)]
    )
    return layer


class TestRasterizeRegion:
    def test_window_slices_match_rect_raster(self):
        """Any aligned window slice equals rasterizing that window alone."""
        layer = _wire_layer()
        plane = rasterize_region(layer, Rect(0, 0, 1024, 1024), pixel_nm=8)
        assert plane.shape == (128, 128)
        for window in (
            Rect(0, 0, 256, 256),
            Rect(256, 512, 512, 768),
            Rect(768, 768, 1024, 1024),
            Rect(104, 40, 360, 296),  # aligned but off-rect-boundaries
        ):
            direct = rasterize_rects(
                [r for p in layer.query(window) for r in p.rects],
                window,
                pixel_nm=8,
            )
            np.testing.assert_allclose(
                plane.window(window), direct, atol=1e-12
            )

    def test_antialias_false_thresholds(self):
        layer = _wire_layer()
        plane = rasterize_region(
            layer, Rect(0, 0, 512, 512), pixel_nm=8, antialias=False
        )
        assert set(np.unique(plane.grid)) <= {0.0, 1.0}

    def test_covers_rejects_misalignment(self):
        layer = _wire_layer()
        plane = rasterize_region(layer, Rect(0, 0, 512, 512), pixel_nm=8)
        assert plane.covers(Rect(8, 16, 264, 272))
        assert not plane.covers(Rect(4, 16, 260, 272))  # x not on pixel grid
        assert not plane.covers(Rect(8, 16, 270, 272))  # width not divisible
        assert not plane.covers(Rect(8, 16, 264, 520))  # leaves the plane
        with pytest.raises(ValueError):
            plane.window(Rect(4, 16, 260, 272))

    def test_indivisible_region_raises(self):
        with pytest.raises(ValueError):
            rasterize_region(_wire_layer(), Rect(0, 0, 60, 64), pixel_nm=8)


class TestRasterFingerprint:
    def test_identical_rasters_match(self):
        a = np.linspace(0, 1, 64).reshape(8, 8)
        assert raster_fingerprint(a) == raster_fingerprint(a.copy())

    def test_distinct_rasters_differ(self):
        a = np.zeros((8, 8))
        b = np.zeros((8, 8))
        b[3, 4] = 1.0
        assert raster_fingerprint(a) != raster_fingerprint(b)

    def test_shape_in_hash(self):
        a = np.zeros((4, 16))
        b = np.zeros((8, 8))
        assert raster_fingerprint(a) != raster_fingerprint(b)

    def test_absorbs_float_jitter(self):
        """Sub-quantum differences (plane-vs-clip float noise) hash equal."""
        a = np.full((8, 8), 0.5)
        b = a + 1e-9
        assert raster_fingerprint(a) == raster_fingerprint(b)

    def test_prefix_disjoint_from_clip_fingerprints(self):
        assert raster_fingerprint(np.zeros((4, 4))).startswith("r:")

"""Tests for the design-rule checker."""

import pytest

from repro.geometry import (
    DesignRules,
    Layer,
    Polygon,
    Rect,
    check_layer,
    check_spacing,
    is_clean,
)
from repro.geometry.drc import check_polygon_width

RULES = DesignRules(min_width=32, min_spacing=32, min_area=0)


def layer_of(*polys):
    layer = Layer("m1")
    for p in polys:
        layer.add(p)
    return layer


class TestRules:
    def test_invalid_rules_raise(self):
        with pytest.raises(ValueError):
            DesignRules(min_width=0)
        with pytest.raises(ValueError):
            DesignRules(min_spacing=-1)
        with pytest.raises(ValueError):
            DesignRules(min_area=-5)


class TestWidth:
    def test_wide_wire_clean(self):
        poly = Polygon.rectangle(Rect(0, 0, 64, 1000))
        assert check_polygon_width(poly, RULES) == []

    def test_thin_wire_flagged(self):
        poly = Polygon.rectangle(Rect(0, 0, 16, 1000))
        violations = check_polygon_width(poly, RULES)
        assert len(violations) == 1
        assert violations[0].kind == "width"
        assert violations[0].measured == 16

    def test_l_bend_slabs_not_false_positives(self):
        # an L of 40-wide arms decomposes into slabs; the horizontal slab
        # is 40 tall (fine) and the vertical extension is 40 wide (fine)
        poly = Polygon.from_rects([Rect(0, 0, 200, 40), Rect(0, 40, 40, 200)])
        assert check_polygon_width(poly, RULES) == []

    def test_exactly_min_width_clean(self):
        poly = Polygon.rectangle(Rect(0, 0, 32, 100))
        assert check_polygon_width(poly, RULES) == []


class TestSpacing:
    def test_far_apart_clean(self):
        polys = [
            Polygon.rectangle(Rect(0, 0, 40, 100)),
            Polygon.rectangle(Rect(100, 0, 140, 100)),
        ]
        assert check_spacing(polys, RULES) == []

    def test_too_close_flagged(self):
        polys = [
            Polygon.rectangle(Rect(0, 0, 40, 100)),
            Polygon.rectangle(Rect(60, 0, 100, 100)),
        ]
        violations = check_spacing(polys, RULES)
        assert len(violations) == 1
        assert violations[0].kind == "spacing"
        assert violations[0].measured == 20

    def test_exactly_min_spacing_clean(self):
        polys = [
            Polygon.rectangle(Rect(0, 0, 40, 100)),
            Polygon.rectangle(Rect(72, 0, 112, 100)),
        ]
        assert check_spacing(polys, RULES) == []

    def test_diagonal_spacing_uses_linf(self):
        # diagonal offset (20, 20): manhattan gap is 20 -> violation
        polys = [
            Polygon.rectangle(Rect(0, 0, 40, 40)),
            Polygon.rectangle(Rect(60, 60, 100, 100)),
        ]
        violations = check_spacing(polys, RULES)
        assert len(violations) == 1


class TestLayerCheck:
    def test_clean_layer(self):
        layer = layer_of(
            Polygon.rectangle(Rect(0, 0, 64, 500)),
            Polygon.rectangle(Rect(128, 0, 192, 500)),
        )
        assert is_clean(layer, RULES)

    def test_area_rule(self):
        rules = DesignRules(min_width=32, min_spacing=32, min_area=10_000)
        layer = layer_of(Polygon.rectangle(Rect(0, 0, 40, 40)))
        violations = check_layer(layer, rules)
        kinds = {v.kind for v in violations}
        assert "area" in kinds

    def test_mixed_violations_reported(self):
        layer = layer_of(
            Polygon.rectangle(Rect(0, 0, 16, 500)),  # thin
            Polygon.rectangle(Rect(20, 0, 60, 500)),  # too close to the thin one
        )
        kinds = sorted({v.kind for v in check_layer(layer, RULES)})
        assert kinds == ["spacing", "width"]

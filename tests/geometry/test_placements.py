"""Region fingerprints and instance arrays (hierarchy-aware hashing)."""

from __future__ import annotations

import pytest

from repro.data.layouts import replicate_block
from repro.geometry import InstanceArray, Layer, Rect, region_fingerprint


def _cell_layer() -> Layer:
    layer = Layer("metal1")
    layer.add_rects(
        [Rect(32, k * 256 + 32, 992, k * 256 + 128) for k in range(4)]
    )
    return layer


def _array_layer(nx=3, ny=2, pitch=1024) -> Layer:
    return replicate_block(
        _cell_layer(), Rect(0, 0, 1024, 1024), nx, ny,
        pitch_x=pitch, pitch_y=pitch,
    )


# ----------------------------------------------------------------------
# region_fingerprint
# ----------------------------------------------------------------------
def test_fingerprint_is_translation_invariant():
    layer = _array_layer()
    a = region_fingerprint(layer, Rect(0, 0, 1024, 1024))
    b = region_fingerprint(layer, Rect(1024, 0, 2048, 1024))
    c = region_fingerprint(layer, Rect(2048, 1024, 3072, 2048))
    assert a == b == c


def test_fingerprint_depends_on_phase_not_just_content():
    layer = _array_layer()
    aligned = region_fingerprint(layer, Rect(0, 0, 1024, 1024))
    shifted = region_fingerprint(layer, Rect(64, 0, 1088, 1024))
    assert aligned != shifted


def test_fingerprint_is_insertion_order_independent():
    """The hash canonicalizes rect order: only geometry matters."""
    rects = [Rect(0, 0, 512, 64), Rect(100, 200, 300, 400),
             Rect(600, 600, 700, 760)]
    forward = Layer("metal1")
    forward.add_rects(rects)
    backward = Layer("metal1")
    backward.add_rects(rects[::-1])
    window = Rect(0, 0, 768, 768)
    assert region_fingerprint(forward, window) == region_fingerprint(
        backward, window
    )


def test_fingerprint_clips_to_the_region():
    layer = Layer("metal1")
    layer.add_rects([Rect(-512, 100, 512, 200)])
    other = Layer("metal1")
    other.add_rects([Rect(0, 100, 512, 200)])
    window = Rect(0, 0, 768, 768)
    # geometry outside the region cannot influence the hash
    assert region_fingerprint(layer, window) == region_fingerprint(
        other, window
    )


def test_fingerprint_changes_inside_the_edited_region_only():
    layer = _array_layer()
    before = [
        region_fingerprint(layer, Rect(i * 1024, 0, (i + 1) * 1024, 1024))
        for i in range(3)
    ]
    layer.add_rects([Rect(1100, 400, 1300, 500)])  # edit placement (1, 0)
    after = [
        region_fingerprint(layer, Rect(i * 1024, 0, (i + 1) * 1024, 1024))
        for i in range(3)
    ]
    assert before[0] == after[0]
    assert before[1] != after[1]
    assert before[2] == after[2]


def test_fingerprint_covers_region_dimensions():
    empty = Layer("metal1")
    empty.add_rects([Rect(5000, 5000, 5100, 5100)])  # far away: both empty
    assert region_fingerprint(empty, Rect(0, 0, 512, 512)) != region_fingerprint(
        empty, Rect(0, 0, 1024, 1024)
    )


# ----------------------------------------------------------------------
# InstanceArray
# ----------------------------------------------------------------------
def test_instance_array_places_on_the_pitch_grid():
    array = InstanceArray(Rect(0, 0, 1024, 1024), nx=3, ny=2,
                          pitch_x=1536, pitch_y=2048)
    assert array.placement(0, 0) == Rect(0, 0, 1024, 1024)
    assert array.placement(2, 1) == Rect(3072, 2048, 4096, 3072)
    assert array.extent == Rect(0, 0, 4096, 3072)


def test_instance_array_validates():
    cell = Rect(0, 0, 1024, 1024)
    with pytest.raises(ValueError, match="nx and ny"):
        InstanceArray(cell, nx=0, ny=1, pitch_x=1024, pitch_y=1024)
    with pytest.raises(ValueError, match="pitch must be"):
        InstanceArray(cell, nx=2, ny=2, pitch_x=512, pitch_y=1024)
    array = InstanceArray(cell, nx=2, ny=2, pitch_x=1024, pitch_y=1024)
    with pytest.raises(ValueError, match="outside"):
        array.placement(2, 0)


def test_instance_array_matches_replicate_block_geometry():
    array = InstanceArray(Rect(0, 0, 1024, 1024), nx=3, ny=2,
                          pitch_x=1024, pitch_y=1024)
    layer = _array_layer(nx=3, ny=2, pitch=1024)
    fps = {
        region_fingerprint(layer, array.placement(ix, iy))
        for ix in range(3)
        for iy in range(2)
    }
    assert len(fps) == 1, "every placement is a translated copy"

"""End-to-end integration tests: synth -> label -> train -> evaluate."""

import numpy as np
import pytest

from repro import available, create, evaluate_detector, make_benchmark
from repro.data import BenchmarkConfig, FamilyMix


@pytest.fixture(scope="module")
def small_benchmark():
    """A small-but-real oracle-labeled benchmark (module-scoped: ~20s)."""
    config = BenchmarkConfig(
        name="IT",
        n_train=100,
        n_test=80,
        mix=FamilyMix(
            weights={"grating": 1.5, "tip_pair": 1.0, "isolated_wire": 1.0},
            marginal_p={},
            default_marginal_p=0.45,
        ),
    )
    return make_benchmark(config, seed=123)


class TestPipeline:
    def test_benchmark_has_both_classes(self, small_benchmark):
        assert small_benchmark.train.n_hotspots >= 3
        assert small_benchmark.test.n_hotspots >= 3
        assert small_benchmark.train.n_non_hotspots >= 10

    @pytest.mark.parametrize(
        "name", ["svm-ccas", "dtree-density", "pattern-fuzzy", "nb-density"]
    )
    def test_shallow_detectors_beat_chance(self, small_benchmark, name):
        det = create(name)
        result = evaluate_detector(det, small_benchmark, rng=np.random.default_rng(0))
        # every real detector must rank hotspots above chance here
        if result.auc is not None:
            assert result.auc > 0.55, f"{name} auc={result.auc}"

    def test_svm_is_strong_on_easy_set(self, small_benchmark):
        result = evaluate_detector(
            create("svm-ccas"), small_benchmark, rng=np.random.default_rng(0)
        )
        assert result.auc is not None and result.auc > 0.7

    def test_cnn_learns_benchmark(self, small_benchmark):
        from repro.nn import CNNDetector, CNNDetectorConfig

        det = CNNDetector(
            CNNDetectorConfig(epochs=8, biased_epsilon=None, width=12, calibrate=None)
        )
        result = evaluate_detector(det, small_benchmark, rng=np.random.default_rng(1))
        assert result.auc is not None and result.auc > 0.65

    def test_registry_covers_all_generations(self):
        names = available()
        assert any("pattern" in n for n in names)  # gen 1
        assert any(n.startswith("svm") for n in names)  # gen 2
        assert any(n.startswith("cnn") for n in names)  # gen 3


class TestDatasetRoundTripThroughDetector:
    def test_save_reload_evaluate(self, small_benchmark, tmp_path):
        """Cached datasets evaluate identically to fresh ones."""
        from repro.data import load_dataset, save_dataset

        save_dataset(small_benchmark.test, tmp_path, "test")
        reloaded = load_dataset(tmp_path, "test")
        det = create("dtree-density")
        rng = np.random.default_rng(0)
        det.fit(small_benchmark.train, rng=rng)
        a = det.predict_proba(small_benchmark.test.clips)
        b = det.predict_proba(reloaded.clips)
        np.testing.assert_allclose(a, b)

"""Tests for threshold calibration."""

import numpy as np
import pytest

from repro.core import best_f1_threshold, max_accuracy_under_fa_cap
from repro.core.metrics import confusion


class TestFACap:
    def test_perfectly_separable(self):
        y = np.array([0, 0, 0, 1, 1])
        s = np.array([0.1, 0.2, 0.3, 0.8, 0.9])
        thr, recall, fa = max_accuracy_under_fa_cap(y, s, 0.0)
        assert recall == 1.0
        assert fa == 0.0
        assert 0.3 < thr < 0.8

    def test_cap_binds(self):
        # hotspots interleaved: full recall needs fa > 0
        y = np.array([0, 1, 0, 1, 0, 1])
        s = np.array([0.1, 0.2, 0.3, 0.4, 0.5, 0.9])
        thr_tight, recall_tight, fa_tight = max_accuracy_under_fa_cap(y, s, 0.0)
        thr_loose, recall_loose, fa_loose = max_accuracy_under_fa_cap(y, s, 1.0)
        assert recall_loose == 1.0
        assert recall_tight < recall_loose
        assert fa_tight == 0.0

    def test_infeasible_cap_falls_back(self):
        y = np.array([0, 1])
        s = np.array([0.9, 0.1])  # inverted scores
        thr, recall, fa = max_accuracy_under_fa_cap(y, s, 0.0)
        assert fa == 0.0
        assert recall == 0.0

    def test_chosen_threshold_actually_meets_cap(self, rng):
        y = rng.integers(0, 2, 200)
        s = rng.random(200) * 0.5 + y * rng.random(200) * 0.5
        cap = 0.1
        thr, recall, fa = max_accuracy_under_fa_cap(y, s, cap)
        c = confusion(y, (s >= thr).astype(int))
        assert c.false_alarm_rate <= cap + 1e-12
        assert c.recall == pytest.approx(recall)


class TestBestF1:
    def test_perfect_case(self):
        y = np.array([0, 0, 1, 1])
        s = np.array([0.1, 0.2, 0.8, 0.9])
        thr, f1 = best_f1_threshold(y, s)
        assert f1 == 1.0

    def test_beats_default_threshold(self, rng):
        """Calibrated F1 >= F1 at the naive 0.5 cutoff."""
        y = rng.integers(0, 2, 300)
        s = np.clip(0.15 + 0.3 * y + rng.normal(0, 0.2, 300), 0, 1)
        thr, f1 = best_f1_threshold(y, s)
        naive = confusion(y, (s >= 0.5).astype(int)).f1
        assert f1 >= naive

    def test_constant_scores_handled(self):
        y = np.array([0, 1, 1])
        s = np.array([0.5, 0.5, 0.5])
        thr, f1 = best_f1_threshold(y, s)
        assert np.isfinite(thr)
        assert 0 <= f1 <= 1

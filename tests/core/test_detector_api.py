"""Tests for the Detector ABC contract and the oracle adapter."""

import numpy as np
import pytest

from repro.core import Detector, FitReport, OracleDetector
from repro.litho import HotspotOracle


class ConstantDetector(Detector):  # lint: disable=raster-parity  (test double)
    """Scores every clip with a fixed value (test double)."""

    name = "constant"

    def __init__(self, score: float) -> None:
        self.score = score

    def fit(self, train, rng=None):
        return FitReport(n_train=len(train))

    def predict_proba(self, clips):
        return np.full(len(clips), self.score)


class TestDetectorContract:
    def test_predict_uses_threshold(self, tiny_dataset):
        det = ConstantDetector(0.7)
        assert det.predict(tiny_dataset.clips[:3]).tolist() == [1, 1, 1]
        det.threshold = 0.9
        assert det.predict(tiny_dataset.clips[:3]).tolist() == [0, 0, 0]

    def test_repr_contains_name(self):
        assert "constant" in repr(ConstantDetector(0.5))


class TestOracleDetector:
    def test_matches_oracle_labels(self, tiny_dataset):
        oracle = HotspotOracle()
        det = OracleDetector(oracle)
        det.fit(tiny_dataset)
        clips = tiny_dataset.clips[:4]
        np.testing.assert_array_equal(
            det.predict(clips), oracle.label_many(clips)
        )

    def test_fit_is_free(self, tiny_dataset):
        report = OracleDetector(HotspotOracle()).fit(tiny_dataset)
        assert report.train_seconds == 0.0
        assert report.notes == "no training"

"""Tests for contest metrics: confusion, ROC, AUC."""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import Confusion, auc, confusion, roc_auc, roc_curve


class TestConfusion:
    def test_basic_counts(self):
        c = confusion([1, 1, 0, 0, 1], [1, 0, 0, 1, 1])
        assert (c.tp, c.fn, c.tn, c.fp) == (2, 1, 1, 1)
        assert c.n == 5

    def test_contest_accuracy_is_recall(self):
        c = Confusion(tp=8, fp=100, tn=0, fn=2)
        assert c.accuracy == pytest.approx(0.8)
        assert c.recall == c.accuracy

    def test_false_alarms_is_raw_fp(self):
        c = Confusion(tp=1, fp=37, tn=10, fn=0)
        assert c.false_alarms == 37
        assert c.false_alarm_rate == pytest.approx(37 / 47)

    def test_f1_precision_recall(self):
        c = Confusion(tp=6, fp=2, tn=10, fn=2)
        assert c.precision == pytest.approx(0.75)
        assert c.recall == pytest.approx(0.75)
        assert c.f1 == pytest.approx(0.75)

    def test_degenerate_empty_positives(self):
        c = Confusion(tp=0, fp=0, tn=5, fn=0)
        assert c.accuracy == 0.0
        assert c.precision == 0.0
        assert c.f1 == 0.0

    def test_overall_and_balanced_accuracy(self):
        c = Confusion(tp=1, fp=0, tn=97, fn=2)
        assert c.overall_accuracy == pytest.approx(0.98)
        assert c.balanced_accuracy == pytest.approx(0.5 * (1 / 3 + 1.0))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            confusion([1, 0], [1])

    def test_non_binary_raises(self):
        with pytest.raises(ValueError):
            confusion([1, 2], [1, 0])


class TestROC:
    def test_perfect_classifier(self):
        y = [0, 0, 1, 1]
        s = [0.1, 0.2, 0.8, 0.9]
        fpr, tpr, thr = roc_curve(y, s)
        assert auc(fpr, tpr) == pytest.approx(1.0)

    def test_random_scores_half_auc(self, rng):
        y = rng.integers(0, 2, 2000)
        s = rng.random(2000)
        assert roc_auc(y, s) == pytest.approx(0.5, abs=0.05)

    def test_inverted_classifier_zero_auc(self):
        y = [0, 0, 1, 1]
        s = [0.9, 0.8, 0.2, 0.1]
        assert roc_auc(y, s) == pytest.approx(0.0)

    def test_curve_endpoints(self, rng):
        y = rng.integers(0, 2, 50)
        y[0], y[1] = 0, 1  # both classes guaranteed
        s = rng.random(50)
        fpr, tpr, thr = roc_curve(y, s)
        assert (fpr[0], tpr[0]) == (0.0, 0.0)
        assert (fpr[-1], tpr[-1]) == (1.0, 1.0)
        assert thr[0] == np.inf

    def test_monotone(self, rng):
        y = rng.integers(0, 2, 100)
        y[:2] = [0, 1]
        s = rng.random(100)
        fpr, tpr, _ = roc_curve(y, s)
        assert (np.diff(fpr) >= 0).all()
        assert (np.diff(tpr) >= 0).all()

    def test_tied_scores_handled(self):
        y = [0, 1, 0, 1]
        s = [0.5, 0.5, 0.5, 0.5]
        fpr, tpr, _ = roc_curve(y, s)
        # single knee at (1, 1): ties collapse to one vertex
        assert len(fpr) == 2
        assert roc_auc(y, s) == pytest.approx(0.5)

    def test_single_class_raises(self):
        with pytest.raises(ValueError):
            roc_curve([1, 1], [0.2, 0.3])

    def test_auc_requires_sorted_fpr(self):
        with pytest.raises(ValueError):
            auc(np.array([0.0, 0.5, 0.2]), np.array([0, 0.5, 1.0]))


@settings(max_examples=30)
@given(
    st.lists(st.tuples(st.integers(0, 1), st.floats(0, 1)), min_size=4, max_size=60)
)
def test_auc_matches_rank_statistic(pairs):
    """AUC == P(score_pos > score_neg) + 0.5 P(tie), the Mann-Whitney U."""
    y = np.array([p[0] for p in pairs])
    s = np.array([p[1] for p in pairs])
    if y.sum() in (0, len(y)):
        return
    fpr, tpr, _ = roc_curve(y, s)
    computed = auc(fpr, tpr)
    pos = s[y == 1]
    neg = s[y == 0]
    wins = (pos[:, None] > neg[None, :]).sum()
    ties = (pos[:, None] == neg[None, :]).sum()
    expected = (wins + 0.5 * ties) / (len(pos) * len(neg))
    assert computed == pytest.approx(expected, abs=1e-9)

"""Tests for the active-learning loop."""

import numpy as np
import pytest

from repro.core import run_active_learning
from repro.core.detector import Detector, FitReport
from repro.features import DensityGrid
from repro.shallow import FeatureDetector, LogisticRegression

from ..conftest import synthetic_labeled_clips


class ToyOracle:
    """Labels by the toy rule (dense grating = hotspot); counts queries."""

    def __init__(self, labels_by_clip):
        self._labels = labels_by_clip
        self.queries = 0

    def label(self, clip):
        self.queries += 1
        return self._labels[clip]


@pytest.fixture
def pool(rng):
    clips, labels = synthetic_labeled_clips(rng, n=60)
    return clips, ToyOracle(dict(zip(clips, (int(v) for v in labels))))


def make_detector():
    return FeatureDetector(
        name="al",
        extractor=DensityGrid(grid=8),
        learner=LogisticRegression(),
        calibrate=None,
    )


class TestLoop:
    def test_budget_respected(self, pool, rng):
        clips, oracle = pool
        result = run_active_learning(
            make_detector, oracle, clips, rng, budget=30, seed_size=10, batch_size=5
        )
        assert result.labels_spent == 30
        assert oracle.queries == 30

    def test_history_monotone(self, pool, rng):
        clips, oracle = pool
        result = run_active_learning(
            make_detector, oracle, clips, rng, budget=25, seed_size=10, batch_size=5
        )
        counts = [r.n_labeled for r in result.history]
        assert counts == sorted(counts)
        assert counts[0] == 10
        assert counts[-1] == 25

    def test_detector_is_fitted(self, pool, rng):
        clips, oracle = pool
        result = run_active_learning(
            make_detector, oracle, clips, rng, budget=20, seed_size=10
        )
        scores = result.detector.predict_proba(clips[:5])
        assert scores.shape == (5,)

    def test_uncertainty_finds_boundary_faster_or_equal(self, pool):
        """Uncertainty sampling finds at least as many hotspots as random
        at the same budget (toy task; generous determinism via seeds)."""
        clips, oracle = pool
        found = {}
        for strategy in ("uncertainty", "random"):
            result = run_active_learning(
                make_detector,
                oracle,
                clips,
                np.random.default_rng(0),
                budget=30,
                seed_size=10,
                batch_size=5,
                strategy=strategy,
            )
            found[strategy] = result.labeled.n_hotspots
        # both variants function; the acquisition choice changes the set
        assert found["uncertainty"] > 0 and found["random"] > 0

    def test_invalid_args_raise(self, pool, rng):
        clips, oracle = pool
        with pytest.raises(ValueError):
            run_active_learning(
                make_detector, oracle, clips, rng, budget=5, seed_size=10
            )
        with pytest.raises(ValueError):
            run_active_learning(
                make_detector, oracle, clips, rng, budget=1000, seed_size=10
            )
        with pytest.raises(ValueError):
            run_active_learning(
                make_detector, oracle, clips, rng, budget=20, strategy="bogus"
            )

    def test_pool_exhaustion_stops_cleanly(self, pool, rng):
        clips, oracle = pool
        result = run_active_learning(
            make_detector,
            oracle,
            clips,
            rng,
            budget=len(clips),
            seed_size=10,
            batch_size=17,
        )
        assert result.labels_spent == len(clips)
        assert result.history[-1].pool_remaining == 0

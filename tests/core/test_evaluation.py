"""Tests for the evaluation harness."""

import numpy as np
import pytest

from repro.core import EvalResult, evaluate_detector, evaluate_on_suite
from repro.data import Benchmark

from .test_detector_api import ConstantDetector


@pytest.fixture
def toy_benchmark(tiny_dataset, rng):
    train, test = tiny_dataset.split(0.4, rng)
    return Benchmark(name="T", train=train, test=test)


class TestEvaluateDetector:
    def test_constant_one_full_recall_full_fa(self, toy_benchmark, rng):
        result = evaluate_detector(ConstantDetector(1.0), toy_benchmark, rng=rng)
        assert result.accuracy == 1.0
        assert result.false_alarms == toy_benchmark.test.n_non_hotspots
        assert result.benchmark == "T"
        assert result.detector == "constant"

    def test_constant_zero_no_detections(self, toy_benchmark, rng):
        result = evaluate_detector(ConstantDetector(0.0), toy_benchmark, rng=rng)
        assert result.accuracy == 0.0
        assert result.false_alarms == 0

    def test_timings_recorded(self, toy_benchmark, rng):
        result = evaluate_detector(ConstantDetector(0.5), toy_benchmark, rng=rng)
        assert result.fit_seconds >= 0
        assert result.predict_seconds > 0
        assert result.odst_seconds == pytest.approx(
            result.fit_seconds + result.predict_seconds
        )

    def test_no_fit_mode(self, toy_benchmark, rng):
        result = evaluate_detector(
            ConstantDetector(1.0), toy_benchmark, rng=rng, fit=False
        )
        assert result.fit_seconds == 0.0

    def test_auc_none_for_constant_scores(self, toy_benchmark, rng):
        result = evaluate_detector(ConstantDetector(0.4), toy_benchmark, rng=rng)
        assert result.auc is None

    def test_keep_scores(self, toy_benchmark, rng):
        result = evaluate_detector(
            ConstantDetector(0.4), toy_benchmark, rng=rng, keep_scores=True
        )
        assert result.scores is not None
        assert len(result.scores) == len(toy_benchmark.test)

    def test_row_fields(self, toy_benchmark, rng):
        row = evaluate_detector(ConstantDetector(1.0), toy_benchmark, rng=rng).row()
        for key in ("detector", "benchmark", "accuracy", "false_alarms", "odst_s"):
            assert key in row


class TestEvaluateOnSuite:
    def test_fresh_instance_per_benchmark(self, tiny_dataset, rng):
        created = []

        def factory():
            det = ConstantDetector(1.0)
            created.append(det)
            return det

        train, test = tiny_dataset.split(0.5, rng)
        suite = [
            Benchmark(name=f"B{i}", train=train, test=test) for i in range(3)
        ]
        results = evaluate_on_suite(factory, suite)
        assert len(results) == 3
        assert len(created) == 3
        assert [r.benchmark for r in results] == ["B0", "B1", "B2"]

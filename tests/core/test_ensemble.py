"""Tests for detector ensembles."""

import numpy as np
import pytest

from repro.core import MajorityVoteEnsemble, SoftVoteEnsemble

from .test_detector_api import ConstantDetector


class TestSoftVote:
    def test_weighted_mean(self, tiny_dataset):
        ens = SoftVoteEnsemble(
            [ConstantDetector(1.0), ConstantDetector(0.0)], weights=[3.0, 1.0]
        )
        ens.fit(tiny_dataset)
        probs = ens.predict_proba(tiny_dataset.clips[:2])
        np.testing.assert_allclose(probs, 0.75)

    def test_default_uniform_weights(self, tiny_dataset):
        ens = SoftVoteEnsemble([ConstantDetector(0.2), ConstantDetector(0.8)])
        ens.fit(tiny_dataset)
        np.testing.assert_allclose(
            ens.predict_proba(tiny_dataset.clips[:1]), 0.5
        )

    def test_empty_members_raises(self):
        with pytest.raises(ValueError):
            SoftVoteEnsemble([])

    def test_weight_mismatch_raises(self):
        with pytest.raises(ValueError):
            SoftVoteEnsemble([ConstantDetector(1.0)], weights=[1.0, 2.0])

    def test_zero_weights_raise(self):
        with pytest.raises(ValueError):
            SoftVoteEnsemble(
                [ConstantDetector(1.0), ConstantDetector(0.0)], weights=[0.0, 0.0]
            )

    def test_fit_aggregates_time(self, tiny_dataset):
        ens = SoftVoteEnsemble([ConstantDetector(0.5)])
        report = ens.fit(tiny_dataset)
        assert report.n_train == len(tiny_dataset)


class TestMajorityVote:
    def test_two_of_three(self, tiny_dataset):
        ens = MajorityVoteEnsemble(
            [ConstantDetector(0.9), ConstantDetector(0.9), ConstantDetector(0.1)]
        )
        ens.fit(tiny_dataset)
        probs = ens.predict_proba(tiny_dataset.clips[:2])
        np.testing.assert_allclose(probs, 2.0 / 3.0)
        assert ens.predict(tiny_dataset.clips[:2]).tolist() == [1, 1]

    def test_unanimous_zero(self, tiny_dataset):
        ens = MajorityVoteEnsemble([ConstantDetector(0.1), ConstantDetector(0.2)])
        ens.fit(tiny_dataset)
        assert ens.predict(tiny_dataset.clips[:2]).tolist() == [0, 0]

    def test_empty_members_raises(self):
        with pytest.raises(ValueError):
            MajorityVoteEnsemble([])

"""Tests for k-fold cross-validation."""

import numpy as np
import pytest

from repro.core.crossval import cross_validate, stratified_folds
from repro.features import DensityGrid
from repro.shallow import FeatureDetector, LogisticRegression


class TestStratifiedFolds:
    def test_partition(self, rng):
        labels = np.array([0] * 20 + [1] * 10)
        folds = stratified_folds(labels, 5, rng)
        all_idx = np.concatenate(folds)
        assert sorted(all_idx.tolist()) == list(range(30))
        assert len(set(all_idx.tolist())) == 30

    def test_stratification(self, rng):
        labels = np.array([0] * 20 + [1] * 10)
        for fold in stratified_folds(labels, 5, rng):
            assert labels[fold].sum() == 2  # 10 hotspots / 5 folds

    def test_uneven_classes(self, rng):
        labels = np.array([0] * 7 + [1] * 3)
        folds = stratified_folds(labels, 3, rng)
        hs_counts = [int(labels[f].sum()) for f in folds]
        assert sum(hs_counts) == 3
        assert max(hs_counts) - min(hs_counts) <= 1

    def test_k_too_small_raises(self, rng):
        with pytest.raises(ValueError):
            stratified_folds(np.array([0, 1]), 1, rng)


class TestCrossValidate:
    def make_detector(self):
        return FeatureDetector(
            name="cv",
            extractor=DensityGrid(grid=8),
            learner=LogisticRegression(),
            calibrate=None,
        )

    def test_runs_k_folds(self, tiny_dataset, rng):
        result = cross_validate(self.make_detector, tiny_dataset, rng, k=4)
        assert len(result.folds) == 4
        assert 0.0 <= result.mean_recall <= 1.0
        assert 0.0 <= result.mean_false_alarm_rate <= 1.0

    def test_separable_task_high_recall(self, tiny_dataset, rng):
        result = cross_validate(self.make_detector, tiny_dataset, rng, k=4)
        assert result.mean_recall >= 0.8  # the toy task is separable
        assert result.mean_auc is not None and result.mean_auc >= 0.9

    def test_summary_readable(self, tiny_dataset, rng):
        result = cross_validate(self.make_detector, tiny_dataset, rng, k=3)
        s = result.summary()
        assert "folds" in s and "recall" in s

    def test_too_few_hotspots_raises(self, rng):
        from repro.data import ClipDataset

        from ..conftest import synthetic_labeled_clips

        clips, _ = synthetic_labeled_clips(rng, n=12)
        labels = np.zeros(12, dtype=np.int64)
        labels[:2] = 1
        ds = ClipDataset("few", clips, labels)
        with pytest.raises(ValueError):
            cross_validate(self.make_detector, ds, rng, k=5)

"""Tests for the detector registry."""

import pytest

import repro  # noqa: F401  (imports register the standard detectors)
from repro.core import available, create
from repro.core.registry import clear, register

from .test_detector_api import ConstantDetector


class TestRegistry:
    def test_standard_detectors_registered(self):
        names = available()
        for expected in (
            "svm-ccas",
            "adaboost-density",
            "pattern-fuzzy",
            "cnn-dct",
        ):
            assert expected in names

    def test_create_returns_fresh_instances(self):
        a = create("svm-ccas")
        b = create("svm-ccas")
        assert a is not b

    def test_unknown_name_raises_with_listing(self):
        with pytest.raises(KeyError) as exc:
            create("does-not-exist")
        assert "available" in str(exc.value)

    def test_duplicate_registration_raises(self):
        register("test-dup", lambda: ConstantDetector(0.5))
        try:
            with pytest.raises(KeyError):
                register("test-dup", lambda: ConstantDetector(0.5))
        finally:
            # remove our test entry without nuking the real registry
            from repro.core import registry as reg

            del reg._REGISTRY["test-dup"]

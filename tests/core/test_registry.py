"""Tests for the detector registry."""

import pytest

import repro  # noqa: F401  (imports register the standard detectors)
from repro.core import available, create
from repro.core.registry import clear, register

from .test_detector_api import ConstantDetector


class TestRegistry:
    def test_standard_detectors_registered(self):
        names = available()
        for expected in (
            "svm-ccas",
            "adaboost-density",
            "pattern-fuzzy",
            "cnn-dct",
        ):
            assert expected in names

    def test_create_returns_fresh_instances(self):
        a = create("svm-ccas")
        b = create("svm-ccas")
        assert a is not b

    def test_unknown_name_raises_with_listing(self):
        with pytest.raises(KeyError) as exc:
            create("does-not-exist")
        assert "available" in str(exc.value)

    def test_create_forwards_overrides_to_factory(self):
        register("test-override", lambda scale=1.0: ConstantDetector(scale))
        try:
            det = create("test-override", scale=0.25)
            assert det.score == 0.25
        finally:
            from repro.core import registry as reg

            del reg._REGISTRY["test-override"]

    def test_create_threshold_override_applies_post_construction(self):
        det = create("svm-ccas", threshold=0.125)
        assert det.threshold == 0.125

    def test_create_unknown_override_raises_clearly(self):
        register("test-strict", lambda: ConstantDetector(0.5))
        try:
            with pytest.raises(TypeError) as exc:
                create("test-strict", bogus=1)
            assert "test-strict" in str(exc.value)
        finally:
            from repro.core import registry as reg

            del reg._REGISTRY["test-strict"]

    def test_duplicate_registration_raises(self):
        register("test-dup", lambda: ConstantDetector(0.5))
        try:
            with pytest.raises(KeyError):
                register("test-dup", lambda: ConstantDetector(0.5))
        finally:
            # remove our test entry without nuking the real registry
            from repro.core import registry as reg

            del reg._REGISTRY["test-dup"]

"""Tests for full-chip scanning."""

import numpy as np
import pytest

from repro.core import scan_layer
from repro.core.detector import Detector, FitReport
from repro.geometry import Layer, Rect


class DensityDetector(Detector):  # lint: disable=raster-parity  (test double)
    """Flags clips whose metal density exceeds a cutoff (test double)."""

    name = "density-cutoff"
    threshold = 0.5

    def __init__(self, cutoff=0.3):
        self.cutoff = cutoff

    def fit(self, train, rng=None):
        return FitReport()

    def predict_proba(self, clips):
        return np.array(
            [1.0 if c.density() > self.cutoff else 0.0 for c in clips]
        )


@pytest.fixture
def layer():
    """Sparse wires everywhere, one dense block in the lower-left."""
    layer = Layer("metal1")
    rects = []
    for i in range(30):
        rects.append(Rect(0, i * 256, 4096, i * 256 + 64))
    # dense block: extra wires between tracks in one corner
    for i in range(8):
        rects.append(Rect(0, i * 256 + 128, 1500, i * 256 + 192))
    layer.add_rects(rects)
    return layer


class TestScanLayer:
    def test_scan_tiles_region(self, layer):
        region = Rect(0, 0, 4096, 4096)
        result = scan_layer(DensityDetector(0.3), layer, region)
        assert len(result.clips) == len(result.centers)
        assert result.scores.shape == (len(result.clips),)

    def test_flags_only_dense_corner(self, layer):
        region = Rect(0, 0, 4096, 4096)
        result = scan_layer(DensityDetector(0.3), layer, region)
        assert 0 < result.n_flagged < len(result.clips)
        for clip in result.flagged_clips():
            cx, cy = clip.window.center
            assert cx < 2200 and cy < 2400  # the dense corner

    def test_heat_map_shape(self, layer):
        region = Rect(0, 0, 4096, 4096)
        result = scan_layer(DensityDetector(), layer, region)
        grid = result.heat_map()
        assert grid.size == len(result.clips)
        assert not np.isnan(grid).any()

    def test_flag_ratio(self, layer):
        region = Rect(0, 0, 4096, 4096)
        result = scan_layer(DensityDetector(0.0), layer, region)
        assert result.flag_ratio == 1.0

    def test_verification_path(self, layer):
        class YesOracle:
            def label(self, clip):
                return 1

        region = Rect(0, 0, 2048, 2048)
        result = scan_layer(
            DensityDetector(0.3), layer, region, oracle=YesOracle()
        )
        assert result.confirmed is not None
        assert len(result.confirmed) == result.n_flagged
        assert len(result.hotspot_regions()) == result.n_flagged

    def test_hotspot_regions_align_with_mixed_confirmations(self, layer):
        """confirmed[i] must pair with the i-th *flagged* clip, not the
        i-th clip overall."""

        class AlternatingOracle:
            def __init__(self):
                self.calls = 0

            def label(self, clip):
                self.calls += 1
                return self.calls % 2  # confirm every other flagged window

        region = Rect(0, 0, 4096, 4096)
        result = scan_layer(
            DensityDetector(0.3), layer, region, oracle=AlternatingOracle()
        )
        assert result.n_flagged > 1
        regions = result.hotspot_regions()
        flagged = result.flagged_clips()
        expected = [
            c.core for c, ok in zip(flagged, result.confirmed) if ok
        ]
        assert regions == expected
        assert 0 < len(regions) < result.n_flagged
        flagged_cores = {c.core.as_tuple() for c in flagged}
        assert all(r.as_tuple() in flagged_cores for r in regions)

    def test_heat_map_uneven_step_stays_finite(self, layer):
        """A step that doesn't evenly tile the region still yields a fully
        scored rectangular grid (centers are a cartesian product)."""
        region = Rect(0, 0, 4096, 4096)
        result = scan_layer(DensityDetector(), layer, region, step_nm=384)
        grid = result.heat_map()
        assert np.isfinite(grid).sum() == len(result.centers)

    def test_heat_map_irregular_centers_leave_nan_holes(self):
        """Centers that don't form a full grid (merged or partial scans)
        produce NaN holes — consumers must not treat them as score 0."""
        from repro.core.scan import ScanResult

        result = ScanResult(
            centers=[(0, 0), (256, 0), (0, 256)],  # missing (256, 256)
            clips=[],
            scores=np.array([0.1, 0.2, 0.3]),
            flagged=np.array([False, False, False]),
        )
        grid = result.heat_map()
        assert grid.shape == (2, 2)
        assert np.isnan(grid).sum() == 1
        assert np.isnan(grid[1, 1])

    def test_region_too_small_raises(self, layer):
        with pytest.raises(ValueError):
            scan_layer(DensityDetector(), layer, Rect(0, 0, 100, 100))

    def test_custom_step(self, layer):
        region = Rect(0, 0, 4096, 4096)
        coarse = scan_layer(DensityDetector(), layer, region, step_nm=512)
        fine = scan_layer(DensityDetector(), layer, region, step_nm=256)
        assert len(fine.clips) > len(coarse.clips)

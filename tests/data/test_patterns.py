"""Tests for the parametric pattern families."""

import numpy as np
import pytest

from repro.data.patterns import FAMILIES, GRID, snap, snap_place
from repro.geometry import Rect, merge_touching

WINDOW = Rect(1000, 2000, 1768, 2768)


@pytest.fixture
def rng():
    return np.random.default_rng(99)


class TestSnapping:
    def test_snap_to_pixel_grid(self):
        assert snap(13) == 16
        assert snap(11) == 8
        assert snap(0) == 0

    def test_snap_place_coarser(self):
        assert snap_place(40) % 32 == 0
        assert snap_place(100) == 96


@pytest.mark.parametrize("family", sorted(FAMILIES))
class TestAllFamilies:
    def test_produces_rects(self, family, rng):
        spec = FAMILIES[family](WINDOW, rng)
        assert spec.family == family
        assert len(spec.rects) >= 1
        assert spec.params

    def test_grid_aligned(self, family, rng):
        for _ in range(5):
            spec = FAMILIES[family](WINDOW, rng)
            for r in spec.rects:
                for v in r.as_tuple():
                    assert v % GRID == 0, f"{family}: {r} not grid aligned"

    def test_covers_window_center(self, family, rng):
        """Patterns must put *something* within reach of the core region."""
        cx, cy = WINDOW.center
        core = Rect.from_center(int(cx), int(cy), 512, 512)
        hits = 0
        for _ in range(10):
            spec = FAMILIES[family](WINDOW, rng)
            if any(r.touches(core) for r in spec.rects):
                hits += 1
        assert hits >= 8, f"{family} rarely reaches the core"

    def test_deterministic_given_seed(self, family):
        a = FAMILIES[family](WINDOW, np.random.default_rng(5))
        b = FAMILIES[family](WINDOW, np.random.default_rng(5))
        assert a.rects == b.rects
        assert a.params == b.params

    def test_marginal_knob_accepted(self, family, rng):
        spec = FAMILIES[family](WINDOW, rng, marginal_p=1.0)
        assert len(spec.rects) >= 1


class TestFamilySpecifics:
    def test_grating_constant_pitch(self, rng):
        spec = FAMILIES["grating"](WINDOW, rng)
        vertical = spec.params["vertical"] == 1.0
        xs = sorted(r.x1 if vertical else r.y1 for r in spec.rects)
        pitches = {b - a for a, b in zip(xs[:-1], xs[1:])}
        assert pitches == {int(spec.params["width"] + spec.params["space"])}

    def test_tip_pair_gap_matches_params(self, rng):
        for _ in range(5):
            spec = FAMILIES["tip_pair"](WINDOW, rng)
            gap = int(spec.params["gap"])
            # find the two collinear wires (same y span) and check their gap
            wires = [r for r in spec.rects if r.height == spec.params["width"]]
            rows = {}
            for r in wires:
                rows.setdefault((r.y1, r.y2), []).append(r)
            pair = [v for v in rows.values() if len(v) == 2]
            assert pair, "tip_pair must contain a facing pair"
            a, b = sorted(pair[0], key=lambda r: r.x1)
            assert b.x1 - a.x2 == gap

    def test_comb_has_two_spines(self, rng):
        spec = FAMILIES["comb"](WINDOW, rng)
        horizontals = [r for r in spec.rects if r.width > r.height]
        assert len(horizontals) >= 2

    def test_l_corners_connected_arms(self, rng):
        spec = FAMILIES["l_corners"](WINDOW, rng)
        n = int(spec.params["n"])
        groups = merge_touching(list(spec.rects))
        assert len(groups) == n  # each L is one connected component

    def test_jog_wires_stay_apart(self, rng):
        """No two distinct wires in a comfortable jog pattern overlap."""
        spec = FAMILIES["jog_wires"](WINDOW, rng, marginal_p=0.0)
        groups = merge_touching(list(spec.rects))
        for i, a in enumerate(groups):
            for b in groups[i + 1 :]:
                for ra in a:
                    for rb in b:
                        assert not ra.intersects(rb)

    def test_random_routing_segments_on_tracks(self, rng):
        spec = FAMILIES["random_routing"](WINDOW, rng)
        width = int(spec.params["width"])
        horizontals = [r for r in spec.rects if r.height == width]
        ys = {r.y1 for r in horizontals}
        pitch = int(spec.params["width"] + spec.params["space"])
        base = min(ys)
        assert all((y - base) % pitch == 0 for y in ys)

    def test_dense_block_has_lone_wire(self, rng):
        spec = FAMILIES["dense_block"](WINDOW, rng)
        xs = sorted(r.x1 for r in spec.rects)
        gaps = [b - a for a, b in zip(xs[:-1], xs[1:])]
        assert max(gaps) >= 128  # the density transition gap

"""Tests for ClipDataset and Benchmark containers."""

import numpy as np
import pytest

from repro.data import Benchmark, ClipDataset

from ..conftest import synthetic_labeled_clips


@pytest.fixture
def dataset(rng):
    clips, labels = synthetic_labeled_clips(rng, n=30)
    return ClipDataset(name="ds", clips=clips, labels=labels)


class TestConstruction:
    def test_label_length_mismatch_raises(self, dataset):
        with pytest.raises(ValueError):
            ClipDataset("x", dataset.clips, dataset.labels[:-1])

    def test_non_binary_labels_raise(self, dataset):
        bad = dataset.labels.copy()
        bad[0] = 3
        with pytest.raises(ValueError):
            ClipDataset("x", dataset.clips, bad)

    def test_counts(self, dataset):
        assert dataset.n_hotspots + dataset.n_non_hotspots == len(dataset)
        assert 0 < dataset.hotspot_fraction < 1

    def test_getitem(self, dataset):
        clip, label = dataset[0]
        assert clip is dataset.clips[0]
        assert label in (0, 1)

    def test_summary_mentions_counts(self, dataset):
        s = dataset.summary()
        assert str(len(dataset)) in s
        assert "HS" in s


class TestIndices:
    def test_hotspot_indices_consistent(self, dataset):
        hs = dataset.hotspot_indices()
        nhs = dataset.non_hotspot_indices()
        assert len(hs) + len(nhs) == len(dataset)
        assert set(hs.tolist()).isdisjoint(nhs.tolist())
        assert all(dataset.labels[i] == 1 for i in hs)


class TestSlicing:
    def test_subset(self, dataset):
        sub = dataset.subset([0, 2, 4])
        assert len(sub) == 3
        assert sub.clips[1] is dataset.clips[2]

    def test_shuffled_preserves_multiset(self, dataset, rng):
        shuffled = dataset.shuffled(rng)
        assert sorted(shuffled.labels.tolist()) == sorted(dataset.labels.tolist())
        assert set(id(c) for c in shuffled.clips) == set(
            id(c) for c in dataset.clips
        )

    def test_split_stratified(self, dataset, rng):
        train, test = dataset.split(0.25, rng)
        assert len(train) + len(test) == len(dataset)
        # stratification keeps fractions within one sample of proportional
        expected_test_hs = round(dataset.n_hotspots * 0.25)
        assert abs(test.n_hotspots - expected_test_hs) <= 1

    def test_split_bad_fraction_raises(self, dataset, rng):
        with pytest.raises(ValueError):
            dataset.split(0.0, rng)
        with pytest.raises(ValueError):
            dataset.split(1.0, rng)

    def test_extend(self, dataset):
        bigger = dataset.extend(dataset.clips[:3], [1, 1, 1])
        assert len(bigger) == len(dataset) + 3
        assert bigger.n_hotspots == dataset.n_hotspots + 3
        # original untouched
        assert len(dataset.clips) == 30


class TestBatches:
    def test_batches_cover_everything_once(self, dataset):
        seen = 0
        for clips, labels in dataset.batches(7):
            assert len(clips) == len(labels)
            seen += len(clips)
        assert seen == len(dataset)

    def test_shuffled_batches(self, dataset, rng):
        ordered = [l for _, ls in dataset.batches(7) for l in ls]
        shuffled = [l for _, ls in dataset.batches(7, rng=rng) for l in ls]
        assert sorted(ordered) == sorted(shuffled)

    def test_bad_batch_size(self, dataset):
        with pytest.raises(ValueError):
            list(dataset.batches(0))


class TestBenchmark:
    def test_summary(self, dataset, rng):
        train, test = dataset.split(0.3, rng)
        bench = Benchmark(name="Bx", train=train, test=test)
        s = bench.summary()
        assert "Bx" in s and "train" in s and "test" in s

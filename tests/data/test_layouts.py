"""Tests for routed-block layout synthesis."""

import numpy as np
import pytest

from repro.data import RoutedBlockConfig, seeded_recall, synthesize_routed_block
from repro.geometry import Rect

REGION = Rect(0, 0, 6144, 6144)


class TestConfig:
    def test_invalid_raise(self):
        with pytest.raises(ValueError):
            RoutedBlockConfig(segment_min_nm=100, segment_max_nm=50)
        with pytest.raises(ValueError):
            RoutedBlockConfig(n_marginal=-1)


class TestSynthesis:
    def test_produces_polygons_and_seeds(self, rng):
        layer, seeded = synthesize_routed_block(rng, REGION)
        assert len(layer.polygons) > 20
        assert len(seeded) == RoutedBlockConfig().n_marginal

    def test_seeds_inside_region(self, rng):
        _, seeded = synthesize_routed_block(rng, REGION)
        for cx, cy in seeded:
            assert REGION.contains_point(cx, cy)

    def test_geometry_grid_aligned(self, rng):
        layer, _ = synthesize_routed_block(rng, REGION)
        for poly in layer.polygons[:50]:
            for r in poly.rects:
                assert all(v % 8 == 0 for v in r.as_tuple())

    def test_deterministic(self):
        a, sa = synthesize_routed_block(np.random.default_rng(3), REGION)
        b, sb = synthesize_routed_block(np.random.default_rng(3), REGION)
        assert sa == sb
        assert len(a.polygons) == len(b.polygons)

    def test_no_marginal_option(self, rng):
        _, seeded = synthesize_routed_block(
            rng, REGION, RoutedBlockConfig(n_marginal=0)
        )
        assert seeded == []

    def test_marginal_pairs_present(self, rng):
        """Seeded spots carry thin features (pairs may merge with tracks)."""
        config = RoutedBlockConfig(n_marginal=3)
        layer, seeded = synthesize_routed_block(rng, REGION, config)
        for cx, cy in seeded:
            window = Rect.from_center(cx, cy, 400, 400)
            local = layer.rects_in(window)
            assert local, "seeded window must contain metal"
            assert min(r.height for r in local) <= 64


class TestSeededRecall:
    def test_full_recall(self):
        seeded = [(100, 100), (500, 500)]
        regions = [Rect(0, 0, 200, 200), Rect(400, 400, 600, 600)]
        assert seeded_recall(seeded, regions) == 1.0

    def test_partial_recall(self):
        seeded = [(100, 100), (5000, 5000)]
        regions = [Rect(0, 0, 200, 200)]
        assert seeded_recall(seeded, regions) == 0.5

    def test_empty_seeded(self):
        assert seeded_recall([], [Rect(0, 0, 1, 1)]) == 0.0


class TestReplicateBlock:
    def test_area_and_extent_scale_with_copies(self, rng):
        from repro.data import replicate_block

        cell = Rect(0, 0, 2048, 2048)
        layer, _ = synthesize_routed_block(rng, cell, RoutedBlockConfig())

        def area(lyr):
            return sum(
                r.area for p in lyr.polygons for r in p.rects
            )

        clipped = sum(
            r.area
            for p in layer.polygons
            for rect in p.rects
            for r in [rect.intersection(cell)]
            if r is not None
        )
        tiled = replicate_block(layer, cell, nx=2, ny=3)
        # abutting copies may merge rects, but total metal is conserved
        assert area(tiled) == 6 * clipped
        assert tiled.bbox.x2 <= 2 * 2048
        assert tiled.bbox.y2 <= 3 * 2048

    def test_congruent_windows_fingerprint_equal(self, rng):
        """The property dedup relies on: a window in one copy hashes the
        same as the congruent window of every other copy."""
        from repro.data import replicate_block
        from repro.geometry import clip_fingerprint, extract_clip

        cell = Rect(0, 0, 2048, 2048)
        layer, _ = synthesize_routed_block(rng, cell, RoutedBlockConfig())
        tiled = replicate_block(layer, cell, nx=2, ny=2)
        a = extract_clip(tiled, (1024, 1024), 768, 256)
        b = extract_clip(tiled, (1024 + 2048, 1024 + 2048), 768, 256)
        assert clip_fingerprint(a) == clip_fingerprint(b)

    def test_custom_pitch_spaces_copies(self):
        from repro.data import replicate_block
        from repro.geometry import Layer

        cell = Rect(0, 0, 1024, 1024)
        layer = Layer("m")
        layer.add_rects([Rect(0, 0, 64, 64)])
        tiled = replicate_block(layer, cell, nx=2, ny=1, pitch_x=4096)
        xs = sorted(r.x1 for p in tiled.polygons for r in p.rects)
        assert xs == [0, 4096]

    def test_bad_counts_raise(self):
        from repro.data import replicate_block
        from repro.geometry import Layer

        with pytest.raises(ValueError):
            replicate_block(Layer("m"), Rect(0, 0, 1024, 1024), nx=0, ny=1)


class TestScanIntegration:
    def test_oracle_confirms_seeded_spots(self, rng):
        """The seeded marginal pairs really are hotspots under the oracle."""
        from repro.geometry import extract_clip
        from repro.litho import HotspotOracle

        layer, seeded = synthesize_routed_block(
            rng, REGION, RoutedBlockConfig(n_marginal=2)
        )
        oracle = HotspotOracle()
        hits = sum(
            oracle.label(extract_clip(layer, c, 768, 256)) for c in seeded
        )
        assert hits >= 1  # at least half of the seeds verify hot

"""Tests for clip synthesis from family mixtures."""

import numpy as np
import pytest

from repro.data import FamilyMix, generate_clips, make_clip
from repro.data.patterns import FAMILIES


@pytest.fixture
def rng():
    return np.random.default_rng(7)


@pytest.fixture
def uniform_mix():
    return FamilyMix(
        weights={f: 1.0 for f in FAMILIES}, marginal_p={}, default_marginal_p=0.1
    )


class TestFamilyMix:
    def test_unknown_family_raises(self):
        with pytest.raises(ValueError):
            FamilyMix(weights={"bogus": 1.0}, marginal_p={})

    def test_empty_weights_raises(self):
        with pytest.raises(ValueError):
            FamilyMix(weights={}, marginal_p={})

    def test_negative_weight_raises(self):
        with pytest.raises(ValueError):
            FamilyMix(weights={"grating": -1.0}, marginal_p={})

    def test_sampling_respects_weights(self, rng):
        mix = FamilyMix(
            weights={"grating": 1.0, "comb": 0.0}, marginal_p={}
        )
        names = {mix.sample_family(rng) for _ in range(50)}
        assert names == {"grating"}

    def test_marginality_lookup(self):
        mix = FamilyMix(
            weights={"grating": 1.0, "comb": 1.0},
            marginal_p={"comb": 0.5},
            default_marginal_p=0.1,
        )
        assert mix.marginality("comb") == 0.5
        assert mix.marginality("grating") == 0.1


class TestMakeClip:
    def test_clip_well_formed(self, rng):
        clip, spec = make_clip(rng, "grating")
        assert clip.size == 768
        assert clip.core.width == 256
        assert clip.window.contains(clip.core)
        assert spec.family == "grating"
        assert clip.rects  # grating always intersects the window

    def test_rects_clipped_to_window(self, rng):
        clip, _ = make_clip(rng, "random_routing")
        for r in clip.rects:
            assert clip.window.contains(r)

    def test_unknown_family_raises(self, rng):
        with pytest.raises(KeyError):
            make_clip(rng, "bogus")

    def test_misaligned_window_raises(self, rng):
        with pytest.raises(ValueError):
            make_clip(rng, "grating", window_nm=770)

    def test_distinct_absolute_positions(self, rng):
        a, _ = make_clip(rng, "grating")
        b, _ = make_clip(rng, "grating")
        assert a.window != b.window

    def test_tag_defaults_to_family(self, rng):
        clip, _ = make_clip(rng, "comb")
        assert clip.tag == "comb"


class TestGenerateClips:
    def test_count_and_specs(self, rng, uniform_mix):
        clips, specs = generate_clips(rng, uniform_mix, 30)
        assert len(clips) == 30
        assert len(specs) == 30
        families = {s.family for s in specs}
        assert len(families) >= 4  # uniform mix hits several families

    def test_reproducible(self, uniform_mix):
        a, _ = generate_clips(np.random.default_rng(3), uniform_mix, 10)
        b, _ = generate_clips(np.random.default_rng(3), uniform_mix, 10)
        assert [c.rects for c in a] == [c.rects for c in b]

    def test_tags_carry_index(self, rng, uniform_mix):
        clips, specs = generate_clips(rng, uniform_mix, 5)
        for i, (clip, spec) in enumerate(zip(clips, specs)):
            assert clip.tag == f"{spec.family}#{i}"

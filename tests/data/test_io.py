"""Tests for dataset persistence and caching."""

import numpy as np
import pytest

from repro.data import ClipDataset, dataset_cache_key, load_dataset, save_dataset
from repro.geometry import save_clips

from ..conftest import synthetic_labeled_clips


@pytest.fixture
def dataset(rng):
    clips, labels = synthetic_labeled_clips(rng, n=12)
    return ClipDataset(name="io-test", clips=clips, labels=labels)


class TestCacheKey:
    def test_stable(self):
        a = dataset_cache_key("B1/train", 1, 100, 768, 256)
        b = dataset_cache_key("B1/train", 1, 100, 768, 256)
        assert a == b

    def test_sensitive_to_every_field(self):
        base = dataset_cache_key("B1/train", 1, 100, 768, 256)
        assert dataset_cache_key("B1/test", 1, 100, 768, 256) != base
        assert dataset_cache_key("B1/train", 2, 100, 768, 256) != base
        assert dataset_cache_key("B1/train", 1, 101, 768, 256) != base
        assert dataset_cache_key("B1/train", 1, 100, 512, 256) != base
        assert dataset_cache_key("B1/train", 1, 100, 768, 128) != base

    def test_filesystem_safe(self):
        key = dataset_cache_key("B1/train", 1, 100, 768, 256)
        assert "/" not in key


class TestRoundTrip:
    def test_save_load(self, dataset, tmp_path):
        save_dataset(dataset, tmp_path, "k1")
        loaded = load_dataset(tmp_path, "k1")
        assert loaded is not None
        assert loaded.name == "io-test"
        assert len(loaded) == len(dataset)
        np.testing.assert_array_equal(loaded.labels, dataset.labels)
        assert loaded.clips[0].rects == dataset.clips[0].rects
        assert loaded.clips[0].window == dataset.clips[0].window

    def test_missing_returns_none(self, tmp_path):
        assert load_dataset(tmp_path, "nope") is None

    def test_unlabeled_cache_rejected(self, dataset, tmp_path):
        """A clips file without labels is not a valid dataset cache."""
        save_dataset(dataset, tmp_path, "k2")
        save_clips(dataset.clips, tmp_path / "k2.clips")  # overwrite unlabeled
        assert load_dataset(tmp_path, "k2") is None

    def test_creates_directory(self, dataset, tmp_path):
        target = tmp_path / "deep" / "nested"
        save_dataset(dataset, target, "k3")
        assert load_dataset(target, "k3") is not None

"""Tests for via-layer pattern families and the via benchmark."""

import numpy as np
import pytest

from repro.data import FAMILIES, VIA_FAMILIES, FamilyMix, generate_clips
from repro.data.via_patterns import (
    COMFORT_VIA_SIZES,
    MARGINAL_VIA_SIZES,
)
from repro.geometry import Rect

WINDOW = Rect(1000, 2000, 1768, 2768)


@pytest.fixture
def rng():
    return np.random.default_rng(77)


class TestRegistry:
    def test_via_families_registered(self):
        for name in VIA_FAMILIES:
            assert name in FAMILIES

    def test_mix_accepts_via_families(self, rng):
        mix = FamilyMix(
            weights={"via_array": 1.0, "isolated_via": 1.0}, marginal_p={}
        )
        clips, specs = generate_clips(rng, mix, 6)
        assert len(clips) == 6
        assert {s.family for s in specs} <= {"via_array", "isolated_via"}


@pytest.mark.parametrize("family", sorted(VIA_FAMILIES))
class TestAllViaFamilies:
    def test_produces_square_vias(self, family, rng):
        spec = VIA_FAMILIES[family](WINDOW, rng)
        assert spec.rects
        for r in spec.rects:
            assert r.width == r.height  # vias are squares
            assert r.width in COMFORT_VIA_SIZES + MARGINAL_VIA_SIZES

    def test_grid_aligned(self, family, rng):
        for _ in range(5):
            spec = VIA_FAMILIES[family](WINDOW, rng)
            for r in spec.rects:
                assert all(v % 8 == 0 for v in r.as_tuple())

    def test_deterministic(self, family):
        a = VIA_FAMILIES[family](WINDOW, np.random.default_rng(5))
        b = VIA_FAMILIES[family](WINDOW, np.random.default_rng(5))
        assert a.rects == b.rects

    def test_vias_disjoint(self, family, rng):
        spec = VIA_FAMILIES[family](WINDOW, rng)
        rects = spec.rects
        for i, a in enumerate(rects):
            for b in rects[i + 1 :]:
                assert not a.intersects(b), f"{family} vias overlap"


class TestFamilySpecifics:
    def test_array_regular_pitch(self, rng):
        spec = VIA_FAMILIES["via_array"](WINDOW, rng)
        pitch = int(spec.params["pitch"])
        xs = sorted({r.x1 for r in spec.rects})
        gaps = {b - a for a, b in zip(xs[:-1], xs[1:])}
        assert gaps == {pitch}

    def test_isolated_single(self, rng):
        spec = VIA_FAMILIES["isolated_via"](WINDOW, rng)
        assert len(spec.rects) == 1

    def test_pair_gap(self, rng):
        spec = VIA_FAMILIES["via_pair"](WINDOW, rng)
        a, b = sorted(spec.rects, key=lambda r: r.x1)
        assert b.x1 - a.x2 == int(spec.params["gap"])

    def test_cluster_never_empty(self, rng):
        for _ in range(10):
            spec = VIA_FAMILIES["via_cluster"](WINDOW, rng)
            assert len(spec.rects) >= 1


class TestViaPhysics:
    """The via process boundary the benchmark is built around."""

    def test_large_isolated_via_prints(self):
        from repro.litho import HotspotOracle

        from ..conftest import clip_from_rects

        oracle = HotspotOracle()
        big = clip_from_rects([Rect(552, 552, 648, 648)])  # 96nm
        small = clip_from_rects([Rect(564, 564, 636, 636)])  # 72nm
        assert oracle.label(big) == 0
        assert oracle.label(small) == 1

    def test_dense_array_supports_marginal_vias(self):
        from repro.litho import HotspotOracle

        from ..conftest import clip_from_rects

        oracle = HotspotOracle()
        size = 80
        dense, sparse = [], []
        for i in range(-3, 4):
            for j in range(-3, 4):
                for pitch, out in ((160, dense), (192, sparse)):
                    cx, cy = 600 + i * pitch, 600 + j * pitch
                    out.append(
                        Rect(cx - size // 2, cy - size // 2,
                             cx + size // 2, cy + size // 2)
                    )
        assert oracle.label(clip_from_rects(dense)) == 0
        assert oracle.label(clip_from_rects(sparse)) == 1


class TestViaBenchmark:
    def test_tiny_via_benchmark(self):
        from repro.data import make_via_benchmark

        b = make_via_benchmark(scale=0.05)
        assert b.name == "BV"
        assert b.train.n_hotspots >= 1
        assert b.test.n_non_hotspots > b.test.n_hotspots

"""Tests for benchmark suite generation (tiny scales only)."""

import pytest

from repro.data import (
    SUITE_CONFIGS,
    BenchmarkConfig,
    FamilyMix,
    make_benchmark,
    make_iccad2012_suite,
)


@pytest.fixture(scope="module")
def tiny_benchmark():
    config = BenchmarkConfig(
        name="T1",
        n_train=25,
        n_test=30,
        mix=FamilyMix(
            weights={"grating": 1.0, "tip_pair": 1.0},
            marginal_p={},
            default_marginal_p=0.4,
        ),
    )
    return make_benchmark(config, seed=42)


class TestConfigs:
    def test_five_benchmarks_configured(self):
        assert [c.name for c in SUITE_CONFIGS] == ["B1", "B2", "B3", "B4", "B5"]

    def test_b5_has_distribution_shift(self):
        b5 = SUITE_CONFIGS[-1]
        assert b5.test_mix is not None
        assert set(b5.test_mix.weights) != set(b5.mix.weights)

    def test_resolved_test_mix_defaults(self):
        config = BenchmarkConfig(
            name="x",
            n_train=1,
            n_test=1,
            mix=FamilyMix(weights={"grating": 1.0}, marginal_p={}),
        )
        assert config.resolved_test_mix() is config.mix


class TestMakeBenchmark:
    def test_sizes(self, tiny_benchmark):
        assert len(tiny_benchmark.train) == 25
        assert len(tiny_benchmark.test) == 30

    def test_both_classes_present(self, tiny_benchmark):
        # marginality 0.4 over tips/gratings guarantees hotspots appear
        assert tiny_benchmark.train.n_hotspots > 0
        assert tiny_benchmark.train.n_non_hotspots > 0

    def test_train_test_disjoint_geometry(self, tiny_benchmark):
        train_rects = {c.rects for c in tiny_benchmark.train.clips}
        test_rects = {c.rects for c in tiny_benchmark.test.clips}
        # windows are at random absolute positions: no literal sharing
        assert not (train_rects & test_rects)

    def test_reproducible(self):
        config = BenchmarkConfig(
            name="T2",
            n_train=10,
            n_test=10,
            mix=FamilyMix(weights={"grating": 1.0}, marginal_p={}),
        )
        a = make_benchmark(config, seed=7)
        b = make_benchmark(config, seed=7)
        assert a.train.labels.tolist() == b.train.labels.tolist()
        assert [c.rects for c in a.test.clips] == [c.rects for c in b.test.clips]

    def test_caching(self, tmp_path):
        config = BenchmarkConfig(
            name="T3",
            n_train=8,
            n_test=8,
            mix=FamilyMix(weights={"grating": 1.0}, marginal_p={}),
        )
        first = make_benchmark(config, seed=9, cache_dir=tmp_path)
        files = list(tmp_path.iterdir())
        assert files, "cache must be written"
        second = make_benchmark(config, seed=9, cache_dir=tmp_path)
        assert first.train.labels.tolist() == second.train.labels.tolist()


class TestSuite:
    def test_scaled_suite_structure(self):
        suite = make_iccad2012_suite(seed=2012, scale=0.02)
        assert [b.name for b in suite] == ["B1", "B2", "B3", "B4", "B5"]
        for b in suite:
            assert len(b.train) >= 20
            assert len(b.test) >= 20

"""Tests for imbalance handling: up-sampling, orientation augment, SMOTE."""

import numpy as np
import pytest

from repro.data import (
    ClipDataset,
    augment_all_orientations,
    class_weights,
    smote,
    upsample_minority,
)
from repro.geometry import rasterize_clip

from ..conftest import synthetic_labeled_clips


@pytest.fixture
def imbalanced(rng):
    clips, _ = synthetic_labeled_clips(rng, n=30)
    labels = np.zeros(30, dtype=np.int64)
    labels[:3] = 1  # 10% hotspots
    return ClipDataset(name="imb", clips=clips, labels=labels)


class TestUpsample:
    def test_reaches_target_ratio(self, imbalanced, rng):
        up = upsample_minority(imbalanced, rng, target_ratio=0.5)
        assert up.n_hotspots / up.n_non_hotspots >= 0.5
        assert up.n_non_hotspots == imbalanced.n_non_hotspots

    def test_already_balanced_untouched(self, imbalanced, rng):
        up = upsample_minority(imbalanced, rng, target_ratio=0.1)
        assert len(up) == len(imbalanced)

    def test_replicas_are_orientations(self, imbalanced, rng):
        """Mirrored replicas keep the pattern's pixel multiset."""
        up = upsample_minority(imbalanced, rng, target_ratio=0.5, mirror=True)
        originals = {
            rasterize_clip(imbalanced.clips[i], 8).sum()
            for i in imbalanced.hotspot_indices()
        }
        for i in range(len(imbalanced), len(up)):
            clip, label = up[i]
            assert label == 1
            total = rasterize_clip(clip, 8).sum()
            assert any(total == pytest.approx(v) for v in originals)

    def test_no_mirror_gives_exact_copies(self, imbalanced, rng):
        up = upsample_minority(imbalanced, rng, target_ratio=0.5, mirror=False)
        source_rects = {c.rects for c, l in zip(imbalanced.clips, imbalanced.labels) if l}
        for i in range(len(imbalanced), len(up)):
            assert up.clips[i].rects in source_rects

    def test_no_hotspots_raises(self, rng):
        clips, _ = synthetic_labeled_clips(rng, n=5)
        ds = ClipDataset("x", clips, np.zeros(5, dtype=np.int64))
        with pytest.raises(ValueError):
            upsample_minority(ds, rng)

    def test_bad_ratio_raises(self, imbalanced, rng):
        with pytest.raises(ValueError):
            upsample_minority(imbalanced, rng, target_ratio=0.0)


class TestOrientationAugment:
    def test_minority_only(self, imbalanced):
        aug = augment_all_orientations(imbalanced, minority_only=True)
        assert len(aug) == len(imbalanced) + 7 * imbalanced.n_hotspots
        assert aug.labels[len(imbalanced):].all()

    def test_all_samples(self, imbalanced):
        aug = augment_all_orientations(imbalanced, minority_only=False)
        assert len(aug) == 8 * len(imbalanced)


class TestSmote:
    def test_generates_requested_count(self, rng):
        x = rng.random((20, 4))
        y = np.array([1] * 6 + [0] * 14)
        new_x, new_y = smote(x, y, rng, n_new=10)
        assert new_x.shape == (10, 4)
        assert new_y.tolist() == [1] * 10

    def test_points_in_minority_hull_segments(self, rng):
        x = np.zeros((10, 2))
        x[:4] = [[0, 0], [1, 0], [0, 1], [1, 1]]  # minority square
        x[4:] = 100.0
        y = np.array([1] * 4 + [0] * 6)
        new_x, _ = smote(x, y, rng, n_new=50)
        assert new_x.min() >= -1e-9
        assert new_x.max() <= 1.0 + 1e-9

    def test_too_few_minority_raises(self, rng):
        x = rng.random((5, 3))
        y = np.array([1, 0, 0, 0, 0])
        with pytest.raises(ValueError):
            smote(x, y, rng, n_new=3)


class TestClassWeights:
    def test_inverse_frequency(self):
        labels = np.array([0] * 9 + [1])
        w_nhs, w_hs = class_weights(labels)
        assert w_hs > w_nhs
        assert w_hs * 1 + w_nhs * 9 == pytest.approx(10.0)

    def test_degenerate_returns_ones(self):
        assert class_weights(np.zeros(5, dtype=int)) == (1.0, 1.0)
        assert class_weights(np.ones(5, dtype=int)) == (1.0, 1.0)

"""@shaped / require / the enable switch."""

import numpy as np
import pytest

from repro import contracts
from repro.contracts import ContractViolation, SpecError, shaped


@pytest.fixture(autouse=True)
def contracts_off():
    """Every test starts and ends with contracts disabled."""
    contracts.disable()
    yield
    contracts.disable()


@shaped("(n,h,w):float->(n,):float64")
def score_stack(rasters):
    return np.zeros(rasters.shape[0], dtype=np.float64)


@shaped("[n]->(n,):float64")
def score_list(clips):
    return np.full(len(clips), 0.5)


class TestSwitch:
    def test_disabled_by_default_skips_checks(self):
        # wrong rank AND wrong dtype: passes untouched when off
        assert score_stack(np.zeros(3)).shape == (3,)

    def test_enable_disable(self):
        assert not contracts.enabled()
        contracts.enable()
        assert contracts.enabled()
        contracts.disable()
        assert not contracts.enabled()

    def test_checking_context_restores(self):
        with contracts.checking():
            assert contracts.enabled()
        assert not contracts.enabled()
        contracts.enable()
        with contracts.checking(False):
            assert not contracts.enabled()
        assert contracts.enabled()

    def test_checking_restores_on_error(self):
        with pytest.raises(ContractViolation):
            with contracts.checking():
                score_stack(np.zeros(3))
        assert not contracts.enabled()


class TestShaped:
    def test_good_call_passes(self):
        with contracts.checking():
            out = score_stack(np.zeros((4, 8, 8), dtype=np.float32))
        assert out.shape == (4,)

    def test_input_rank_violation(self):
        with contracts.checking(), pytest.raises(ContractViolation) as exc:
            score_stack(np.zeros((4, 8)))
        assert "rasters" in str(exc.value)

    def test_input_dtype_violation(self):
        with contracts.checking(), pytest.raises(ContractViolation):
            score_stack(np.zeros((4, 8, 8), dtype=np.int64))

    def test_output_bound_to_input(self):
        @shaped("[n]->(n,):float64")
        def wrong_length(clips):
            return np.zeros(len(clips) + 1)

        with contracts.checking(), pytest.raises(ContractViolation) as exc:
            wrong_length([1, 2, 3])
        assert exc.value.arg == "return"
        assert "bound to 3" in str(exc.value)

    def test_output_dtype_violation(self):
        @shaped("[n]->(n,):float64")
        def float32_scores(clips):
            return np.zeros(len(clips), dtype=np.float32)

        with contracts.checking(), pytest.raises(ContractViolation):
            float32_scores([1])

    def test_violation_is_assertion_error(self):
        with contracts.checking(), pytest.raises(AssertionError):
            score_stack(np.zeros(3))

    def test_methods_skip_self(self):
        class Scorer:
            @shaped("[n]->(n,):float64")
            def predict_proba(self, clips):
                return np.zeros(len(clips))

        with contracts.checking():
            assert Scorer().predict_proba([1, 2]).shape == (2,)

    def test_empty_input_rule(self):
        with contracts.checking():
            assert score_list([]).shape == (0,)

    def test_kwargs_checked(self):
        with contracts.checking(), pytest.raises(ContractViolation):
            score_stack(rasters=np.zeros((4, 8)))

    def test_defaulted_out_arg_skipped(self):
        @shaped("(n,),(n,)")
        def pair(a, b=None):
            return a

        with contracts.checking():
            pair(np.zeros(3))  # b left defaulted: not checked
            with pytest.raises(ContractViolation):
                pair(np.zeros(3), np.zeros(4))

    def test_too_many_input_specs_fails_at_decoration(self):
        with pytest.raises(SpecError):

            @shaped("(n,),(n,),(n,)")
            def one_arg(a):
                return a

    def test_bad_spec_fails_at_decoration(self):
        with pytest.raises(SpecError):

            @shaped("(n,]")
            def f(a):
                return a

    def test_contract_attached(self):
        assert score_stack.__contract__.text == "(n,h,w):float->(n,):float64"

    def test_wrapper_preserves_metadata(self):
        assert score_stack.__name__ == "score_stack"


class TestRequire:
    def test_noop_when_disabled(self):
        contracts.require("(n,):float64", np.zeros(3, dtype=np.int64), n=99)

    def test_passes_and_binds_kwargs(self):
        with contracts.checking():
            contracts.require("(n,):float64", np.zeros(5), n=5)

    def test_kwarg_prebinding_violation(self):
        with contracts.checking(), pytest.raises(ContractViolation):
            contracts.require("(n,):float64", np.zeros(4), n=5)

    def test_multiple_values_share_bindings(self):
        with contracts.checking():
            contracts.require("(n,):float64,(n,):bool", np.zeros(3), np.zeros(3, dtype=bool))
            with pytest.raises(ContractViolation):
                contracts.require(
                    "(n,):float64,(n,):bool",
                    np.zeros(3),
                    np.zeros(4, dtype=bool),
                )

    def test_arrow_rejected(self):
        with contracts.checking(), pytest.raises(SpecError):
            contracts.require("(n,)->(n,)", np.zeros(3))

    def test_value_count_mismatch(self):
        with contracts.checking(), pytest.raises(SpecError):
            contracts.require("(n,)", np.zeros(3), np.zeros(3))

    def test_func_names_the_call_site(self):
        with contracts.checking(), pytest.raises(ContractViolation) as exc:
            contracts.require("(n,):bool", np.zeros(3), func="ScanEngine.scan")
        assert "ScanEngine.scan" in str(exc.value)

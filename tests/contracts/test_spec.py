"""The contract spec mini-language: parsing and matching."""

import numpy as np
import pytest

from repro.contracts import SpecError, parse_spec
from repro.contracts.spec import (
    ArraySpec,
    SeqSpec,
    SkipSpec,
    match_argspec,
)


class TestParsing:
    def test_array_in_vector_out(self):
        spec = parse_spec("(n,gh,gw)->(n,)")
        assert spec.inputs == (ArraySpec(dims=("n", "gh", "gw"), dtype=None),)
        assert spec.output == ArraySpec(dims=("n",), dtype=None)

    def test_sequence_input(self):
        spec = parse_spec("[n]->(n,):float64")
        assert spec.inputs == (SeqSpec(dim="n"),)
        assert spec.output == ArraySpec(dims=("n",), dtype="float64")

    def test_skip_and_wildcards(self):
        spec = parse_spec("_,(n,*)->*:float")
        assert spec.inputs == (
            SkipSpec(),
            ArraySpec(dims=("n", "*"), dtype=None),
        )
        assert spec.output == ArraySpec(dims=None, dtype="float")

    def test_ellipsis_and_int_literal(self):
        spec = parse_spec("(n,...),(3,)->(n,...)")
        assert spec.inputs[0].dims == ("n", "...")
        assert spec.inputs[1].dims == (3,)

    def test_no_output(self):
        spec = parse_spec("(n,):float64,(n,):bool")
        assert spec.output is None
        assert len(spec.inputs) == 2

    def test_scalar_shape(self):
        assert parse_spec("()").inputs == (ArraySpec(dims=(), dtype=None),)

    def test_whitespace_ignored(self):
        spacious = parse_spec(" ( n , h , w ) -> ( n , ) ")
        compact = parse_spec("(n,h,w)->(n,)")
        assert spacious.inputs == compact.inputs
        assert spacious.output == compact.output

    def test_cached(self):
        assert parse_spec("(n,)->(n,)") is parse_spec("(n,)->(n,)")

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "(n,)->(n,)->(n,)",
            "(n,):complex128",
            "(n",
            "[...]",
            "[n",
            "(n,...,...)",
            "n,h,w",
            "(n,$)",
        ],
    )
    def test_malformed_specs_raise(self, bad):
        with pytest.raises(SpecError):
            parse_spec(bad)


class TestMatching:
    def _match(self, text, value, env=None):
        spec = parse_spec(text)
        return match_argspec(spec.inputs[0], value, env if env is not None else {})

    def test_named_dims_bind_and_conflict(self):
        env = {}
        assert self._match("(n,n)", np.zeros((4, 4)), env) is None
        assert env == {"n": 4}
        err = self._match("(n,n)", np.zeros((4, 5)))
        assert "bound to 4" in err

    def test_bindings_cross_arguments(self):
        spec = parse_spec("[n],(n,)")
        env = {}
        assert match_argspec(spec.inputs[0], [1, 2, 3], env) is None
        assert match_argspec(spec.inputs[1], np.zeros(4), env) is not None

    def test_rank_mismatch(self):
        assert "rank" in self._match("(n,h,w)", np.zeros((2, 3)))

    def test_int_literal(self):
        assert self._match("(2,3)", np.zeros((2, 3))) is None
        assert self._match("(2,3)", np.zeros((2, 4))) is not None

    def test_ellipsis_matches_any_run(self):
        assert self._match("(n,...)", np.zeros((5,))) is None
        assert self._match("(n,...)", np.zeros((5, 2, 3))) is None
        assert self._match("(n,...,k)", np.zeros((5, 9, 7))) is None
        assert "too short" in self._match("(n,...,k)", np.zeros((5,)))

    def test_ellipsis_binds_head_and_tail(self):
        env = {}
        assert self._match("(n,...,k)", np.zeros((5, 1, 2, 7)), env) is None
        assert env == {"n": 5, "k": 7}

    def test_sequence_matches_sized(self):
        assert self._match("[n]", [1, 2]) is None
        assert self._match("[n]", (1, 2)) is None
        assert self._match("[n]", np.zeros(2)) is None
        assert "sized" in self._match("[n]", 7)

    def test_sequence_binds_length(self):
        env = {}
        self._match("[n]", [1, 2, 3], env)
        assert env == {"n": 3}

    def test_requires_ndarray(self):
        assert "ndarray" in self._match("(n,)", [1.0, 2.0])

    def test_skip_accepts_anything(self):
        assert self._match("_", object()) is None

    @pytest.mark.parametrize(
        "dtype_class,dtype,ok",
        [
            ("float", np.float32, True),
            ("float", np.int64, False),
            ("int", np.int32, True),
            ("int", np.float64, False),
            ("num", np.float32, True),
            ("num", np.bool_, False),
            ("bool", np.bool_, True),
            ("bool", np.uint8, False),
            ("any", np.complex128, True),
            ("float64", np.float64, True),
            ("float64", np.float32, False),
        ],
    )
    def test_dtype_classes(self, dtype_class, dtype, ok):
        err = self._match(f"(n,):{dtype_class}", np.zeros(3, dtype=dtype))
        assert (err is None) == ok

    def test_any_shape_with_dtype(self):
        assert self._match("*:float64", np.zeros((2, 3, 4))) is None
        assert self._match("*:float64", np.zeros(3, dtype=np.int64)) is not None

"""Conformance harness: every registry entry passes; violators are caught."""

import numpy as np
import pytest

from repro.contracts import (
    check_detector,
    check_extractor,
    check_registered_detectors,
    check_registered_extractors,
    probe_clips,
    probe_dataset,
)
from repro.core.detector import Detector, FitReport


# --------------------------------------------------------------------------
# the CI gate: every registered detector/extractor conforms
# --------------------------------------------------------------------------
def test_every_registered_extractor_conforms():
    reports = check_registered_extractors()
    assert reports, "no extractors registered"
    bad = [r.summary() for r in reports.values() if not r.ok]
    assert not bad, "\n".join(bad)


def test_every_registered_detector_conforms():
    reports = check_registered_detectors()
    assert reports, "no detectors registered"
    bad = [r.summary() for r in reports.values() if not r.ok]
    assert not bad, "\n".join(bad)


def test_raster_detectors_get_raster_checks():
    reports = check_registered_detectors(names=["cnn-raster"])
    report = reports["cnn-raster"]
    assert report.ok
    assert report.checks_run == 9  # includes predict_proba_rasters.*


# --------------------------------------------------------------------------
# probe inputs
# --------------------------------------------------------------------------
def test_probe_clips_cover_blank():
    clips = probe_clips()
    tags = {c.tag for c in clips}
    assert "blank" in tags and len(clips) >= 4


def test_probe_dataset_is_deterministic():
    a, b = probe_dataset(seed=3), probe_dataset(seed=3)
    assert np.array_equal(a.labels, b.labels)
    assert [c.tag for c in a.clips] == [c.tag for c in b.clips]


# --------------------------------------------------------------------------
# violators produce structured diagnostics (not crashes)
# --------------------------------------------------------------------------
class _BrokenBase(Detector):  # lint: disable=raster-parity  (test double)
    name = "broken"
    threshold = 0.5

    def fit(self, train, rng=None) -> FitReport:
        return FitReport()

    def predict_proba(self, clips):
        return np.full(len(clips), 0.25)


class Float32Detector(_BrokenBase):
    def predict_proba(self, clips):
        return np.full(len(clips), 0.25, dtype=np.float32)


class WrongLengthDetector(_BrokenBase):
    def predict_proba(self, clips):
        return np.full(len(clips) + 1, 0.25)


class CrashesOnEmptyDetector(_BrokenBase):
    def predict_proba(self, clips):
        if len(clips) == 0:
            raise ValueError("cannot score zero clips")
        return np.full(len(clips), 0.25)


class OutOfRangeDetector(_BrokenBase):
    def predict_proba(self, clips):
        return np.full(len(clips), 1.75)


class NondeterministicDetector(_BrokenBase):
    def __init__(self):
        self._calls = 0

    def predict_proba(self, clips):
        self._calls += 1
        return np.full(len(clips), 0.1 * self._calls)


@pytest.mark.parametrize(
    "cls,check",
    [
        (Float32Detector, "predict_proba.scores"),
        (WrongLengthDetector, "predict_proba.scores"),
        (CrashesOnEmptyDetector, "predict_proba.empty"),
        (OutOfRangeDetector, "predict_proba.scores"),
        (NondeterministicDetector, "predict_proba.deterministic"),
    ],
)
def test_broken_detector_is_diagnosed(cls, check):
    report = check_detector(cls())
    assert not report.ok
    assert check in {d.check for d in report.diagnostics}, report.summary()


def test_conforming_minimal_detector_passes():
    report = check_detector(_BrokenBase())
    assert report.ok, report.summary()


class _BrokenExtractor:
    name = "broken-extractor"
    supports_rasters = False

    def extract(self, clip):
        return np.full(3, clip.density())

    def extract_many(self, clips):
        if not clips:
            return np.zeros((0, 3))
        return np.stack([self.extract(c) + 1e-3 for c in clips])  # drifts!


def test_batch_drift_is_diagnosed():
    report = check_extractor(_BrokenExtractor())
    assert not report.ok
    assert "extract_many.parity" in {d.check for d in report.diagnostics}


def test_reports_format_for_humans():
    report = check_detector(Float32Detector())
    text = report.summary()
    assert "broken" in text and "violation" in text

"""Property tests for static spec unification (specs_compatible).

Named dims are independent wildcards, so compatibility is *not*
transitive — these properties pin down what it must be: reflexive,
symmetric, and conflict-detecting on provably disjoint specs.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.contracts import (  # noqa: E402
    dtypes_compatible,
    parse_spec,
    specs_compatible,
)

_NAMED = st.sampled_from(["n", "h", "w", "k"])
_LITERAL = st.integers(min_value=1, max_value=4).map(str)
_DIM = st.one_of(_NAMED, _LITERAL, st.just("*"))
_DTYPE = st.sampled_from(
    ["float64", "float32", "int64", "int32", "uint8", "bool",
     "float", "int", "num", "any"]
)


def _shape_text(dims):
    if not dims:
        return "()"
    if len(dims) == 1:
        return f"({dims[0]},)"
    return "(" + ",".join(dims) + ")"


@st.composite
def array_argspecs(draw, min_rank=0, max_rank=4, ellipsis_ok=True):
    dims = draw(st.lists(_DIM, min_size=min_rank, max_size=max_rank))
    if ellipsis_ok and draw(st.booleans()):
        position = draw(st.integers(min_value=0, max_value=len(dims)))
        dims = dims[:position] + ["..."] + dims[position:]
    dtype = draw(st.one_of(st.none(), _DTYPE))
    text = _shape_text(dims) + (f":{dtype}" if dtype else "")
    spec = parse_spec(f"{text}->():any")
    return spec.inputs[0]


class TestProperties:
    @given(array_argspecs())
    @settings(max_examples=200, deadline=None)
    def test_reflexive(self, argspec):
        assert specs_compatible(argspec, argspec) is None

    @given(array_argspecs(), array_argspecs())
    @settings(max_examples=200, deadline=None)
    def test_symmetric(self, a, b):
        assert (specs_compatible(a, b) is None) == (
            specs_compatible(b, a) is None
        )

    @given(
        st.lists(_NAMED, min_size=0, max_size=2),
        st.lists(_NAMED, min_size=3, max_size=5),
    )
    @settings(max_examples=100, deadline=None)
    def test_disjoint_fixed_ranks_conflict(self, short, long):
        a = parse_spec(f"{_shape_text(short)}->():any").inputs[0]
        b = parse_spec(f"{_shape_text(long)}->():any").inputs[0]
        conflict = specs_compatible(a, b)
        assert conflict is not None
        assert "rank" in conflict

    @given(array_argspecs(ellipsis_ok=False))
    @settings(max_examples=100, deadline=None)
    def test_named_dims_never_conflict_with_themselves_renamed(self, a):
        # renaming every named dim cannot create a conflict: names are
        # wildcards, only literals and ranks constrain
        renamed_dims = [
            str(d) if (d == "*" or str(d).isdigit()) else "z"
            for d in a.dims
        ]
        b = parse_spec(f"{_shape_text(renamed_dims)}->():any").inputs[0]
        assert specs_compatible(a, b) is None


class TestConflicts:
    def test_literal_dim_conflict(self):
        a = parse_spec("(n,2)->():any").inputs[0]
        b = parse_spec("(n,3)->():any").inputs[0]
        assert "dim conflict" in specs_compatible(a, b)

    def test_dtype_class_conflict(self):
        a = parse_spec("(n,):float->():any").inputs[0]
        b = parse_spec("(n,):int64->():any").inputs[0]
        assert "dtype conflict" in specs_compatible(a, b)

    def test_dtype_class_overlap_is_fine(self):
        a = parse_spec("(n,):num->():any").inputs[0]
        b = parse_spec("(n,):float32->():any").inputs[0]
        assert specs_compatible(a, b) is None

    def test_ellipsis_absorbs_any_rank(self):
        a = parse_spec("(...)->():any").inputs[0]
        for other in ("()", "(n,)", "(n,h,w)"):
            b = parse_spec(f"{other}->():any").inputs[0]
            assert specs_compatible(a, b) is None

    def test_ellipsis_tail_literal_conflict(self):
        a = parse_spec("(...,2)->():any").inputs[0]
        b = parse_spec("(n,3)->():any").inputs[0]
        assert specs_compatible(a, b) is not None

    def test_seq_vs_array_rank_zero(self):
        a = parse_spec("[n]->():any").inputs[0]
        b = parse_spec("[n]->():any").inputs[0]
        assert specs_compatible(a, b) is None


class TestDtypeCompatible:
    def test_none_and_any_are_unconstrained(self):
        assert dtypes_compatible(None, "int64")
        assert dtypes_compatible("any", "bool")

    @given(_DTYPE)
    @settings(max_examples=50, deadline=None)
    def test_reflexive(self, dtype):
        assert dtypes_compatible(dtype, dtype)

    def test_disjoint_atoms(self):
        assert not dtypes_compatible("float", "int")
        assert not dtypes_compatible("bool", "num")

"""Incremental cache: hits, transitive invalidation, fingerprinting."""

import json

import pytest

from repro.analysis import analyze_paths
from repro.analysis.cache import LintCache
from repro.analysis.project import cache_fingerprint

PKG = {
    "pkg/__init__.py": "",
    "pkg/a.py": "from .b import f\n\n\ndef top():\n    return f()\n",
    "pkg/b.py": "from .c import g\n\n\ndef f():\n    return g()\n",
    "pkg/c.py": "def g():\n    return 1\n",
    "pkg/d.py": "X = 1\n",
}


@pytest.fixture
def project(tmp_path):
    for rel, source in PKG.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    return tmp_path


def _run(project, cache_dir):
    return analyze_paths([project / "pkg"], cache_dir=cache_dir)


class TestWarmCache:
    def test_unchanged_tree_is_all_hits(self, project, tmp_path):
        cache_dir = tmp_path / ".lint_cache"
        cold = _run(project, cache_dir)
        assert len(cold.stats.parsed) == len(PKG)
        warm = _run(project, cache_dir)
        assert warm.stats.parsed == []
        assert warm.stats.file_cache_hits == len(PKG)
        assert warm.stats.semantic_cone_reanalyzed == []
        assert warm.stats.semantic_package_reanalyzed == []

    def test_findings_identical_cold_and_warm(self, project, tmp_path):
        cache_dir = tmp_path / ".lint_cache"
        cold = _run(project, cache_dir)
        warm = _run(project, cache_dir)
        assert [d.format() for d in warm.findings] == [
            d.format() for d in cold.findings
        ]


class TestTransitiveInvalidation:
    def test_editing_one_file_reanalyzes_only_its_cone(
        self, project, tmp_path
    ):
        cache_dir = tmp_path / ".lint_cache"
        _run(project, cache_dir)
        (project / "pkg" / "c.py").write_text(
            "def g():\n    return 2\n", encoding="utf-8"
        )
        after = _run(project, cache_dir)
        # only the edited file is re-parsed ...
        assert [p for p in after.stats.parsed] == [
            str(project / "pkg" / "c.py")
        ]
        assert after.stats.file_cache_hits == len(PKG) - 1
        # ... and cone-scoped semantic results are recomputed exactly
        # for the files whose import cone contains c: a, b, c — not d,
        # not __init__
        reanalyzed = {p.split("/")[-1] for p in after.stats.semantic_cone_reanalyzed}
        assert reanalyzed == {"a.py", "b.py", "c.py"}

    def test_editing_a_leaf_leaves_independent_files_cached(
        self, project, tmp_path
    ):
        cache_dir = tmp_path / ".lint_cache"
        _run(project, cache_dir)
        (project / "pkg" / "d.py").write_text("X = 2\n", encoding="utf-8")
        after = _run(project, cache_dir)
        reanalyzed = {p.split("/")[-1] for p in after.stats.semantic_cone_reanalyzed}
        assert reanalyzed == {"d.py"}


class TestCacheHygiene:
    def test_fingerprint_mismatch_drops_everything(self, project, tmp_path):
        cache_dir = tmp_path / ".lint_cache"
        _run(project, cache_dir)
        stale = LintCache(cache_dir, fingerprint="someone-elses-rules")
        assert stale.files == {}

    def test_corrupt_cache_file_starts_empty(self, project, tmp_path):
        cache_dir = tmp_path / ".lint_cache"
        _run(project, cache_dir)
        (cache_dir / "cache.json").write_text("{not json", encoding="utf-8")
        rerun = _run(project, cache_dir)
        assert len(rerun.stats.parsed) == len(PKG)  # cold again, no crash

    def test_cache_document_shape(self, project, tmp_path):
        cache_dir = tmp_path / ".lint_cache"
        _run(project, cache_dir)
        document = json.loads(
            (cache_dir / "cache.json").read_text(encoding="utf-8")
        )
        assert document["fingerprint"] == cache_fingerprint()
        entry = document["files"][str(project / "pkg" / "a.py")]
        assert set(entry) == {"sha", "summary", "diagnostics", "semantic"}
        assert set(entry["semantic"]) == {"cone", "package"}

    def test_select_bypasses_cache(self, project, tmp_path):
        cache_dir = tmp_path / ".lint_cache"
        result = analyze_paths(
            [project / "pkg"], select=["mutable-default"],
            cache_dir=cache_dir,
        )
        assert not result.stats.cache_enabled
        assert not (cache_dir / "cache.json").exists()


class TestParallelParsing:
    def test_jobs_gt_one_matches_serial(self, project, tmp_path):
        serial = analyze_paths([project / "pkg"], cache_dir=None)
        parallel = analyze_paths([project / "pkg"], cache_dir=None, jobs=2)
        assert [d.format() for d in parallel.findings] == [
            d.format() for d in serial.findings
        ]
        assert parallel.stats.files == serial.stats.files

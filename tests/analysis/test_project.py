"""Project index construction: modules, imports, cones, registries."""

from pathlib import Path

from repro.analysis import build_project_index, module_name_for
from repro.analysis.project import ProjectIndex, summarize_source

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src"


def _index_from(tmp_path, files):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    return build_project_index([tmp_path])


class TestModuleNaming:
    def test_walks_init_chain(self):
        assert (
            module_name_for(SRC / "repro" / "runtime" / "engine.py")
            == "repro.runtime.engine"
        )

    def test_init_is_the_package(self):
        assert (
            module_name_for(SRC / "repro" / "analysis" / "__init__.py")
            == "repro.analysis"
        )

    def test_loose_file_is_top_level(self, tmp_path):
        loose = tmp_path / "script.py"
        loose.write_text("x = 1\n", encoding="utf-8")
        assert module_name_for(loose) == "script"


class TestSummarizer:
    def test_shaped_spec_and_calls(self):
        source = (
            "from repro.contracts import shaped\n"
            "\n"
            '@shaped("(n,h,w)->(n,):float64")\n'
            "def run(clips):\n"
            "    return helper(clips)\n"
        )
        summary = summarize_source("m.py", "m", source)
        fn = summary["functions"]["run"]
        assert fn["spec"] == "(n,h,w)->(n,):float64"
        assert fn["params"] == ["clips"]
        assert [c["callee"] for c in fn["calls"]] == ["helper"]
        assert fn["calls"][0]["args"] == ["clips"]

    def test_thread_targets_and_lock_attrs(self):
        source = (
            "import threading\n"
            "\n"
            "class W:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._t = threading.Thread(target=self._loop)\n"
            "\n"
            "    def _loop(self):\n"
            "        with self._lock:\n"
            "            self._n = 1\n"
        )
        summary = summarize_source("w.py", "w", source)
        cls = summary["classes"]["W"]
        assert cls["thread_targets"] == ["_loop"]
        assert "_lock" in cls["lock_attrs"]
        mutation = cls["methods"]["_loop"]["mutations"][0]
        assert mutation["attr"] == "_n"
        assert mutation["guards"] == ["_lock"]

    def test_counter_increments(self):
        source = (
            "def f(telemetry, kind):\n"
            '    telemetry.count("hits")\n'
            '    telemetry.count(f"fault_{kind}")\n'
            "    unrelated.count('x')\n"
        )
        summary = summarize_source("c.py", "c", source)
        names = [(c["name"], c["prefix"]) for c in summary["counters"]]
        assert ("hits", None) in names
        assert (None, "fault_") in names
        assert all(n != "x" for n, _ in names)  # not a telemetry receiver


class TestImportGraphAndCones:
    def test_cone_follows_imports_transitively(self, tmp_path):
        index = _index_from(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/a.py": "from .b import f\n",
                "pkg/b.py": "from .c import g\n\ndef f():\n    return g()\n",
                "pkg/c.py": "def g():\n    return 1\n",
                "pkg/d.py": "X = 1\n",
            },
        )
        cone = index.cone_modules("pkg.a")
        assert {"pkg.a", "pkg.b", "pkg.c"} <= cone
        assert "pkg.d" not in cone

    def test_resolve_follows_facade_reexports(self, tmp_path):
        index = _index_from(
            tmp_path,
            {
                "pkg/__init__.py": "from .impl import thing\n",
                "pkg/impl.py": "def thing():\n    return 1\n",
                "pkg/user.py": "from pkg import thing\n",
            },
        )
        resolved = index.resolve("pkg.user", "thing")
        assert resolved is not None
        module, kind, _ = resolved
        assert (module, kind) == ("pkg.impl", "func")

    def test_cone_digest_changes_only_inside_cone(self, tmp_path):
        files = {
            "pkg/__init__.py": "",
            "pkg/a.py": "from .b import f\n",
            "pkg/b.py": "def f():\n    return 1\n",
            "pkg/d.py": "X = 1\n",
        }
        index = _index_from(tmp_path, files)
        a_path = str((tmp_path / "pkg" / "a.py").resolve())
        d_path = str((tmp_path / "pkg" / "d.py").resolve())
        a_before = index.cone_digest(_find_key(index, a_path))
        d_before = index.cone_digest(_find_key(index, d_path))
        (tmp_path / "pkg" / "b.py").write_text(
            "def f():\n    return 2\n", encoding="utf-8"
        )
        index2 = build_project_index([tmp_path])
        assert index2.cone_digest(_find_key(index2, a_path)) != a_before
        assert index2.cone_digest(_find_key(index2, d_path)) == d_before


class TestCounterRegistry:
    def test_real_registry_evaluates_exactly(self):
        index = build_project_index([SRC])
        registry = index.counter_registry("repro")
        assert registry is not None
        assert registry["exact"]
        # the comprehension over INJECTION_POINTS expands fully
        assert "fault_worker_crash" in registry["keys"]
        # PR-8 regression: keys that were incremented but never seeded
        for key in (
            "cache_quarantined",
            "chunks",
            "dedup_hits",
            "raster_bands",
            "resume_hits",
            "verified",
            "verified_unique",
        ):
            assert key in registry["keys"], key

    def test_package_without_registry_opts_out(self, tmp_path):
        index = _index_from(
            tmp_path, {"pkg/__init__.py": "", "pkg/a.py": "X = 1\n"}
        )
        assert index.counter_registry("pkg") is None

    def test_inexact_registry_is_marked(self, tmp_path):
        index = _index_from(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/m.py": (
                    "BASELINE_COUNTERS = tuple(\n"
                    '    ["a"] + mystery()\n'
                    ")\n"
                ),
            },
        )
        registry = index.counter_registry("pkg")
        assert registry is not None
        assert not registry["exact"]


def _find_key(index: ProjectIndex, resolved_path: str) -> str:
    for key in index.files:
        if str(Path(key).resolve()) == resolved_path:
            return key
    raise AssertionError(f"{resolved_path} not in index")

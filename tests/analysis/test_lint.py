"""The repro-lhd lint pass: rules, suppressions, formats, exit codes.

The deliberately-broken inputs live in ``fixtures/`` — pruned from
directory walks (so the CI gate over ``src tests`` stays green) but
linted when named explicitly, which is how these tests exercise every
rule.
"""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    all_rules,
    format_findings,
    lint_paths,
    lint_source,
)
from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]

EXPECTED_RULES = {
    "legacy-random",
    "unit-mix",
    "float-eq",
    "broad-except",
    "raster-parity",
    "mutable-default",
    "no-deep-runtime-import",
    "no-deep-service-import",
    "no-per-call-alloc-in-forward",
}


def findings_for(name, select=None):
    return lint_paths([FIXTURES / name], select=select)


class TestRuleCatalog:
    def test_all_project_rules_registered(self):
        assert EXPECTED_RULES <= set(all_rules())

    def test_rules_have_descriptions(self):
        for name, cls in all_rules().items():
            assert cls.description, f"rule {name} lacks a description"


class TestRules:
    @pytest.mark.parametrize(
        "fixture,rule,lines",
        [
            ("legacy_random.py", "legacy-random", [5, 6, 7]),
            ("unit_mix.py", "unit-mix", [7, 8, 9, 11]),
            ("float_eq.py", "float-eq", [6, 7, 8]),
            ("broad_except.py", "broad-except", [7, 14, 21]),
            ("raster_parity.py", "raster-parity", [8, 13]),
            ("mutable_default.py", "mutable-default", [4, 8, 12, 16]),
            (
                "per_call_alloc.py",
                "no-per-call-alloc-in-forward",
                [8, 9, 10, 11],
            ),
            (
                "deep_runtime_import.py",
                "no-deep-runtime-import",
                [3, 4, 5],
            ),
            (
                "deep_service_import.py",
                "no-deep-service-import",
                [3, 4, 5],
            ),
        ],
    )
    def test_fixture_findings(self, fixture, rule, lines):
        found = findings_for(fixture)
        assert [d.rule for d in found] == [rule] * len(lines)
        assert [d.line for d in found] == lines

    def test_fixture_tree_exercises_every_rule(self):
        found = lint_paths([FIXTURES])
        assert {d.rule for d in found} == EXPECTED_RULES

    def test_modern_rng_not_flagged(self):
        src = "import numpy as np\nrng = np.random.default_rng(7)\n"
        assert lint_source(src) == []

    def test_raster_parity_needs_detector_base(self):
        src = (
            "class Matcher:\n"
            "    def predict_proba(self, clips):\n"
            "        return clips\n"
        )
        assert lint_source(src) == []

    def test_deep_runtime_import_exempt_inside_runtime(self):
        src = "from repro.runtime.pool import WorkerPool\n"
        assert lint_source(src, path="src/repro/runtime/engine.py") == []
        assert [d.rule for d in lint_source(src, path="elsewhere.py")] == [
            "no-deep-runtime-import"
        ]

    def test_deep_service_import_exempt_inside_service(self):
        src = "from repro.service.manager import JobManager\n"
        assert lint_source(src, path="src/repro/service/http.py") == []
        assert [d.rule for d in lint_source(src, path="elsewhere.py")] == [
            "no-deep-service-import"
        ]

    def test_deep_service_relative_import_flagged(self):
        src = "from ..service.jobs import JobRecord\n"
        assert [d.rule for d in lint_source(src, path="src/repro/cli.py")] == [
            "no-deep-service-import"
        ]

    def test_parse_error_reported_as_finding(self):
        found = lint_source("def broken(:\n", path="bad.py")
        assert len(found) == 1 and found[0].rule == "parse-error"


class TestSuppressions:
    def test_suppressed_fixture_is_silent(self):
        assert findings_for("suppressed.py") == []

    def test_line_suppression_is_rule_specific(self):
        src = "import numpy as np\nnp.random.seed(0)  # lint: disable=unit-mix\n"
        assert [d.rule for d in lint_source(src)] == ["legacy-random"]

    def test_suppression_with_reason_text(self):
        src = (
            "import numpy as np\n"
            "np.random.seed(0)  # lint: disable=legacy-random  legacy repro\n"
        )
        assert lint_source(src) == []

    def test_file_wide_suppression(self):
        src = (
            "# lint: disable-file=legacy-random\n"
            "import numpy as np\n"
            "np.random.seed(0)\n"
            "np.random.rand(3)\n"
        )
        assert lint_source(src) == []


class TestSelectAndFormats:
    def test_select_narrows_rules(self):
        found = findings_for("unit_mix.py", select=["float-eq"])
        assert found == []

    def test_select_unknown_rule_raises(self):
        with pytest.raises(KeyError):
            lint_source("x = 1", select=["no-such-rule"])

    def test_text_format(self):
        found = findings_for("legacy_random.py")
        line = format_findings(found).splitlines()[0]
        assert line.endswith("use a seeded np.random.default_rng() Generator")
        assert ":5:0 legacy-random" in line

    def test_json_format_roundtrips(self):
        found = findings_for("legacy_random.py")
        parsed = json.loads(format_findings(found, fmt="json"))
        assert [d["line"] for d in parsed] == [5, 6, 7]
        assert {d["rule"] for d in parsed} == {"legacy-random"}
        assert set(parsed[0]) == {"path", "line", "col", "rule", "message"}


class TestWalking:
    def test_fixture_dir_pruned_from_walks(self):
        found = lint_paths([FIXTURES.parent])  # tests/analysis
        assert found == []

    def test_explicit_dir_overrides_pruning(self):
        assert len(lint_paths([FIXTURES])) > 0

    def test_duplicate_targets_deduplicated(self):
        once = lint_paths([FIXTURES / "float_eq.py"])
        twice = lint_paths([FIXTURES / "float_eq.py", FIXTURES / "float_eq.py"])
        assert once == twice


class TestCLI:
    def test_exit_one_on_findings(self, capsys):
        assert main(["lint", str(FIXTURES)]) == 1
        out = capsys.readouterr().out
        assert "legacy-random" in out

    def test_exit_zero_on_clean(self, capsys, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert main(["lint", str(clean)]) == 0

    def test_json_output(self, capsys):
        assert main(["lint", str(FIXTURES), "--format=json"]) == 1
        parsed = json.loads(capsys.readouterr().out)
        assert len(parsed) > 0

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in EXPECTED_RULES:
            assert rule in out

    def test_no_paths_is_usage_error(self, capsys):
        assert main(["lint"]) == 2

    def test_unknown_select_is_usage_error(self, capsys):
        assert main(["lint", str(FIXTURES), "--select", "bogus"]) == 2


class TestSelfHost:
    """The linter holds itself (and the whole tree) to its own rules."""

    def test_src_and_tests_are_clean(self):
        found = lint_paths([REPO_ROOT / "src", REPO_ROOT / "tests"])
        assert found == [], format_findings(found)

    def test_linter_own_source_is_clean(self):
        found = lint_paths([REPO_ROOT / "src" / "repro" / "analysis"])
        assert found == [], format_findings(found)

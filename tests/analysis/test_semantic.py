"""Cross-file semantic rules: fixture packages firing and suppressed."""

from pathlib import Path

from repro.analysis import analyze_paths

HERE = Path(__file__).resolve().parent
FIXTURES = HERE / "fixtures"
REPO = HERE.parents[1]


def _findings(package, **kwargs):
    result = analyze_paths([FIXTURES / package], cache_dir=None, **kwargs)
    return result.findings


def _by_rule(findings, rule):
    return [d for d in findings if d.rule == rule]


class TestContractFlow:
    def test_call_flow_mismatch_fires_with_location(self):
        found = _by_rule(_findings("proj_flow"), "contract-flow")
        mismatches = [
            d for d in found if "score_one()" in d.message
        ]
        assert len(mismatches) == 1  # the suppressed twin stays silent
        diag = mismatches[0]
        assert diag.path.endswith("proj_flow/pipeline.py")
        assert diag.line == 15
        assert "rank conflict" in diag.message

    def test_unparseable_spec_fires(self):
        found = _by_rule(_findings("proj_flow"), "contract-flow")
        parse_failures = [d for d in found if "does not parse" in d.message]
        assert len(parse_failures) == 1
        assert parse_failures[0].line == 23

    def test_override_mismatch_fires(self):
        found = _by_rule(_findings("proj_flow"), "contract-flow")
        overrides = [d for d in found if "base spec" in d.message]
        assert len(overrides) == 1
        assert overrides[0].line == 29
        assert "BaseScorer" in overrides[0].message

    def test_compatible_flow_is_silent(self):
        found = _by_rule(_findings("proj_flow"), "contract-flow")
        assert not any("score_batch" in d.message for d in found)


class TestCounterRegistry:
    def test_unregistered_counter_fires_with_location(self):
        found = _by_rule(_findings("proj_counters"), "counter-registry")
        unregistered = [d for d in found if "jobs_oops" in d.message]
        assert len(unregistered) == 1
        diag = unregistered[0]
        assert diag.path.endswith("proj_counters/worker.py")
        assert diag.line == 6

    def test_suppressed_increment_is_silent(self):
        found = _by_rule(_findings("proj_counters"), "counter-registry")
        assert not any("jobs_rogue" in d.message for d in found)

    def test_dead_baseline_key_fires_at_definition(self):
        found = _by_rule(_findings("proj_counters"), "counter-registry")
        dead = [d for d in found if "never_fired" in d.message]
        assert len(dead) == 1
        assert dead[0].path.endswith("proj_counters/metrics.py")
        assert dead[0].line == 5

    def test_dynamic_prefix_and_subscript_count_as_evidence(self):
        # fault_crash/fault_stall (f-string prefix) and jobs_finished
        # (stats["..."] +=) must NOT be reported dead
        found = _by_rule(_findings("proj_counters"), "counter-registry")
        assert not any("fault_" in d.message for d in found)
        assert not any("jobs_finished" in d.message for d in found)


class TestUnlockedSharedMutation:
    def test_unguarded_mutation_fires_with_location(self):
        found = _by_rule(_findings("proj_threads"), "unlocked-shared-mutation")
        assert len(found) == 1
        diag = found[0]
        assert diag.path.endswith("proj_threads/runner.py")
        assert diag.line == 16
        assert "_status" in diag.message

    def test_guarded_and_suppressed_mutations_are_silent(self):
        found = _by_rule(_findings("proj_threads"), "unlocked-shared-mutation")
        assert not any("_done" in d.message for d in found)  # lock-guarded
        assert not any("_steps" in d.message for d in found)  # suppressed


class TestSelfHosting:
    def test_semantic_pass_is_clean_over_src_and_tests(self):
        result = analyze_paths(
            [REPO / "src", REPO / "tests"], cache_dir=None
        )
        assert result.findings == [], [
            d.format() for d in result.findings
        ]

    def test_select_single_semantic_rule(self):
        result = analyze_paths(
            [FIXTURES / "proj_threads"],
            select=["unlocked-shared-mutation"],
            cache_dir=None,
        )
        assert {d.rule for d in result.findings} == {
            "unlocked-shared-mutation"
        }

"""SARIF 2.1.0 output: structure, schema validation, CLI round-trip."""

import json
from pathlib import Path

import pytest

from repro.analysis import analyze_paths, format_sarif, sarif_document
from repro.cli import main

HERE = Path(__file__).resolve().parent
FIXTURES = HERE / "fixtures"
SCHEMA = json.loads(
    (HERE / "sarif_schema_subset.json").read_text(encoding="utf-8")
)


def _fixture_findings():
    return analyze_paths(
        [FIXTURES / "proj_flow", FIXTURES / "proj_threads"], cache_dir=None
    ).findings


class TestDocument:
    def test_validates_against_schema(self):
        jsonschema = pytest.importorskip("jsonschema")
        document = sarif_document(_fixture_findings())
        jsonschema.validate(document, SCHEMA)

    def test_empty_run_validates_too(self):
        jsonschema = pytest.importorskip("jsonschema")
        jsonschema.validate(sarif_document([]), SCHEMA)

    def test_results_map_diagnostics(self):
        findings = _fixture_findings()
        document = sarif_document(findings)
        run = document["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lhd-lint"
        assert len(run["results"]) == len(findings)
        result = run["results"][0]
        diag = findings[0]
        assert result["ruleId"] == diag.rule
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == diag.line
        assert region["startColumn"] == diag.col + 1  # SARIF is 1-based
        rules = run["tool"]["driver"]["rules"]
        assert rules[result["ruleIndex"]]["id"] == diag.rule

    def test_parse_error_is_error_level(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def (\n", encoding="utf-8")
        findings = analyze_paths([bad], cache_dir=None).findings
        document = sarif_document(findings)
        results = document["runs"][0]["results"]
        assert results and results[0]["level"] == "error"
        # parse-error is registered on demand but still indexed
        rules = document["runs"][0]["tool"]["driver"]["rules"]
        assert rules[results[0]["ruleIndex"]]["id"] == "parse-error"


class TestCli:
    def test_lint_format_sarif_to_file(self, tmp_path, capsys):
        out = tmp_path / "lint.sarif"
        code = main(
            [
                "lint",
                str(FIXTURES / "proj_threads"),
                "--format",
                "sarif",
                "--no-cache",
                "--out",
                str(out),
            ]
        )
        assert code == 1  # findings present
        assert capsys.readouterr().out == ""  # routed to the file
        document = json.loads(out.read_text(encoding="utf-8"))
        assert document["version"] == "2.1.0"
        assert document["runs"][0]["results"]

    def test_clean_tree_emits_valid_empty_sarif(self, tmp_path, capsys):
        clean = tmp_path / "ok.py"
        clean.write_text("X = 1\n", encoding="utf-8")
        code = main(["lint", str(clean), "--format", "sarif", "--no-cache"])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["runs"][0]["results"] == []

    def test_format_sarif_string_is_json(self):
        parsed = json.loads(format_sarif(_fixture_findings()))
        assert parsed["version"] == "2.1.0"

"""Fixture: broad-except violations (and the reraise exemption)."""


def bare():
    try:
        return 1
    except:  # VIOLATION line 7
        return 0


def overbroad():
    try:
        return 1
    except Exception:  # VIOLATION line 14
        return 0


def tuple_broad():
    try:
        return 1
    except (ValueError, BaseException):  # VIOLATION line 21
        return 0


def reraise_is_fine():
    try:
        return 1
    except Exception:  # ok: body is a bare raise
        raise


def specific_is_fine():
    try:
        return 1
    except ValueError:  # ok
        return 0

"""Fixture: every form of deep repro.runtime import the rule must catch."""

import repro.runtime.engine
from repro.runtime.pool import WorkerPool
from repro.runtime import cache
from repro.runtime import ScanEngine  # facade import: NOT a finding

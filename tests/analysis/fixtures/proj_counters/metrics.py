"""Registry side: one key ('never_fired') has no increment anywhere."""

POINTS = ("crash", "stall")

BASELINE_COUNTERS = tuple(
    [f"fault_{point}" for point in POINTS]
    + ["jobs_started", "jobs_finished", "windows_seen", "never_fired"]
)

"""Increment side: registered, unregistered, suppressed, and dynamic."""


def run(telemetry, stats, kind):
    telemetry.count("jobs_started")
    telemetry.count("jobs_oops")
    telemetry.count("jobs_rogue")  # lint: disable=counter-registry  (fixture: suppressed on purpose)
    telemetry.count("windows_seen")
    telemetry.count(f"fault_{kind}")
    stats["jobs_finished"] += 1

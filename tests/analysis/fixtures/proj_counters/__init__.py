"""Fixture package: counter-registry rule inputs (deliberately broken)."""

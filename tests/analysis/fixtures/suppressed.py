"""Fixture: every violation here is suppressed — lint must report nothing."""
# lint: disable-file=mutable-default

import numpy as np

np.random.seed(0)  # lint: disable=legacy-random  (fixture demonstrates suppression)

width_nm = 640
width_px = 80
bad = width_nm + width_px  # lint: disable=unit-mix,float-eq


def silenced_by_file_wide(acc=[]):
    return acc


def wildcard():
    try:
        return 1
    except:  # lint: disable=all
        return 0

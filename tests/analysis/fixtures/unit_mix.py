"""Fixture: unit-mix violations (nm vs px arithmetic/comparison)."""

width_nm = 640
width_px = 80
pixel_nm = 8

bad_sum = width_nm + width_px  # VIOLATION line 7
bad_diff = width_nm - width_px  # VIOLATION line 8
if width_nm < width_px:  # VIOLATION line 9
    pass
width_nm += width_px  # VIOLATION line 11

ok_scale = width_px * pixel_nm  # ok: conversion is multiplicative
ok_same = width_nm + pixel_nm  # ok: both nm

"""Fixture: no-per-call-alloc-in-forward violations."""

import numpy as np


class HotLayer:
    def forward(self, x):
        out = np.zeros(x.shape)  # VIOLATION line 8
        tmp = np.empty(len(x))  # VIOLATION line 9
        mask = np.ones(len(x))  # VIOLATION line 10
        pad = np.full(len(x), 0.5)  # VIOLATION line 11
        return out + tmp + mask + pad

    def backward(self, grad):
        return np.zeros_like(grad) + np.zeros(3)  # other methods are fine


def forward(x):
    return np.zeros(3)  # module-level function, not a layer method


class OkLayer:
    def forward(self, x):
        return np.maximum(x, 0.0)

"""Fixture: raster-parity violations on Detector subclasses."""

import numpy as np

from repro.core.detector import Detector


class NoRasterDetector(Detector):  # VIOLATION line 8: missing rasters method
    def predict_proba(self, clips):
        return np.zeros(len(clips))


class NoPitchDetector(Detector):  # VIOLATION line 13: missing raster_pixel_nm
    def predict_proba(self, clips):
        return np.zeros(len(clips))

    def predict_proba_rasters(self, rasters):
        return np.zeros(len(rasters))


class FullRasterDetector(Detector):  # ok: both counterparts present
    raster_pixel_nm = 8

    def predict_proba(self, clips):
        return np.zeros(len(clips))

    def predict_proba_rasters(self, rasters):
        return np.zeros(len(rasters))


class NoOverride(Detector):  # ok: predict_proba not overridden here
    name = "inherits"

"""Fixture: legacy-random violations (and the allowed modern API)."""

import numpy as np

np.random.seed(42)  # VIOLATION line 5
x = np.random.rand(3)  # VIOLATION line 6
y = np.random.normal(size=4)  # VIOLATION line 7

rng = np.random.default_rng(42)  # ok: modern Generator API
z = rng.normal(size=4)  # ok
gen = np.random.Generator(np.random.PCG64(7))  # ok

"""Fixture package: unlocked-shared-mutation rule inputs (deliberately broken)."""

"""A worker thread mutating shared state: unguarded, guarded, suppressed."""

import threading


class Runner:
    def __init__(self):
        self._lock = threading.Lock()
        self._status = "idle"
        self._done = False
        self._steps = 0
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._thread.start()

    def _loop(self):
        self._status = "running"
        self._step()
        with self._lock:
            self._done = True

    def _step(self):
        self._steps = 1  # lint: disable=unlocked-shared-mutation  (fixture: suppressed on purpose)

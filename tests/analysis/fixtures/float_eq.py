"""Fixture: float-eq violations (float literals on geometry coordinates)."""

gap_nm = 12
offset_px = 3

bad_eq = gap_nm == 1.5  # VIOLATION line 6
bad_ne = offset_px != 0.5  # VIOLATION line 7
bad_rhs = 2.5 == gap_nm  # VIOLATION line 8

ok_int = gap_nm == 12  # ok: integer nm compare
ok_plain = 0.5 == 0.5  # ok: no geometry name involved

"""Fixture: mutable-default violations."""


def list_literal(acc=[]):  # VIOLATION line 4
    return acc


def dict_literal(cache={}):  # VIOLATION line 8
    return cache


def factory_call(seen=set()):  # VIOLATION line 12
    return seen


def kwonly(*, buf=list()):  # VIOLATION line 16
    return buf


def ok_none(acc=None):
    return [] if acc is None else acc


def ok_tuple(dims=(1, 2)):
    return dims

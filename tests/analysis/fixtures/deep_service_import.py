"""Fixture: every form of deep repro.service import the rule must catch."""

import repro.service.manager
from repro.service.fleet import WorkerFleet
from repro.service import wire
from repro.service import JobManager  # facade import: NOT a finding

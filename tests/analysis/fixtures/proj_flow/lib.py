"""Callee side: two @shaped scorers with different ranks."""

from repro.contracts import shaped


@shaped("(n,h,w)->(n,):float64")
def score_batch(clips):
    return clips.mean(axis=(1, 2))


@shaped("(h,w)->():float64")
def score_one(clip):
    return clip.mean()


class BaseScorer:
    @shaped("(n,h,w)->(n,):float64")
    def score(self, clips):
        return clips.mean(axis=(1, 2))

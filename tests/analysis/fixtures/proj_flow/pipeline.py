"""Caller side: one compatible flow, one conflict, one suppressed."""

from repro.contracts import shaped

from .lib import BaseScorer, score_batch, score_one


@shaped("(n,h,w)->(n,):float64")
def run_ok(clips):
    return score_batch(clips)


@shaped("(n,h,w)->(n,):float64")
def run_bad(clips):
    return score_one(clips)


@shaped("(n,h,w)->(n,):float64")
def run_excused(clips):
    return score_one(clips)  # lint: disable=contract-flow  (fixture: mismatch is the point)


@shaped("(n,h,w->(n,):float64")
def run_unparseable(clips):
    return clips


class IntScorer(BaseScorer):
    @shaped("(n,)->(n,):int64")
    def score(self, clips):
        return clips

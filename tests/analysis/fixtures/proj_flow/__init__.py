"""Fixture package: contract-flow rule inputs (deliberately broken)."""

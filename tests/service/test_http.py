"""HTTP front door: routes, status codes, Prometheus text, e2e client."""

import json

import pytest

from repro.runtime import ScanEngine
from repro.service import (
    JobState,
    ScanService,
    ServiceClient,
    ServiceError,
    TokenBucketRateLimiter,
    WorkerFleet,
    canonical_report_json,
    service_prometheus,
)


@pytest.fixture
def service(manager):
    """A listening service with no fleet: jobs stay queued forever."""
    with ScanService(manager) as running:
        yield running


@pytest.fixture
def client(service):
    return ServiceClient(service.url, timeout_s=10.0)


class TestRoutes:
    def test_healthz(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["queue_depth"] == 0
        assert set(health["jobs"]) == {s.value for s in JobState}

    def test_submit_returns_202_status_document(self, client, request_payload):
        submitted = client.submit(request_payload)
        assert submitted["state"] == "queued"
        assert "request" not in submitted  # public view only
        assert client.status(submitted["job_id"])["job_id"] == submitted["job_id"]

    def test_submit_malformed_is_400(self, client):
        with pytest.raises(ServiceError) as err:
            client.submit({"schema": 99})
        assert err.value.status == 400
        assert "schema" in err.value.message

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServiceError) as err:
            client.status("no-such-job")
        assert err.value.status == 404

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServiceError) as err:
            client._request("GET", "/totally/elsewhere")
        assert err.value.status == 404

    def test_result_before_terminal_is_409(self, client, request_payload):
        job_id = client.submit(request_payload)["job_id"]
        with pytest.raises(ServiceError) as err:
            client.result(job_id)
        assert err.value.status == 409
        assert "queued" in err.value.message

    def test_delete_cancels_queued_job(self, client, request_payload):
        job_id = client.submit(request_payload)["job_id"]
        assert client.cancel(job_id)["state"] == "cancelled"
        assert client.status(job_id)["state"] == "cancelled"

    def test_http_counters_tick(self, client, manager, request_payload):
        client.submit(request_payload)
        with pytest.raises(ServiceError):
            client.status("ghost")
        counters = manager.telemetry.counters
        assert counters["service_http_requests"] >= 2
        assert counters["service_http_errors"] == 1


class TestRateLimit:
    def test_429_when_bucket_empty(self, request_payload):
        from repro.service import JobManager

        manager = JobManager.in_memory(
            rate_limiter=TokenBucketRateLimiter(
                rate=0.001, burst=1, clock=lambda: 0.0
            )
        )
        with ScanService(manager) as service:
            # retries off: the point is the immediate 429, and the
            # bucket's ~1000s Retry-After would otherwise be honoured
            client = ServiceClient(
                service.url, client_id="greedy", max_retries=0
            )
            client.submit(request_payload)
            with pytest.raises(ServiceError) as err:
                client.submit(request_payload)
            assert err.value.status == 429
            assert err.value.retry_after_s >= 1.0  # Retry-After surfaced
            # a different client identity still gets through
            other = ServiceClient(service.url, client_id="patient")
            other.submit(request_payload)


class TestBackpressure:
    def test_queue_cap_sheds_503_with_retry_after(self, request_payload):
        from repro.service import JobManager

        manager = JobManager.in_memory(max_queue_depth=1)
        with ScanService(manager) as service:
            client = ServiceClient(service.url, max_retries=0)
            client.submit(request_payload)
            with pytest.raises(ServiceError) as err:
                client.submit(request_payload)
            assert err.value.status == 503
            assert err.value.retry_after_s >= 1.0
            assert manager.telemetry.counters["job_shed"] == 1
            # the 503 is load shedding, NOT the per-client rate limit
            assert "service_rate_limited" not in manager.telemetry.counters

    def test_readyz_reports_queue_cap(self, request_payload):
        from repro.service import JobManager

        manager = JobManager.in_memory(max_queue_depth=1)
        with ScanService(manager) as service:
            client = ServiceClient(service.url, max_retries=0)
            assert client.readyz()["status"] == "ready"
            client.submit(request_payload)
            with pytest.raises(ServiceError) as err:
                client.readyz()
            assert err.value.status == 503
            assert "queue full" in err.value.message


class TestDrainRoute:
    def test_drain_closes_admission_and_flips_readiness(
        self, request_payload
    ):
        from repro.service import JobManager

        manager = JobManager.in_memory()
        with ScanService(manager) as service:
            client = ServiceClient(service.url, max_retries=0)
            assert client.readyz()["status"] == "ready"
            assert client.drain()["status"] == "draining"
            assert service.drained.wait(10.0)
            # liveness stays green, readiness goes red
            health = client.healthz()
            assert health["status"] == "ok"
            assert health["draining"] is True
            with pytest.raises(ServiceError) as err:
                client.readyz()
            assert err.value.status == 503
            with pytest.raises(ServiceError) as err:
                client.submit(request_payload)
            assert err.value.status == 503
            assert err.value.retry_after_s >= 1.0
            assert manager.telemetry.counters["job_shed"] == 1


class TestQuarantineSurface:
    def test_quarantined_error_chain_over_http(self, request_payload):
        """A poison job's full failure history is readable by clients."""
        from repro.service import JobManager

        manager = JobManager.in_memory(
            max_attempts=1, lease_duration_s=0.05
        )
        with ScanService(manager) as service:
            client = ServiceClient(service.url, max_retries=0)
            job_id = client.submit(request_payload)["job_id"]
            claimed = manager.claim("w0")
            assert claimed is not None
            # the only attempt dies with its lease: straight to quarantine
            assert manager.reap(now=claimed.lease_expires_at + 1.0) == 1
            status = client.status(job_id)
            assert status["state"] == "quarantined"
            assert len(status["error_chain"]) == 1
            assert "lease expired" in status["error_chain"][-1]
            with pytest.raises(ServiceError) as err:
                client.wait(job_id, timeout_s=5.0)
            assert "quarantined" in err.value.message


class TestMetricsExposition:
    def test_families_zero_seeded_before_any_traffic(self, manager):
        text = service_prometheus(manager)
        assert 'repro_service_events_total{event="job_submitted"} 0' in text
        assert 'repro_service_events_total{event="service_rate_limited"} 0' in text
        assert 'repro_service_jobs{state="queued"} 0' in text
        assert "repro_service_queue_depth 0" in text
        assert 'repro_scan_events_total{event="scored"} 0' in text

    def test_resilience_families_zero_seeded(self, manager):
        text = service_prometheus(manager)
        for event in (
            "lease_renewed",
            "lease_reaped",
            "lease_lost",
            "job_quarantined",
            "job_shed",
            "job_drained",
            "job_deadline_exceeded",
            "fault_worker_crash",
            "fault_lease_lost",
            "fault_deadline_exceeded",
        ):
            assert (
                f'repro_service_events_total{{event="{event}"}} 0' in text
            ), event
        assert 'repro_service_jobs{state="quarantined"} 0' in text

    def test_metrics_route_reflects_submissions(self, client, request_payload):
        client.submit(request_payload)
        text = client.service_metrics()
        assert 'repro_service_events_total{event="job_submitted"} 1' in text
        assert 'repro_service_jobs{state="queued"} 1' in text
        assert "repro_service_queue_depth 1" in text


class TestEndToEnd:
    def test_http_submitted_scan_matches_direct_engine(
        self, manager, detector, layer, region, request_payload
    ):
        """The CI smoke contract: served report ≡ direct engine report."""
        direct = ScanEngine(detector).scan(layer, region, keep_clips=False)
        fleet = WorkerFleet(manager, detector, workers=2)
        with ScanService(manager, fleet=fleet) as service:
            client = ServiceClient(service.url)
            document = client.run(request_payload, timeout_s=60.0)
            job_id = manager.list_jobs()[0].job_id
            # the route serves the worker's document byte-for-byte
            assert document == manager.result(job_id).document
            metrics = client.metrics(job_id)
            assert metrics["counters"]["scored"] > 0
        assert canonical_report_json(document) == canonical_report_json(
            direct.to_json()
        )
        parsed = json.loads(document)
        assert parsed["n_windows"] == 36

    def test_failed_job_surfaces_error_through_wait(self, manager, layer, region):
        from repro.core.detector import Detector, FitReport
        from repro.service import encode_job_request

        class Meltdown(Detector):  # lint: disable=raster-parity  (test double)
            name = "meltdown"
            threshold = 0.5

            def fit(self, train, rng=None) -> FitReport:
                return FitReport()

            def predict_proba(self, clips):
                raise RuntimeError("meltdown")

        fleet = WorkerFleet(manager, Meltdown(), workers=1)
        with ScanService(manager, fleet=fleet) as service:
            client = ServiceClient(service.url)
            job_id = client.submit(encode_job_request(layer, region))["job_id"]
            with pytest.raises(ServiceError) as err:
                client.wait(job_id, timeout_s=60.0)
            assert "failed" in err.value.message
            assert "meltdown" in err.value.message


class TestLifecycle:
    def test_start_twice_refused(self, manager):
        with ScanService(manager) as service:
            with pytest.raises(RuntimeError, match="already started"):
                service.start()

    def test_address_before_start_refused(self, manager):
        with pytest.raises(RuntimeError, match="not started"):
            ScanService(manager).url

"""JobManager lifecycle: claims, cancels, retries, recovery, metrics."""

import random
import threading
import time

import pytest

from repro.runtime import BASELINE_COUNTERS, SERVICE_COUNTERS
from repro.service import (
    FileJobQueue,
    FileJobStore,
    FileResultStore,
    HeartbeatVerdict,
    InMemoryJobQueue,
    InMemoryJobStore,
    InMemoryResultStore,
    JobManager,
    JobNotFound,
    JobState,
    QueueFull,
    RateLimited,
    ServiceDraining,
    TokenBucketRateLimiter,
    WireError,
)


class FakeClock:
    """Manual wall clock so lease/deadline expiry is deterministic."""

    def __init__(self) -> None:
        # anchored to real time: JobRecord.created_at is stamped with
        # time.time(), and the job-deadline check compares against it
        self.now = time.time()

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def clocked_manager(**kwargs):
    clock = FakeClock()
    return JobManager.in_memory(clock=clock, **kwargs), clock


class TestSubmit:
    def test_submit_persists_and_enqueues(self, manager, request_payload):
        record = manager.submit(request_payload)
        assert manager.status(record.job_id).state is JobState.QUEUED
        assert manager.queue_depth() == 1
        assert manager.telemetry.counters["job_submitted"] == 1

    def test_submit_validates(self, manager):
        with pytest.raises(WireError):
            manager.submit({"schema": 99})
        assert manager.queue_depth() == 0

    def test_rate_limited_submit_refused(self, request_payload):
        limiter = TokenBucketRateLimiter(rate=1.0, burst=1, clock=lambda: 0.0)
        manager = JobManager(
            InMemoryJobStore(),
            InMemoryJobQueue(),
            InMemoryResultStore(),
            rate_limiter=limiter,
        )
        manager.submit(request_payload, client="c")
        with pytest.raises(RateLimited):
            manager.submit(request_payload, client="c")
        assert manager.telemetry.counters["service_rate_limited"] == 1
        # other clients unaffected
        manager.submit(request_payload, client="other")

    def test_status_unknown_raises(self, manager):
        with pytest.raises(JobNotFound):
            manager.status("nope")


class TestClaim:
    def test_claim_transitions_and_counts_attempts(
        self, manager, request_payload
    ):
        record = manager.submit(request_payload)
        claimed = manager.claim("w0", timeout=0.1)
        assert claimed.job_id == record.job_id
        assert claimed.state is JobState.RUNNING
        assert claimed.attempts == 1
        assert claimed.worker == "w0"

    def test_claim_empty_queue_times_out(self, manager):
        assert manager.claim("w0", timeout=0.01) is None

    def test_stale_queue_entry_skipped(self, manager, request_payload):
        record = manager.submit(request_payload)
        manager.cancel(record.job_id)  # QUEUED -> CANCELLED; entry now stale
        assert manager.claim("w0", timeout=0.05) is None

    def test_each_job_claimed_exactly_once(self, manager, request_payload):
        n = 20
        for _ in range(n):
            manager.submit(request_payload)
        claimed, lock = [], threading.Lock()

        def worker(name):
            while True:
                record = manager.claim(name, timeout=0.05)
                if record is None:
                    return
                with lock:
                    claimed.append(record.job_id)

        threads = [
            threading.Thread(target=worker, args=(f"w{i}",)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(claimed) == n
        assert len(set(claimed)) == n  # no double execution


class TestCompleteAndFail:
    def test_complete_publishes_result(self, manager, request_payload):
        manager.submit(request_payload)
        claimed = manager.claim("w0", timeout=0.1)
        manager.complete(claimed, '{"ok": 1}', {"counters": {"scored": 5}})
        final = manager.status(claimed.job_id)
        assert final.state is JobState.SUCCEEDED
        assert manager.result(claimed.job_id).document == '{"ok": 1}'
        assert manager.scan_aggregate()["scored"] == 5

    def test_fail_requeues_while_attempts_remain(
        self, manager, request_payload
    ):
        manager.submit(request_payload)
        claimed = manager.claim("w0", timeout=0.1)
        settled = manager.fail(claimed, RuntimeError("boom"))
        assert settled.state is JobState.QUEUED
        assert "boom" in settled.error
        assert manager.queue_depth() == 1
        assert manager.telemetry.counters["job_requeued"] == 1

    def test_fail_exhausts_to_failed(self, manager, request_payload):
        manager.submit(request_payload)
        for attempt in range(manager.max_attempts):
            claimed = manager.claim("w0", timeout=0.1)
            assert claimed.attempts == attempt + 1
            settled = manager.fail(claimed, RuntimeError(f"try {attempt}"))
        assert settled.state is JobState.FAILED
        assert manager.claim("w0", timeout=0.05) is None
        assert manager.telemetry.counters["job_failed"] == 1
        with pytest.raises(JobNotFound):
            manager.result(settled.job_id)

    def test_retry_counter(self, manager, request_payload):
        manager.submit(request_payload)
        manager.fail(manager.claim("w0", timeout=0.1), RuntimeError("x"))
        manager.claim("w0", timeout=0.1)
        assert manager.telemetry.counters["job_retries"] == 1


class TestCancel:
    def test_cancel_queued_is_immediate(self, manager, request_payload):
        record = manager.submit(request_payload)
        cancelled = manager.cancel(record.job_id)
        assert cancelled.state is JobState.CANCELLED
        assert manager.telemetry.counters["job_cancelled"] == 1

    def test_cancel_running_is_cooperative(self, manager, request_payload):
        manager.submit(request_payload)
        claimed = manager.claim("w0", timeout=0.1)
        flagged = manager.cancel(claimed.job_id)
        assert flagged.state is JobState.RUNNING
        assert flagged.cancel_requested
        assert manager.is_cancel_requested(claimed.job_id)

    def test_cancelled_running_job_lands_cancelled_not_succeeded(
        self, manager, request_payload
    ):
        manager.submit(request_payload)
        claimed = manager.claim("w0", timeout=0.1)
        manager.cancel(claimed.job_id)
        settled = manager.complete(claimed, "{}", {})
        assert settled.state is JobState.CANCELLED
        with pytest.raises(JobNotFound):
            manager.result(claimed.job_id)  # report discarded

    def test_cancelled_running_job_never_requeued(
        self, manager, request_payload
    ):
        manager.submit(request_payload)
        claimed = manager.claim("w0", timeout=0.1)
        manager.cancel(claimed.job_id)
        settled = manager.fail(claimed, RuntimeError("preempted"))
        assert settled.state is JobState.CANCELLED
        assert manager.queue_depth() == 0

    def test_cancel_terminal_is_noop(self, manager, request_payload):
        record = manager.submit(request_payload)
        manager.cancel(record.job_id)
        again = manager.cancel(record.job_id)
        assert again.state is JobState.CANCELLED
        assert manager.telemetry.counters["job_cancelled"] == 1

    def test_concurrent_submit_cancel_races_settle_consistently(
        self, manager, request_payload
    ):
        """cancel vs claim racing on every job: exactly one side wins."""
        ids = [manager.submit(request_payload).job_id for _ in range(16)]
        done = []

        def canceller():
            for job_id in ids:
                done.append(manager.cancel(job_id).job_id)

        def worker():
            while True:
                record = manager.claim("w0", timeout=0.05)
                if record is None:
                    return
                manager.complete(record, "{}", {})

        threads = [
            threading.Thread(target=canceller),
            threading.Thread(target=worker),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        states = [manager.status(job_id).state for job_id in ids]
        assert all(
            s in (JobState.SUCCEEDED, JobState.CANCELLED) for s in states
        )
        # accounting matches outcomes exactly
        counters = manager.telemetry.counters
        assert counters.get("job_succeeded", 0) == states.count(
            JobState.SUCCEEDED
        )
        assert counters.get("job_cancelled", 0) == states.count(
            JobState.CANCELLED
        )


class TestDelete:
    def test_delete_terminal_removes_everything(
        self, manager, request_payload
    ):
        manager.submit(request_payload)
        claimed = manager.claim("w0", timeout=0.1)
        manager.complete(claimed, "{}", {})
        manager.delete(claimed.job_id)
        with pytest.raises(JobNotFound):
            manager.status(claimed.job_id)

    def test_delete_active_cancels_instead(self, manager, request_payload):
        record = manager.submit(request_payload)
        manager.delete(record.job_id)
        assert manager.status(record.job_id).state is JobState.CANCELLED


class TestRecovery:
    def make_file_manager(self, tmp_path) -> JobManager:
        return JobManager(
            FileJobStore(tmp_path),
            FileJobQueue(tmp_path),
            FileResultStore(tmp_path),
            checkpoint_root=tmp_path / "ckpt",
        )

    def test_recover_replays_queued_and_running_exactly_once(
        self, tmp_path, request_payload
    ):
        before = self.make_file_manager(tmp_path)
        queued = [before.submit(request_payload).job_id for _ in range(3)]
        crashed = before.claim("w0", timeout=0.1)  # dies mid-scan

        after = self.make_file_manager(tmp_path)  # process restart
        replayed = after.recover()
        assert replayed == 3  # 2 still queued + 1 recovered
        assert after.status(crashed.job_id).state is JobState.QUEUED
        assert after.telemetry.counters["job_recovered"] == 1
        # exactly once: drain the queue and claim each id a single time
        seen = []
        while True:
            record = after.claim("w1", timeout=0.05)
            if record is None:
                break
            seen.append(record.job_id)
        assert sorted(seen) == sorted(queued)

    def test_recover_discards_stale_duplicate_queue_entries(
        self, tmp_path, request_payload
    ):
        manager = self.make_file_manager(tmp_path)
        record = manager.submit(request_payload)
        manager.queue.push(record.job_id)  # crash artifact: duplicate entry
        assert manager.recover() == 1
        assert manager.queue_depth() == 1

    def test_recover_clears_stale_leases(self, tmp_path, request_payload):
        """An orphaned RUNNING job's lease belongs to a dead process;
        recovery must scrub it so the next claim mints a fresh one."""
        before = self.make_file_manager(tmp_path)
        before.submit(request_payload)
        orphan = before.claim("w0", timeout=0.1)
        assert orphan.lease_token is not None

        after = self.make_file_manager(tmp_path)
        after.recover()
        record = after.status(orphan.job_id)
        assert record.state is JobState.QUEUED
        assert record.lease_token is None
        assert record.lease_expires_at is None
        assert record.attempt_started_at is None
        reclaimed = after.claim("w1", timeout=0.1)
        assert reclaimed.lease_token not in (None, orphan.lease_token)

    def test_recovered_job_keeps_checkpoints(self, tmp_path, request_payload):
        manager = self.make_file_manager(tmp_path)
        record = manager.submit(request_payload)
        ckpt = manager.checkpoint_dir_for(record.job_id)
        ckpt.mkdir(parents=True)
        (ckpt / "scan-checkpoint.npz").write_bytes(b"state")
        manager.claim("w0", timeout=0.1)
        manager.recover()
        assert (ckpt / "scan-checkpoint.npz").exists()  # resume material


class TestLeases:
    def test_claim_grants_lease(self, request_payload):
        manager, clock = clocked_manager(lease_duration_s=30.0)
        manager.submit(request_payload)
        claimed = manager.claim("w0", timeout=0.1)
        assert claimed.lease_token
        assert claimed.lease_expires_at == pytest.approx(clock.now + 30.0)
        assert claimed.attempt_started_at == pytest.approx(clock.now)

    def test_heartbeat_renews_lease(self, request_payload):
        manager, clock = clocked_manager(lease_duration_s=30.0)
        manager.submit(request_payload)
        claimed = manager.claim("w0", timeout=0.1)
        clock.advance(20.0)
        verdict = manager.heartbeat(claimed.job_id, claimed.lease_token)
        assert verdict is HeartbeatVerdict.CONTINUE
        renewed = manager.status(claimed.job_id)
        assert renewed.lease_expires_at == pytest.approx(clock.now + 30.0)
        assert manager.telemetry.counters["lease_renewed"] == 1

    def test_heartbeat_with_stale_token_is_lease_lost(
        self, manager, request_payload
    ):
        manager.submit(request_payload)
        claimed = manager.claim("w0", timeout=0.1)
        verdict = manager.heartbeat(claimed.job_id, "not-the-token")
        assert verdict is HeartbeatVerdict.LEASE_LOST
        assert manager.telemetry.counters["lease_lost"] == 1
        # the real owner is unaffected
        assert (
            manager.heartbeat(claimed.job_id, claimed.lease_token)
            is HeartbeatVerdict.CONTINUE
        )

    def test_heartbeat_unknown_job_is_lease_lost(self, manager):
        assert (
            manager.heartbeat("ghost", "tok") is HeartbeatVerdict.LEASE_LOST
        )

    def test_heartbeat_observes_cancel(self, manager, request_payload):
        manager.submit(request_payload)
        claimed = manager.claim("w0", timeout=0.1)
        manager.cancel(claimed.job_id)
        assert (
            manager.heartbeat(claimed.job_id, claimed.lease_token)
            is HeartbeatVerdict.CANCELLED
        )

    def test_break_lease_voids_ownership(self, manager, request_payload):
        manager.submit(request_payload)
        claimed = manager.claim("w0", timeout=0.1)
        assert manager.break_lease(claimed.job_id)
        assert (
            manager.heartbeat(claimed.job_id, claimed.lease_token)
            is HeartbeatVerdict.LEASE_LOST
        )

    def test_complete_with_reaped_lease_settles_nothing(
        self, request_payload
    ):
        """The fencing token: a worker finishing after its lease was
        reaped (and the job re-claimed) must not double-settle."""
        manager, clock = clocked_manager(lease_duration_s=1.0)
        manager.submit(request_payload)
        first = manager.claim("w0", timeout=0.1)
        clock.advance(2.0)
        assert manager.reap() == 1  # requeued
        second = manager.claim("w1", timeout=0.1)
        assert second.lease_token != first.lease_token
        # the presumed-dead worker wakes up and tries to finish
        assert manager.complete(first, '{"stale": 1}', {}) is None
        with pytest.raises(JobNotFound):
            manager.result(first.job_id)  # stale report discarded
        assert manager.status(first.job_id).state is JobState.RUNNING
        # the live claim settles normally
        settled = manager.complete(second, '{"fresh": 1}', {})
        assert settled.state is JobState.SUCCEEDED
        assert manager.result(first.job_id).document == '{"fresh": 1}'
        assert manager.telemetry.counters["job_succeeded"] == 1

    def test_fail_with_reaped_lease_settles_nothing(self, request_payload):
        manager, clock = clocked_manager(lease_duration_s=1.0)
        manager.submit(request_payload)
        first = manager.claim("w0", timeout=0.1)
        clock.advance(2.0)
        manager.reap()
        assert manager.fail(first, RuntimeError("stale")) is None
        record = manager.status(first.job_id)
        assert record.state is JobState.QUEUED
        assert "stale" not in (record.error or "")


class TestReaper:
    def test_reap_requeues_expired_lease(self, request_payload):
        manager, clock = clocked_manager(lease_duration_s=1.0)
        manager.submit(request_payload)
        claimed = manager.claim("w0", timeout=0.1)
        assert manager.reap() == 0  # lease still live
        clock.advance(2.0)
        assert manager.reap() == 1
        record = manager.status(claimed.job_id)
        assert record.state is JobState.QUEUED
        assert "lease expired" in record.error
        assert record.lease_token is None and record.worker is None
        assert manager.telemetry.counters["lease_reaped"] == 1
        retried = manager.claim("w1", timeout=0.1)
        assert retried.attempts == 2

    def test_reap_quarantines_exhausted_job(self, request_payload):
        manager, clock = clocked_manager(
            lease_duration_s=1.0, max_attempts=2
        )
        manager.submit(request_payload)
        for _ in range(2):
            assert manager.claim("w0", timeout=0.1) is not None
            clock.advance(2.0)
            assert manager.reap() == 1
        record = manager.list_jobs()[0]
        assert record.state is JobState.QUARANTINED
        assert len(record.error_chain) == 2
        assert all("lease expired" in e for e in record.error_chain)
        assert manager.telemetry.counters["job_quarantined"] == 1
        assert manager.telemetry.counters["lease_reaped"] == 1
        assert manager.claim("w0", timeout=0.05) is None  # parked for good

    def test_reaper_thread_reclaims_without_restart(self, request_payload):
        """A live fleet's reaper requeues a dead worker's job on its own."""
        manager = JobManager.in_memory(lease_duration_s=0.1)
        manager.submit(request_payload)
        claimed = manager.claim("w0", timeout=0.1)
        manager.start_reaper(interval_s=0.05)
        try:
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if manager.status(claimed.job_id).state is JobState.QUEUED:
                    break
                time.sleep(0.02)
            assert manager.status(claimed.job_id).state is JobState.QUEUED
        finally:
            manager.stop_reaper()

    def test_reap_vs_complete_hammer_single_settle(self, request_payload):
        """Aggressive reaping under a worker pool: every job settles
        exactly once even when leases expire as scans finish."""
        manager = JobManager.in_memory(
            lease_duration_s=0.02, max_attempts=1000
        )
        n = 24
        ids = [manager.submit(request_payload).job_id for _ in range(n)]
        stop = threading.Event()

        def reaper_loop():
            while not stop.is_set():
                manager.reap()

        def worker(name, rng):
            while True:
                record = manager.claim(name, timeout=0.05)
                if record is None:
                    if all(
                        manager.status(j).state is JobState.SUCCEEDED
                        for j in ids
                    ):
                        return
                    continue
                # sometimes outlive the lease before settling
                time.sleep(rng.uniform(0.0, 0.04))
                manager.complete(record, "{}", {})

        threads = [
            threading.Thread(target=worker, args=(f"w{i}", random.Random(i)))
            for i in range(4)
        ] + [threading.Thread(target=reaper_loop)]
        for t in threads:
            t.start()
        for t in threads[:-1]:
            t.join(timeout=60.0)
        stop.set()
        threads[-1].join(timeout=5.0)
        states = [manager.status(j).state for j in ids]
        assert states == [JobState.SUCCEEDED] * n
        # the invariant: one successful settle per job, no doubles, even
        # though reaps requeued some completions' jobs mid-flight
        assert manager.telemetry.counters["job_succeeded"] == n


class TestDeadlines:
    def test_request_budget_lands_on_record(self, manager, request_payload):
        payload = dict(request_payload)
        payload["deadline_s"] = 60.0
        payload["attempt_deadline_s"] = 10.0
        record = manager.submit(payload)
        assert record.deadline_s == 60.0
        assert record.attempt_deadline_s == 10.0

    def test_manager_defaults_apply(self, request_payload):
        manager, _clock = clocked_manager(
            default_deadline_s=120.0, default_attempt_deadline_s=15.0
        )
        record = manager.submit(request_payload)
        assert record.deadline_s == 120.0
        assert record.attempt_deadline_s == 15.0

    def test_job_deadline_fails_at_heartbeat(self, request_payload):
        manager, clock = clocked_manager(default_deadline_s=5.0)
        manager.submit(request_payload)
        claimed = manager.claim("w0", timeout=0.1)
        clock.advance(6.0)
        verdict = manager.heartbeat(claimed.job_id, claimed.lease_token)
        assert verdict is HeartbeatVerdict.JOB_DEADLINE
        record = manager.status(claimed.job_id)
        assert record.state is JobState.FAILED
        assert "job deadline" in record.error
        assert manager.telemetry.counters["job_deadline_exceeded"] == 1

    def test_attempt_deadline_requeues_then_quarantines(
        self, request_payload
    ):
        manager, clock = clocked_manager(
            default_attempt_deadline_s=5.0,
            lease_duration_s=100.0,
            max_attempts=2,
        )
        manager.submit(request_payload)
        claimed = manager.claim("w0", timeout=0.1)
        clock.advance(6.0)
        verdict = manager.heartbeat(claimed.job_id, claimed.lease_token)
        assert verdict is HeartbeatVerdict.ATTEMPT_DEADLINE
        assert manager.status(claimed.job_id).state is JobState.QUEUED
        # second (final) attempt spends its budget too -> quarantine
        again = manager.claim("w0", timeout=0.1)
        assert again.attempts == 2
        clock.advance(6.0)
        verdict = manager.heartbeat(again.job_id, again.lease_token)
        assert verdict is HeartbeatVerdict.ATTEMPT_DEADLINE
        record = manager.status(again.job_id)
        assert record.state is JobState.QUARANTINED
        assert len(record.error_chain) == 2
        counters = manager.telemetry.counters
        assert counters["job_deadline_attempt_exceeded"] == 2
        assert counters["job_quarantined"] == 1

    def test_queued_job_past_deadline_fails_on_reap(self, request_payload):
        manager, clock = clocked_manager(default_deadline_s=5.0)
        record = manager.submit(request_payload)
        clock.advance(6.0)
        assert manager.reap() == 1
        failed = manager.status(record.job_id)
        assert failed.state is JobState.FAILED
        assert "while queued" in failed.error

    def test_expire_attempt_deadline_seam(self, manager, request_payload):
        manager.submit(request_payload)
        claimed = manager.claim("w0", timeout=0.1)
        assert manager.expire_attempt_deadline(claimed.job_id)
        verdict = manager.heartbeat(claimed.job_id, claimed.lease_token)
        assert verdict is HeartbeatVerdict.ATTEMPT_DEADLINE


class TestAdmissionControl:
    def test_queue_cap_sheds(self, request_payload):
        manager = JobManager.in_memory(max_queue_depth=2)
        manager.submit(request_payload)
        manager.submit(request_payload)
        with pytest.raises(QueueFull):
            manager.submit(request_payload)
        assert manager.telemetry.counters["job_shed"] == 1
        # a claim frees a slot; admission recovers
        manager.claim("w0", timeout=0.1)
        manager.submit(request_payload)

    def test_draining_sheds_and_reopens(self, manager, request_payload):
        manager.begin_drain()
        with pytest.raises(ServiceDraining):
            manager.submit(request_payload)
        assert manager.telemetry.counters["job_shed"] == 1
        manager.end_drain()
        manager.submit(request_payload)


class TestRelease:
    def test_release_refunds_attempt(self, manager, request_payload):
        manager.submit(request_payload)
        claimed = manager.claim("w0", timeout=0.1)
        assert claimed.attempts == 1
        released = manager.release(claimed)
        assert released.state is JobState.QUEUED
        assert released.attempts == 0  # drain must not burn the budget
        assert released.lease_token is None
        assert manager.telemetry.counters["job_drained"] == 1
        reclaimed = manager.claim("w1", timeout=0.1)
        assert reclaimed.attempts == 1

    def test_release_with_stale_token_is_refused(
        self, manager, request_payload
    ):
        manager.submit(request_payload)
        claimed = manager.claim("w0", timeout=0.1)
        manager.break_lease(claimed.job_id)
        assert manager.release(claimed) is None
        assert manager.status(claimed.job_id).state is JobState.RUNNING


class TestServiceCounters:
    def test_service_counters_are_zero_seeded_in_baseline(self):
        assert set(SERVICE_COUNTERS) <= set(BASELINE_COUNTERS)

    def test_job_interrupt_fault_counter_seeded(self):
        assert "fault_job_interrupt" in BASELINE_COUNTERS

    def test_resilience_fault_counters_seeded(self):
        for name in (
            "fault_worker_crash",
            "fault_lease_lost",
            "fault_deadline_exceeded",
        ):
            assert name in BASELINE_COUNTERS, name

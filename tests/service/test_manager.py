"""JobManager lifecycle: claims, cancels, retries, recovery, metrics."""

import threading

import pytest

from repro.runtime import BASELINE_COUNTERS, SERVICE_COUNTERS
from repro.service import (
    FileJobQueue,
    FileJobStore,
    FileResultStore,
    InMemoryJobQueue,
    InMemoryJobStore,
    InMemoryResultStore,
    JobManager,
    JobNotFound,
    JobState,
    RateLimited,
    TokenBucketRateLimiter,
    WireError,
)


class TestSubmit:
    def test_submit_persists_and_enqueues(self, manager, request_payload):
        record = manager.submit(request_payload)
        assert manager.status(record.job_id).state is JobState.QUEUED
        assert manager.queue_depth() == 1
        assert manager.telemetry.counters["job_submitted"] == 1

    def test_submit_validates(self, manager):
        with pytest.raises(WireError):
            manager.submit({"schema": 99})
        assert manager.queue_depth() == 0

    def test_rate_limited_submit_refused(self, request_payload):
        limiter = TokenBucketRateLimiter(rate=1.0, burst=1, clock=lambda: 0.0)
        manager = JobManager(
            InMemoryJobStore(),
            InMemoryJobQueue(),
            InMemoryResultStore(),
            rate_limiter=limiter,
        )
        manager.submit(request_payload, client="c")
        with pytest.raises(RateLimited):
            manager.submit(request_payload, client="c")
        assert manager.telemetry.counters["service_rate_limited"] == 1
        # other clients unaffected
        manager.submit(request_payload, client="other")

    def test_status_unknown_raises(self, manager):
        with pytest.raises(JobNotFound):
            manager.status("nope")


class TestClaim:
    def test_claim_transitions_and_counts_attempts(
        self, manager, request_payload
    ):
        record = manager.submit(request_payload)
        claimed = manager.claim("w0", timeout=0.1)
        assert claimed.job_id == record.job_id
        assert claimed.state is JobState.RUNNING
        assert claimed.attempts == 1
        assert claimed.worker == "w0"

    def test_claim_empty_queue_times_out(self, manager):
        assert manager.claim("w0", timeout=0.01) is None

    def test_stale_queue_entry_skipped(self, manager, request_payload):
        record = manager.submit(request_payload)
        manager.cancel(record.job_id)  # QUEUED -> CANCELLED; entry now stale
        assert manager.claim("w0", timeout=0.05) is None

    def test_each_job_claimed_exactly_once(self, manager, request_payload):
        n = 20
        for _ in range(n):
            manager.submit(request_payload)
        claimed, lock = [], threading.Lock()

        def worker(name):
            while True:
                record = manager.claim(name, timeout=0.05)
                if record is None:
                    return
                with lock:
                    claimed.append(record.job_id)

        threads = [
            threading.Thread(target=worker, args=(f"w{i}",)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(claimed) == n
        assert len(set(claimed)) == n  # no double execution


class TestCompleteAndFail:
    def test_complete_publishes_result(self, manager, request_payload):
        manager.submit(request_payload)
        claimed = manager.claim("w0", timeout=0.1)
        manager.complete(claimed, '{"ok": 1}', {"counters": {"scored": 5}})
        final = manager.status(claimed.job_id)
        assert final.state is JobState.SUCCEEDED
        assert manager.result(claimed.job_id).document == '{"ok": 1}'
        assert manager.scan_aggregate()["scored"] == 5

    def test_fail_requeues_while_attempts_remain(
        self, manager, request_payload
    ):
        manager.submit(request_payload)
        claimed = manager.claim("w0", timeout=0.1)
        settled = manager.fail(claimed, RuntimeError("boom"))
        assert settled.state is JobState.QUEUED
        assert "boom" in settled.error
        assert manager.queue_depth() == 1
        assert manager.telemetry.counters["job_requeued"] == 1

    def test_fail_exhausts_to_failed(self, manager, request_payload):
        manager.submit(request_payload)
        for attempt in range(manager.max_attempts):
            claimed = manager.claim("w0", timeout=0.1)
            assert claimed.attempts == attempt + 1
            settled = manager.fail(claimed, RuntimeError(f"try {attempt}"))
        assert settled.state is JobState.FAILED
        assert manager.claim("w0", timeout=0.05) is None
        assert manager.telemetry.counters["job_failed"] == 1
        with pytest.raises(JobNotFound):
            manager.result(settled.job_id)

    def test_retry_counter(self, manager, request_payload):
        manager.submit(request_payload)
        manager.fail(manager.claim("w0", timeout=0.1), RuntimeError("x"))
        manager.claim("w0", timeout=0.1)
        assert manager.telemetry.counters["job_retries"] == 1


class TestCancel:
    def test_cancel_queued_is_immediate(self, manager, request_payload):
        record = manager.submit(request_payload)
        cancelled = manager.cancel(record.job_id)
        assert cancelled.state is JobState.CANCELLED
        assert manager.telemetry.counters["job_cancelled"] == 1

    def test_cancel_running_is_cooperative(self, manager, request_payload):
        manager.submit(request_payload)
        claimed = manager.claim("w0", timeout=0.1)
        flagged = manager.cancel(claimed.job_id)
        assert flagged.state is JobState.RUNNING
        assert flagged.cancel_requested
        assert manager.is_cancel_requested(claimed.job_id)

    def test_cancelled_running_job_lands_cancelled_not_succeeded(
        self, manager, request_payload
    ):
        manager.submit(request_payload)
        claimed = manager.claim("w0", timeout=0.1)
        manager.cancel(claimed.job_id)
        settled = manager.complete(claimed, "{}", {})
        assert settled.state is JobState.CANCELLED
        with pytest.raises(JobNotFound):
            manager.result(claimed.job_id)  # report discarded

    def test_cancelled_running_job_never_requeued(
        self, manager, request_payload
    ):
        manager.submit(request_payload)
        claimed = manager.claim("w0", timeout=0.1)
        manager.cancel(claimed.job_id)
        settled = manager.fail(claimed, RuntimeError("preempted"))
        assert settled.state is JobState.CANCELLED
        assert manager.queue_depth() == 0

    def test_cancel_terminal_is_noop(self, manager, request_payload):
        record = manager.submit(request_payload)
        manager.cancel(record.job_id)
        again = manager.cancel(record.job_id)
        assert again.state is JobState.CANCELLED
        assert manager.telemetry.counters["job_cancelled"] == 1

    def test_concurrent_submit_cancel_races_settle_consistently(
        self, manager, request_payload
    ):
        """cancel vs claim racing on every job: exactly one side wins."""
        ids = [manager.submit(request_payload).job_id for _ in range(16)]
        done = []

        def canceller():
            for job_id in ids:
                done.append(manager.cancel(job_id).job_id)

        def worker():
            while True:
                record = manager.claim("w0", timeout=0.05)
                if record is None:
                    return
                manager.complete(record, "{}", {})

        threads = [
            threading.Thread(target=canceller),
            threading.Thread(target=worker),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        states = [manager.status(job_id).state for job_id in ids]
        assert all(
            s in (JobState.SUCCEEDED, JobState.CANCELLED) for s in states
        )
        # accounting matches outcomes exactly
        counters = manager.telemetry.counters
        assert counters.get("job_succeeded", 0) == states.count(
            JobState.SUCCEEDED
        )
        assert counters.get("job_cancelled", 0) == states.count(
            JobState.CANCELLED
        )


class TestDelete:
    def test_delete_terminal_removes_everything(
        self, manager, request_payload
    ):
        manager.submit(request_payload)
        claimed = manager.claim("w0", timeout=0.1)
        manager.complete(claimed, "{}", {})
        manager.delete(claimed.job_id)
        with pytest.raises(JobNotFound):
            manager.status(claimed.job_id)

    def test_delete_active_cancels_instead(self, manager, request_payload):
        record = manager.submit(request_payload)
        manager.delete(record.job_id)
        assert manager.status(record.job_id).state is JobState.CANCELLED


class TestRecovery:
    def make_file_manager(self, tmp_path) -> JobManager:
        return JobManager(
            FileJobStore(tmp_path),
            FileJobQueue(tmp_path),
            FileResultStore(tmp_path),
            checkpoint_root=tmp_path / "ckpt",
        )

    def test_recover_replays_queued_and_running_exactly_once(
        self, tmp_path, request_payload
    ):
        before = self.make_file_manager(tmp_path)
        queued = [before.submit(request_payload).job_id for _ in range(3)]
        crashed = before.claim("w0", timeout=0.1)  # dies mid-scan

        after = self.make_file_manager(tmp_path)  # process restart
        replayed = after.recover()
        assert replayed == 3  # 2 still queued + 1 recovered
        assert after.status(crashed.job_id).state is JobState.QUEUED
        assert after.telemetry.counters["job_recovered"] == 1
        # exactly once: drain the queue and claim each id a single time
        seen = []
        while True:
            record = after.claim("w1", timeout=0.05)
            if record is None:
                break
            seen.append(record.job_id)
        assert sorted(seen) == sorted(queued)

    def test_recover_discards_stale_duplicate_queue_entries(
        self, tmp_path, request_payload
    ):
        manager = self.make_file_manager(tmp_path)
        record = manager.submit(request_payload)
        manager.queue.push(record.job_id)  # crash artifact: duplicate entry
        assert manager.recover() == 1
        assert manager.queue_depth() == 1

    def test_recovered_job_keeps_checkpoints(self, tmp_path, request_payload):
        manager = self.make_file_manager(tmp_path)
        record = manager.submit(request_payload)
        ckpt = manager.checkpoint_dir_for(record.job_id)
        ckpt.mkdir(parents=True)
        (ckpt / "scan-checkpoint.npz").write_bytes(b"state")
        manager.claim("w0", timeout=0.1)
        manager.recover()
        assert (ckpt / "scan-checkpoint.npz").exists()  # resume material


class TestServiceCounters:
    def test_service_counters_are_zero_seeded_in_baseline(self):
        assert set(SERVICE_COUNTERS) <= set(BASELINE_COUNTERS)

    def test_job_interrupt_fault_counter_seeded(self):
        assert "fault_job_interrupt" in BASELINE_COUNTERS

"""Chip-scale jobs through the service: wire gate, fan-out, merge."""

from __future__ import annotations

import pytest

from repro.runtime import ScanEngine, ShardPlanner, scan_chip
from repro.service import (
    JobState,
    WireError,
    WorkerFleet,
    canonical_report_json,
    encode_job_request,
    validate_job_request,
)


def chip_request(layer, region, chip, **kwargs):
    return encode_job_request(
        layer, region, engine={"chunk_clips": 64}, chip=chip, **kwargs
    )


# ----------------------------------------------------------------------
# wire validation
# ----------------------------------------------------------------------
class TestWire:
    def test_chip_knobs_round_trip(self, layer, region):
        request = chip_request(
            layer, region, {"shards": 4, "shard_workers": 2, "snap_nm": 512}
        )
        assert validate_job_request(request)["chip"] == {
            "shards": 4,
            "shard_workers": 2,
            "snap_nm": 512,
        }

    def test_service_side_chip_paths_are_refused(self, layer, region):
        with pytest.raises(WireError, match="not client-settable"):
            chip_request(layer, region, {"shards": 4, "manifest": "/x.npz"})
        with pytest.raises(WireError, match="not client-settable"):
            chip_request(layer, region, {"rescan_from": "/x.npz"})
        with pytest.raises(WireError, match="must be an object"):
            validate_job_request(
                {
                    "schema": 1,
                    "layer": {"name": "m", "polygons": []},
                    "region": [0, 0, 1024, 1024],
                    "chip": 4,
                }
            )

    def test_shard_marker_is_validated(self, layer, region, detector):
        plan = ShardPlanner(4).plan(region)
        base = chip_request(layer, region, None)
        ok = dict(base, shard={"plan": plan.to_json(), "index": 1, "parent": "j-1"})
        assert validate_job_request(ok)["shard"]["index"] == 1

        for bad in (
            {"plan": "", "index": 0, "parent": "j-1"},
            {"plan": plan.to_json(), "index": -1, "parent": "j-1"},
            {"plan": plan.to_json(), "index": True, "parent": "j-1"},
            {"plan": plan.to_json(), "index": 0, "parent": ""},
            "not-a-dict",
        ):
            with pytest.raises(WireError, match="shard"):
                validate_job_request(dict(base, shard=bad))

    def test_chip_and_shard_are_mutually_exclusive(self, layer, region):
        plan = ShardPlanner(2).plan(region)
        request = chip_request(layer, region, {"shards": 2})
        request["shard"] = {"plan": plan.to_json(), "index": 0, "parent": "j"}
        with pytest.raises(WireError, match="both a chip and a shard"):
            validate_job_request(request)


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------
class TestChipExecution:
    def test_multi_worker_fleet_fans_a_chip_job_out(
        self, manager, detector, layer, region
    ):
        direct = ScanEngine(detector).scan(layer, region, keep_clips=False)
        with WorkerFleet(manager, detector, workers=3) as fleet:
            record = manager.submit(
                chip_request(
                    layer, region, {"shards": 4, "instance_dedup": False}
                )
            )
            assert fleet.wait_idle(timeout=120)
        assert manager.status(record.job_id).state is JobState.SUCCEEDED
        stored = manager.result(record.job_id)
        assert canonical_report_json(stored.document) == canonical_report_json(
            direct.to_json()
        )
        # the coordinator spawned children and merged their reports
        assert manager.telemetry.counters["job_shards_spawned"] == 4
        assert manager.telemetry.counters["job_chip_merged"] == 1
        children = [
            r
            for r in manager.list_jobs()
            if (r.request.get("shard") or {}).get("parent") == record.job_id
        ]
        assert len(children) == 4
        assert all(
            manager.status(c.job_id).state is JobState.SUCCEEDED
            for c in children
        )

    def test_fan_out_dedups_congruent_shards(
        self, manager, detector, layer, region
    ):
        """On this small region every shard's halo covers the whole grid,
        so all four shards are congruent: one child scans, three replay."""
        direct = ScanEngine(detector).scan(layer, region, keep_clips=False)
        with WorkerFleet(manager, detector, workers=3) as fleet:
            record = manager.submit(chip_request(layer, region, {"shards": 4}))
            assert fleet.wait_idle(timeout=120)
        assert manager.status(record.job_id).state is JobState.SUCCEEDED
        stored = manager.result(record.job_id)
        assert canonical_report_json(stored.document) == canonical_report_json(
            direct.to_json()
        )
        assert manager.telemetry.counters["job_shards_spawned"] == 1
        assert stored.metrics["counters"]["shard_replays"] == 3

    def test_single_worker_fleet_scans_a_chip_job_inline(
        self, manager, detector, layer, region
    ):
        """No fan-out deadlock: one worker routes through scan_chip."""
        direct = ScanEngine(detector).scan(layer, region, keep_clips=False)
        with WorkerFleet(manager, detector, workers=1) as fleet:
            record = manager.submit(chip_request(layer, region, {"shards": 4}))
            assert fleet.wait_idle(timeout=120)
        assert manager.status(record.job_id).state is JobState.SUCCEEDED
        stored = manager.result(record.job_id)
        assert canonical_report_json(stored.document) == canonical_report_json(
            direct.to_json()
        )
        assert manager.telemetry.counters.get("job_shards_spawned", 0) == 0

    def test_chip_fan_out_matches_scan_chip_front_door(
        self, manager, detector, layer, region
    ):
        """Service fan-out and the library entrypoint agree byte-for-byte."""
        from repro.runtime import EngineConfig

        library = scan_chip(
            layer,
            detector,
            EngineConfig.from_kwargs(shards=4),
            region=region,
        )
        with WorkerFleet(manager, detector, workers=3) as fleet:
            record = manager.submit(chip_request(layer, region, {"shards": 4}))
            assert fleet.wait_idle(timeout=120)
        stored = manager.result(record.job_id)
        assert canonical_report_json(stored.document) == canonical_report_json(
            library.to_json()
        )

    def test_shards_1_is_a_plain_job(self, manager, detector, layer, region):
        direct = ScanEngine(detector).scan(layer, region, keep_clips=False)
        with WorkerFleet(manager, detector, workers=2) as fleet:
            record = manager.submit(chip_request(layer, region, {"shards": 1}))
            assert fleet.wait_idle(timeout=60)
        assert manager.status(record.job_id).state is JobState.SUCCEEDED
        stored = manager.result(record.job_id)
        assert canonical_report_json(stored.document) == canonical_report_json(
            direct.to_json()
        )
        assert manager.telemetry.counters.get("job_shards_spawned", 0) == 0

"""Service chaos suite: crashed workers, lost leases, deadlines, drain.

Every scenario drives a REAL fleet over real scans with deterministic
fault injection, and every recovery is proven with the strongest
available oracle — the canonical report of the recovered job must be
**byte-identical** to an uninterrupted direct-engine run of the same
request (the PR-4 checkpoint/resume + PR-6 wire-format contract).
"""

import time

import pytest

from repro.runtime import ScanEngine
from repro.service import (
    JobState,
    WorkerFleet,
    canonical_report_json,
    encode_job_request,
)
from .test_fleet import SlowDetector, file_manager, wait_for


@pytest.fixture
def resumable_request(layer, region):
    """Small chunks + checkpoint every chunk: interruptible anywhere."""
    return encode_job_request(
        layer,
        region,
        engine={"chunk_clips": 4, "checkpoint_every_chunks": 1},
    )


@pytest.fixture
def direct_canonical(detector, layer, region):
    """The oracle: an uninterrupted direct-engine run's canonical form."""
    report = ScanEngine(detector).scan(layer, region, keep_clips=False)
    return canonical_report_json(report.to_json())


class TestWorkerCrashReap:
    def test_crashed_worker_job_reclaimed_by_live_fleet(
        self, tmp_path, detector, resumable_request, direct_canonical
    ):
        """The acceptance scenario: a worker dies mid-scan WITHOUT
        settling; the live fleet's reaper expires the lease, requeues,
        and the resumed attempt serves a byte-identical result — no
        restart anywhere."""
        manager = file_manager(tmp_path, lease_duration_s=0.3)
        fleet = WorkerFleet(
            manager,
            detector,
            workers=2,
            faults="worker_crash@0",
            interrupt_after_events=1,
        )
        with fleet:
            record = manager.submit(resumable_request)
            assert fleet.wait_idle(timeout=120)
        final = manager.status(record.job_id)
        assert final.state is JobState.SUCCEEDED
        assert final.attempts == 2  # crashed claim + reclaimed claim
        stored = manager.result(record.job_id)
        # the reclaim genuinely resumed from the crashed attempt's
        # checkpoint rather than rescanning from scratch ...
        assert stored.metrics["counters"]["checkpoint_resumed"] == 1
        # ... and is byte-identical to the uninterrupted direct run
        assert canonical_report_json(stored.document) == direct_canonical
        counters = manager.telemetry.counters
        assert counters["fault_worker_crash"] == 1
        assert counters["lease_reaped"] == 1
        assert counters["job_retries"] == 1
        # the crash is in the audit trail even though the job succeeded
        assert any("lease expired" in e for e in final.error_chain)


class TestLeaseLostFencing:
    def test_lease_lost_mid_scan_aborts_without_settling(
        self, tmp_path, detector, resumable_request, direct_canonical
    ):
        """A reaped-and-voided lease is observed at the next heartbeat;
        the dispossessed worker settles nothing and the job recovers
        through the ordinary reap/requeue path."""
        manager = file_manager(tmp_path, lease_duration_s=0.2)
        fleet = WorkerFleet(
            manager,
            detector,
            workers=2,
            faults="lease_lost@0",
            interrupt_after_events=1,
        )
        with fleet:
            record = manager.submit(resumable_request)
            assert fleet.wait_idle(timeout=120)
        final = manager.status(record.job_id)
        assert final.state is JobState.SUCCEEDED
        assert final.attempts == 2
        stored = manager.result(record.job_id)
        assert canonical_report_json(stored.document) == direct_canonical
        counters = manager.telemetry.counters
        assert counters["fault_lease_lost"] == 1
        assert counters["lease_lost"] >= 1
        assert counters["lease_reaped"] == 1
        # exactly one settle: the dispossessed attempt published nothing
        assert counters["job_succeeded"] == 1


class TestDeadlineInjection:
    def test_attempt_deadline_requeues_and_resumes(
        self, tmp_path, detector, resumable_request, direct_canonical
    ):
        manager = file_manager(tmp_path, max_attempts=3)
        fleet = WorkerFleet(
            manager,
            detector,
            workers=1,
            faults="deadline_exceeded@0",
            interrupt_after_events=1,
        )
        with fleet:
            record = manager.submit(resumable_request)
            assert fleet.wait_idle(timeout=120)
        final = manager.status(record.job_id)
        assert final.state is JobState.SUCCEEDED
        assert final.attempts == 2
        assert any("deadline" in e for e in final.error_chain)
        stored = manager.result(record.job_id)
        assert canonical_report_json(stored.document) == direct_canonical
        counters = manager.telemetry.counters
        assert counters["fault_deadline_exceeded"] == 1
        assert counters["job_deadline_attempt_exceeded"] == 1


class TestPoisonQuarantine:
    def test_crash_looping_job_lands_quarantined_with_chain(
        self, tmp_path, detector, layer, region
    ):
        """A job whose EVERY attempt dies worker-fatally must park
        terminally instead of cycling through the fleet forever."""
        # checkpoints effectively off: every retry rescans from scratch,
        # so every retry reaches a scoring heartbeat and crashes again
        # (a checkpointed retry could resume past the crash point)
        poison_request = encode_job_request(
            layer,
            region,
            engine={"chunk_clips": 4, "checkpoint_every_chunks": 10_000},
        )
        manager = file_manager(
            tmp_path, lease_duration_s=0.2, max_attempts=2
        )
        fleet = WorkerFleet(
            manager,
            detector,
            workers=2,
            faults="worker_crash@0|1",  # both claims crash
            interrupt_after_events=1,
        )
        with fleet:
            record = manager.submit(poison_request)
            assert wait_for(
                lambda: manager.status(record.job_id).state
                is JobState.QUARANTINED,
                timeout_s=60.0,
            )
        final = manager.status(record.job_id)
        assert final.state is JobState.QUARANTINED
        assert final.attempts == 2
        assert len(final.error_chain) == 2
        assert all("lease expired" in e for e in final.error_chain)
        counters = manager.telemetry.counters
        assert counters["fault_worker_crash"] == 2
        assert counters["job_quarantined"] == 1
        assert counters["lease_reaped"] == 1  # first reap requeued
        # quarantine is terminal: nothing left queued or running
        by_state = manager.jobs_by_state()
        assert by_state["queued"] == 0 and by_state["running"] == 0


class TestDrainUnderLoad:
    def test_drain_loses_zero_jobs_and_resumes_byte_identical(
        self, tmp_path, layer, region, detector, direct_canonical
    ):
        """The rolling-restart contract: drain mid-load, every accepted
        job survives (finished, or requeued with its attempt refunded),
        and the next fleet serves byte-identical results."""
        request = encode_job_request(
            layer,
            region,
            engine={"chunk_clips": 4, "checkpoint_every_chunks": 1},
        )
        manager = file_manager(tmp_path)
        slow = SlowDetector(0.03)
        fleet = WorkerFleet(manager, slow, workers=2)
        fleet.start()
        ids = [manager.submit(request).job_id for _ in range(6)]
        # wait until the fleet is genuinely mid-flight
        assert wait_for(
            lambda: manager.jobs_by_state()["running"] > 0, timeout_s=30.0
        )
        assert fleet.drain(timeout=60.0)
        assert manager.draining
        # zero loss: every accepted job either finished or is queued
        # again (attempt refunded, checkpoint intact) — none vanished
        states = [manager.status(job_id).state for job_id in ids]
        assert all(
            s in (JobState.SUCCEEDED, JobState.QUEUED) for s in states
        )
        assert states.count(JobState.QUEUED) >= 1  # drain interrupted work
        drained = manager.telemetry.counters.get("job_drained", 0)
        assert drained >= 1
        for job_id in ids:
            record = manager.status(job_id)
            if record.state is JobState.QUEUED:
                assert record.attempts == 0  # refunded, not burned

        # "restart": a fresh process over the same durable state
        after = file_manager(tmp_path)
        with WorkerFleet(after, slow, workers=2) as next_fleet:
            assert next_fleet.wait_idle(timeout=120)
        for job_id in ids:
            final = after.status(job_id)
            assert final.state is JobState.SUCCEEDED
            assert (
                canonical_report_json(after.result(job_id).document)
                == direct_canonical
            )

    def test_draining_fleet_sheds_new_submissions(
        self, tmp_path, detector, resumable_request
    ):
        from repro.service import ServiceDraining

        manager = file_manager(tmp_path)
        fleet = WorkerFleet(manager, detector, workers=1)
        fleet.start()
        fleet.drain(timeout=30.0)
        with pytest.raises(ServiceDraining):
            manager.submit(resumable_request)
        assert manager.telemetry.counters["job_shed"] == 1


class TestReaperLifecycle:
    def test_fleet_starts_and_stops_the_reaper(self, tmp_path, detector):
        manager = file_manager(tmp_path, lease_duration_s=0.2)
        fleet = WorkerFleet(manager, detector, workers=1)
        fleet.start()
        reaper = manager.start_reaper()  # idempotent: same instance back
        assert reaper.running
        fleet.stop()
        assert not reaper.running

    def test_reaper_survives_idle_fleet(self, tmp_path, detector):
        """No jobs, short lease: the reaper thread just keeps sweeping."""
        manager = file_manager(tmp_path, lease_duration_s=0.1)
        with WorkerFleet(manager, detector, workers=1):
            time.sleep(0.3)
            assert manager.jobs_by_state()["running"] == 0

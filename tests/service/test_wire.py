"""Wire format: layer codec, request validation, canonical projection."""

import json

import pytest

from repro.geometry import Layer, Rect
from repro.runtime import ScanEngine
from repro.service import (
    WireError,
    canonical_report_json,
    encode_job_request,
    encode_layer,
    decode_layer,
    validate_job_request,
    build_engine_config,
)
from repro.geometry import clip_fingerprint, extract_clip


class TestLayerCodec:
    def test_round_trip_preserves_clip_fingerprints(self, layer):
        rebuilt = decode_layer(encode_layer(layer))
        assert rebuilt.name == layer.name
        for center in [(600, 600), (1200, 1200), (300, 1800)]:
            original = extract_clip(layer, center, 768, 256)
            copy = extract_clip(rebuilt, center, 768, 256)
            assert clip_fingerprint(original) == clip_fingerprint(copy)

    def test_round_trip_survives_json(self, layer):
        wire = json.loads(json.dumps(encode_layer(layer)))
        rebuilt = decode_layer(wire)
        assert len(rebuilt.polygons) == len(layer.polygons)

    def test_bad_payload_is_wire_error(self):
        with pytest.raises(WireError):
            decode_layer({"name": "m1"})  # no polygons
        with pytest.raises(WireError):
            decode_layer({"name": "m1", "polygons": [[[1, 2, 3]]]})


class TestRequestValidation:
    def test_encode_builds_valid_request(self, layer, region):
        request = encode_job_request(layer, region, engine={"workers": 2})
        assert validate_job_request(request) == request

    def test_schema_required(self, request_payload):
        bad = dict(request_payload, schema=99)
        with pytest.raises(WireError, match="schema"):
            validate_job_request(bad)

    @pytest.mark.parametrize(
        "bad_region", [[0, 0, 100], [0, 0, "x", 100], [100, 0, 0, 100]]
    )
    def test_bad_region_refused(self, request_payload, bad_region):
        bad = dict(request_payload, region=bad_region)
        with pytest.raises(WireError):
            validate_job_request(bad)

    def test_unknown_fields_refused(self, request_payload):
        bad = dict(request_payload, surprise=1)
        with pytest.raises(WireError, match="surprise"):
            validate_job_request(bad)

    @pytest.mark.parametrize(
        "knob", ["cache_dir", "checkpoint_dir", "trace_dir", "progress", "mp_context"]
    )
    def test_service_side_engine_knobs_refused(self, request_payload, knob):
        bad = dict(request_payload, engine={knob: "/tmp/x"})
        with pytest.raises(WireError, match="not client-settable"):
            validate_job_request(bad)

    def test_window_core_validated(self, request_payload):
        with pytest.raises(WireError, match="window_nm"):
            validate_job_request(dict(request_payload, window_nm=0))
        with pytest.raises(WireError, match="step_nm"):
            validate_job_request(dict(request_payload, step_nm="fast"))


class TestEngineConfig:
    def test_client_knobs_and_service_resources_compose(
        self, request_payload, tmp_path
    ):
        request = dict(request_payload, engine={"workers": 2, "chunk_clips": 16})
        config = build_engine_config(
            request, checkpoint_dir=tmp_path / "ckpt", progress_every_chunks=3
        )
        assert config.batch.workers == 2
        assert config.batch.chunk_clips == 16
        assert config.checkpoint.dir == tmp_path / "ckpt"
        assert config.observability.progress_every_chunks == 3

    def test_invalid_values_surface_as_wire_error(self, request_payload):
        request = dict(request_payload, engine={"workers": 0})
        with pytest.raises(WireError, match="workers"):
            build_engine_config(request)


class TestCanonicalProjection:
    def test_projection_drops_volatile_fields(self, detector, layer, region):
        document = ScanEngine(detector).scan(
            layer, region, keep_clips=False
        ).to_json()
        canonical = json.loads(canonical_report_json(document))
        assert set(canonical) == {
            "schema",
            "scan_path",
            "n_windows",
            "centers",
            "scores",
            "flagged",
            "confirmed",
        }

    def test_two_runs_byte_identical(self, detector, layer, region):
        docs = [
            ScanEngine(detector).scan(layer, region, keep_clips=False).to_json()
            for _ in range(2)
        ]
        # the full documents differ (elapsed_s at minimum) ...
        assert json.loads(docs[0])["elapsed_s"] != json.loads(docs[1])["elapsed_s"]
        # ... the canonical projections are byte-identical
        assert canonical_report_json(docs[0]) == canonical_report_json(docs[1])

    def test_wire_round_tripped_layer_scans_identically(
        self, detector, layer, region
    ):
        rebuilt = decode_layer(json.loads(json.dumps(encode_layer(layer))))
        direct = ScanEngine(detector).scan(layer, region, keep_clips=False)
        rewired = ScanEngine(detector).scan(rebuilt, region, keep_clips=False)
        assert canonical_report_json(direct.to_json()) == canonical_report_json(
            rewired.to_json()
        )

"""Port contracts across both adapter families, plus file durability."""

import json
import threading

import pytest

from repro.service import (
    FileJobQueue,
    FileJobStore,
    FileResultStore,
    InMemoryJobQueue,
    InMemoryJobStore,
    InMemoryResultStore,
    JobNotFound,
    JobRecord,
    JobState,
    NullRateLimiter,
    StoredResult,
    TokenBucketRateLimiter,
)


@pytest.fixture(params=["memory", "file"])
def store(request, tmp_path):
    if request.param == "memory":
        return InMemoryJobStore()
    return FileJobStore(tmp_path)


@pytest.fixture(params=["memory", "file"])
def queue(request, tmp_path):
    if request.param == "memory":
        return InMemoryJobQueue()
    return FileJobQueue(tmp_path)


@pytest.fixture(params=["memory", "file"])
def results(request, tmp_path):
    if request.param == "memory":
        return InMemoryResultStore()
    return FileResultStore(tmp_path)


def make_record(job_id="j1", **kwargs) -> JobRecord:
    return JobRecord(job_id=job_id, request={"schema": 1}, **kwargs)


class TestJobStoreContract:
    def test_put_get_round_trip(self, store):
        record = make_record()
        store.put(record)
        assert store.get("j1") == record

    def test_get_unknown_is_none(self, store):
        assert store.get("nope") is None

    def test_update_is_read_modify_write(self, store):
        store.put(make_record())
        updated = store.update(
            "j1", lambda r: r.transition(JobState.RUNNING, attempts=1)
        )
        assert updated.state is JobState.RUNNING
        assert store.get("j1").attempts == 1

    def test_update_none_means_unchanged(self, store):
        record = make_record()
        store.put(record)
        assert store.update("j1", lambda r: None) is None
        assert store.get("j1") == record

    def test_update_unknown_raises(self, store):
        with pytest.raises(JobNotFound):
            store.update("nope", lambda r: r)

    def test_list_records_ordered_by_seq(self, store):
        records = [make_record(f"j{i}") for i in range(3)]
        for record in reversed(records):  # insertion order scrambled
            store.put(record)
        assert [r.job_id for r in store.list_records()] == ["j0", "j1", "j2"]

    def test_delete(self, store):
        store.put(make_record())
        assert store.delete("j1") is True
        assert store.get("j1") is None
        assert store.delete("j1") is False


class TestJobQueueContract:
    def test_fifo(self, queue):
        for i in range(3):
            queue.push(f"j{i}")
        assert [queue.pop(0.01) for _ in range(3)] == ["j0", "j1", "j2"]

    def test_pop_timeout_returns_none(self, queue):
        assert queue.pop(0.01) is None

    def test_len_and_clear(self, queue):
        queue.push("a")
        queue.push("b")
        assert len(queue) == 2
        queue.clear()
        assert len(queue) == 0
        assert queue.pop(0.01) is None

    def test_pop_wakes_on_push(self, queue):
        got = []

        def popper():
            got.append(queue.pop(5.0))

        thread = threading.Thread(target=popper)
        thread.start()
        queue.push("late")
        thread.join(timeout=5.0)
        assert got == ["late"]


class TestResultStoreContract:
    def test_round_trip_document_verbatim(self, results):
        document = '{"schema": 3, "scores": [0.25]}'
        results.put(
            StoredResult(job_id="j1", document=document, metrics={"n": 1})
        )
        stored = results.get("j1")
        assert stored.document == document  # byte-for-byte
        assert stored.metrics == {"n": 1}

    def test_get_unknown_is_none(self, results):
        assert results.get("nope") is None

    def test_delete(self, results):
        results.put(StoredResult(job_id="j1", document="{}", metrics={}))
        assert results.delete("j1") is True
        assert results.get("j1") is None
        assert results.delete("j1") is False


class TestFileDurability:
    def test_job_records_survive_reopen(self, tmp_path):
        FileJobStore(tmp_path).put(make_record())
        assert FileJobStore(tmp_path).get("j1").job_id == "j1"

    def test_queue_order_survives_reopen(self, tmp_path):
        first = FileJobQueue(tmp_path)
        first.push("a")
        first.push("b")
        reopened = FileJobQueue(tmp_path)
        assert reopened.pop(0.01) == "a"
        # new pushes sequence after the surviving entries
        reopened.push("c")
        assert reopened.pop(0.01) == "b"
        assert reopened.pop(0.01) == "c"

    def test_corrupt_job_file_quarantined(self, tmp_path):
        seen = []
        store = FileJobStore(
            tmp_path, on_quarantine=lambda kind, p: seen.append((kind, p))
        )
        store.put(make_record())
        path = tmp_path / "jobs" / "j1.json"
        path.write_text('{"schema": 1, "job_id": ')  # truncated write
        assert store.get("j1") is None
        assert not path.exists()
        quarantined = list((tmp_path / "jobs").glob("*.quarantined"))
        assert len(quarantined) == 1
        assert seen == [("job", quarantined[0])]

    def test_corrupt_job_skipped_in_listing(self, tmp_path):
        store = FileJobStore(tmp_path)
        store.put(make_record("good"))
        (tmp_path / "jobs" / "bad.json").write_text("not json")
        assert [r.job_id for r in store.list_records()] == ["good"]

    def test_corrupt_result_quarantined(self, tmp_path):
        seen = []
        results = FileResultStore(
            tmp_path, on_quarantine=lambda kind, p: seen.append(kind)
        )
        results.put(StoredResult(job_id="j1", document="{}", metrics={}))
        (tmp_path / "results" / "j1.report.json").write_text('{"trunc')
        assert results.get("j1") is None
        assert list((tmp_path / "results").glob("*.quarantined"))
        assert seen == ["result"]

    def test_writes_are_atomic_no_tmp_left_behind(self, tmp_path):
        store = FileJobStore(tmp_path)
        store.put(make_record())
        assert not list((tmp_path / "jobs").glob("*.tmp"))
        payload = json.loads((tmp_path / "jobs" / "j1.json").read_text())
        assert payload["job_id"] == "j1"


class TestRateLimiters:
    def test_token_bucket_exhausts_and_refills(self):
        clock = [0.0]
        limiter = TokenBucketRateLimiter(
            rate=1.0, burst=2, clock=lambda: clock[0]
        )
        assert limiter.allow("c") and limiter.allow("c")
        assert not limiter.allow("c")  # burst spent
        clock[0] += 1.0  # one token accrues
        assert limiter.allow("c")
        assert not limiter.allow("c")

    def test_buckets_are_per_client(self):
        limiter = TokenBucketRateLimiter(rate=1.0, burst=1, clock=lambda: 0.0)
        assert limiter.allow("a")
        assert not limiter.allow("a")
        assert limiter.allow("b")

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucketRateLimiter(rate=0.0)
        with pytest.raises(ValueError):
            TokenBucketRateLimiter(rate=1.0, burst=0)

    def test_null_limiter_always_allows(self):
        limiter = NullRateLimiter()
        assert all(limiter.allow("x") for _ in range(100))

"""Shared fixtures for the scan-service tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.detector import Detector, FitReport
from repro.geometry import Layer, Rect
from repro.service import JobManager, encode_job_request


class GradedDensityDetector(Detector):  # lint: disable=raster-parity  (test double)
    """Continuous density score in [0, 1] — cheap and deterministic."""

    name = "density-graded"
    threshold = 0.5

    def fit(self, train, rng=None) -> FitReport:
        return FitReport()

    def predict_proba(self, clips):
        return np.clip([4.0 * c.density() for c in clips], 0.0, 1.0)


@pytest.fixture
def detector() -> GradedDensityDetector:
    return GradedDensityDetector()


@pytest.fixture
def layer() -> Layer:
    """Sparse wires everywhere, one dense block in the lower-left."""
    layer = Layer("metal1")
    rects = []
    for i in range(30):
        rects.append(Rect(0, i * 256, 4096, i * 256 + 64))
    for i in range(8):
        rects.append(Rect(0, i * 256 + 128, 1500, i * 256 + 192))
    layer.add_rects(rects)
    return layer


@pytest.fixture
def region() -> Rect:
    """Small enough to scan in milliseconds: 6x6 = 36 windows."""
    return Rect(0, 0, 2048, 2048)


@pytest.fixture
def request_payload(layer, region):
    return encode_job_request(layer, region, engine={"chunk_clips": 8})


@pytest.fixture
def manager() -> JobManager:
    """In-memory manager with no checkpointing (pure lifecycle tests)."""
    return JobManager.in_memory()

"""WorkerFleet end-to-end: execution, preemption/resume, restart replay."""

import time

import numpy as np
import pytest

from repro.core.detector import Detector, FitReport
from repro.runtime import ScanEngine
from repro.service import (
    FileJobQueue,
    FileJobStore,
    FileResultStore,
    JobManager,
    JobState,
    WorkerFleet,
    canonical_report_json,
    encode_job_request,
)


class SlowDetector(Detector):  # lint: disable=raster-parity  (test double)
    """Sleeps per scored chunk so a scan stays cancellable mid-flight."""

    name = "slow"
    threshold = 0.5

    def __init__(self, delay_s: float = 0.05) -> None:
        self.delay_s = delay_s

    def fit(self, train, rng=None) -> FitReport:
        return FitReport()

    def predict_proba(self, clips):
        time.sleep(self.delay_s)
        return np.clip([4.0 * c.density() for c in clips], 0.0, 1.0)


class ExplodingDetector(Detector):  # lint: disable=raster-parity  (test double)
    name = "exploding"
    threshold = 0.5

    def fit(self, train, rng=None) -> FitReport:
        return FitReport()

    def predict_proba(self, clips):
        raise RuntimeError("detector meltdown")


def file_manager(tmp_path, **kwargs) -> JobManager:
    return JobManager(
        FileJobStore(tmp_path),
        FileJobQueue(tmp_path),
        FileResultStore(tmp_path),
        checkpoint_root=tmp_path / "ckpt",
        **kwargs,
    )


def wait_for(predicate, timeout_s=30.0, poll_s=0.01):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(poll_s)
    return False


class TestExecution:
    def test_served_scan_matches_direct_engine(
        self, manager, detector, layer, region, request_payload
    ):
        direct = ScanEngine(detector).scan(layer, region, keep_clips=False)
        with WorkerFleet(manager, detector, workers=2) as fleet:
            record = manager.submit(request_payload)
            assert fleet.wait_idle(timeout=60)
        assert manager.status(record.job_id).state is JobState.SUCCEEDED
        stored = manager.result(record.job_id)
        assert canonical_report_json(stored.document) == canonical_report_json(
            direct.to_json()
        )
        assert stored.metrics["counters"]["scored"] > 0

    def test_many_jobs_across_workers(
        self, manager, detector, request_payload
    ):
        with WorkerFleet(manager, detector, workers=3) as fleet:
            ids = [manager.submit(request_payload).job_id for _ in range(6)]
            assert fleet.wait_idle(timeout=120)
        finals = [manager.status(job_id) for job_id in ids]
        assert all(r.state is JobState.SUCCEEDED for r in finals)
        assert all(r.attempts == 1 for r in finals)  # no double execution
        assert manager.telemetry.counters["job_succeeded"] == 6

    def test_bad_engine_kwargs_fail_the_job(self, manager, detector):
        # validation admits the knob name; the value only explodes at
        # config-build time in the worker -> bounded retries -> FAILED
        from repro.service import validate_job_request

        request = validate_job_request(
            {
                "schema": 1,
                "layer": {"name": "m", "polygons": []},
                "region": [0, 0, 1024, 1024],
                "engine": {"workers": -1},
            }
        )
        with WorkerFleet(manager, detector, workers=1) as fleet:
            record = manager.submit(request)
            assert fleet.wait_idle(timeout=60)
        final = manager.status(record.job_id)
        assert final.state is JobState.FAILED
        assert "workers" in final.error

    def test_detector_error_exhausts_attempts(
        self, manager, request_payload
    ):
        with WorkerFleet(manager, ExplodingDetector(), workers=1) as fleet:
            record = manager.submit(request_payload)
            assert fleet.wait_idle(timeout=60)
        final = manager.status(record.job_id)
        assert final.state is JobState.FAILED
        assert final.attempts == manager.max_attempts
        assert "meltdown" in final.error


class TestPreemptionResume:
    def test_interrupted_job_resumes_to_identical_report(
        self, tmp_path, detector, layer, region
    ):
        """A mid-scan kill retries via checkpoint resume, byte-identically."""
        direct = ScanEngine(detector).scan(layer, region, keep_clips=False)
        manager = file_manager(tmp_path)
        request = encode_job_request(
            layer,
            region,
            engine={"chunk_clips": 4, "checkpoint_every_chunks": 1},
        )
        fleet = WorkerFleet(
            manager,
            detector,
            workers=1,
            faults="job_interrupt@0",
            interrupt_after_events=1,
        )
        with fleet:
            record = manager.submit(request)
            assert fleet.wait_idle(timeout=120)
        final = manager.status(record.job_id)
        assert final.state is JobState.SUCCEEDED
        assert final.attempts == 2  # first claim was preempted
        assert "JobInterrupted" in final.error
        stored = manager.result(record.job_id)
        # the retry genuinely resumed (did not rescan from scratch) ...
        assert stored.metrics["counters"]["checkpoint_resumed"] == 1
        assert stored.metrics["counters"]["resume_hits"] > 0
        # ... and the canonical report is byte-identical to a direct run
        assert canonical_report_json(stored.document) == canonical_report_json(
            direct.to_json()
        )
        counters = manager.telemetry.counters
        assert counters["fault_job_interrupt"] == 1
        assert counters["job_requeued"] == 1
        assert counters["job_retries"] == 1

    def test_success_clears_job_checkpoints(self, tmp_path, detector, layer, region):
        manager = file_manager(tmp_path)
        request = encode_job_request(
            layer, region, engine={"checkpoint_every_chunks": 1}
        )
        with WorkerFleet(manager, detector, workers=1) as fleet:
            record = manager.submit(request)
            assert fleet.wait_idle(timeout=60)
        assert not manager.checkpoint_dir_for(record.job_id).exists()


class TestCancellation:
    def test_running_job_cancelled_at_heartbeat(
        self, manager, layer, region
    ):
        request = encode_job_request(layer, region, engine={"chunk_clips": 1})
        with WorkerFleet(manager, SlowDetector(), workers=1) as fleet:
            record = manager.submit(request)
            assert wait_for(
                lambda: manager.status(record.job_id).state
                is JobState.RUNNING
            )
            manager.cancel(record.job_id)
            assert fleet.wait_idle(timeout=60)
        final = manager.status(record.job_id)
        assert final.state is JobState.CANCELLED
        assert manager.telemetry.counters["job_cancelled"] == 1
        assert manager.telemetry.counters.get("job_requeued", 0) == 0


class TestRestartReplay:
    def test_fleet_restart_replays_queued_jobs_exactly_once(
        self, tmp_path, detector, layer, region
    ):
        """Jobs persisted before a crash run exactly once after restart."""
        request = encode_job_request(layer, region, engine={"chunk_clips": 8})
        before = file_manager(tmp_path)
        ids = [before.submit(request).job_id for _ in range(3)]
        crashed = before.claim("w0", timeout=0.1)  # in flight at crash time
        # duplicate queue entry a crash between push and claim could leave
        before.queue.push(ids[0])

        after = file_manager(tmp_path)  # fresh process over the same state
        with WorkerFleet(after, detector, workers=2) as fleet:  # start() recovers
            assert fleet.wait_idle(timeout=120)
        finals = {job_id: after.status(job_id) for job_id in ids}
        assert all(
            r.state is JobState.SUCCEEDED for r in finals.values()
        )
        # the crashed job's restart claim is attempt 2; the rest ran once
        assert finals[crashed.job_id].attempts == 2
        assert all(
            r.attempts == 1
            for job_id, r in finals.items()
            if job_id != crashed.job_id
        )
        assert after.telemetry.counters["job_recovered"] == 1
        assert after.telemetry.counters["job_started"] == 3
        for job_id in ids:
            assert after.result(job_id) is not None


class TestFleetLifecycle:
    def test_start_twice_refused(self, manager, detector):
        fleet = WorkerFleet(manager, detector, workers=1)
        with fleet:
            with pytest.raises(RuntimeError, match="already started"):
                fleet.start()
        assert not fleet.running

    def test_validation(self, manager, detector):
        with pytest.raises(ValueError):
            WorkerFleet(manager, detector, workers=0)
        with pytest.raises(ValueError):
            WorkerFleet(manager, detector, interrupt_after_events=0)

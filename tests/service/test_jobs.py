"""JobRecord state machine: edges, versioned wire format, invariants."""

import pytest

from repro.service import (
    ACTIVE_STATES,
    JOB_SCHEMA,
    TERMINAL_STATES,
    InvalidTransition,
    JobRecord,
    JobState,
)


def make_record(**kwargs) -> JobRecord:
    defaults = {"job_id": "j1", "request": {"schema": 1}}
    defaults.update(kwargs)
    return JobRecord(**defaults)


class TestStateMachine:
    def test_new_record_starts_queued(self):
        assert make_record().state is JobState.QUEUED

    @pytest.mark.parametrize(
        "path",
        [
            (JobState.RUNNING, JobState.SUCCEEDED),
            (JobState.RUNNING, JobState.FAILED),
            (JobState.RUNNING, JobState.CANCELLED),
            (JobState.RUNNING, JobState.QUEUED, JobState.RUNNING),
            (JobState.CANCELLED,),
        ],
    )
    def test_legal_paths(self, path):
        record = make_record()
        for state in path:
            record = record.transition(state)
        assert record.state is path[-1]

    @pytest.mark.parametrize(
        "start,bad",
        [
            (JobState.QUEUED, JobState.SUCCEEDED),
            (JobState.QUEUED, JobState.FAILED),
            (JobState.SUCCEEDED, JobState.RUNNING),
            (JobState.FAILED, JobState.QUEUED),
            (JobState.CANCELLED, JobState.RUNNING),
        ],
    )
    def test_illegal_edges_raise(self, start, bad):
        record = make_record()
        if start is not JobState.QUEUED:
            record = record.transition(JobState.RUNNING)
            if start is not JobState.RUNNING:
                record = record.transition(start)
        with pytest.raises(InvalidTransition):
            record.transition(bad)

    def test_transition_returns_new_record(self):
        record = make_record()
        moved = record.transition(JobState.RUNNING, worker="w0")
        assert record.state is JobState.QUEUED  # original untouched
        assert moved.worker == "w0"
        assert moved.updated_at >= record.updated_at

    def test_active_and_terminal_partition_states(self):
        assert ACTIVE_STATES | TERMINAL_STATES == frozenset(JobState)
        assert not ACTIVE_STATES & TERMINAL_STATES

    def test_terminal_property(self):
        assert not make_record().terminal
        done = make_record().transition(JobState.CANCELLED)
        assert done.terminal

    def test_retries_left(self):
        record = make_record(max_attempts=3)
        assert record.retries_left == 3
        claimed = record.transition(JobState.RUNNING, attempts=3)
        assert claimed.retries_left == 0

    def test_max_attempts_validated(self):
        with pytest.raises(ValueError):
            make_record(max_attempts=0)

    def test_seq_orders_by_creation(self):
        first, second = make_record(), make_record()
        assert second.seq > first.seq


class TestWireFormat:
    def test_round_trip(self):
        record = make_record(request={"schema": 1, "x": [1, 2]}).transition(
            JobState.RUNNING, attempts=1, worker="w0"
        )
        assert JobRecord.from_dict(record.to_dict()) == record

    def test_schema_stamped(self):
        assert make_record().to_dict()["schema"] == JOB_SCHEMA

    def test_foreign_schema_refused(self):
        payload = make_record().to_dict()
        payload["schema"] = JOB_SCHEMA + 1
        with pytest.raises(ValueError, match="schema"):
            JobRecord.from_dict(payload)

    def test_public_dict_drops_request_payload(self):
        public = make_record().public_dict()
        assert "request" not in public
        assert public["job_id"] == "j1"
        assert public["state"] == "queued"

"""JobRecord state machine: edges, versioned wire format, invariants."""

import pytest

from repro.service import (
    ACTIVE_STATES,
    JOB_SCHEMA,
    MAX_ERROR_CHAIN,
    TERMINAL_STATES,
    InvalidTransition,
    JobRecord,
    JobState,
    new_lease_token,
)


def make_record(**kwargs) -> JobRecord:
    defaults = {"job_id": "j1", "request": {"schema": 1}}
    defaults.update(kwargs)
    return JobRecord(**defaults)


class TestStateMachine:
    def test_new_record_starts_queued(self):
        assert make_record().state is JobState.QUEUED

    @pytest.mark.parametrize(
        "path",
        [
            (JobState.RUNNING, JobState.SUCCEEDED),
            (JobState.RUNNING, JobState.FAILED),
            (JobState.RUNNING, JobState.CANCELLED),
            (JobState.RUNNING, JobState.QUEUED, JobState.RUNNING),
            (JobState.RUNNING, JobState.QUARANTINED),
            (JobState.FAILED,),  # job deadline spent while still queued
            (JobState.CANCELLED,),
        ],
    )
    def test_legal_paths(self, path):
        record = make_record()
        for state in path:
            record = record.transition(state)
        assert record.state is path[-1]

    @pytest.mark.parametrize(
        "start,bad",
        [
            (JobState.QUEUED, JobState.SUCCEEDED),
            (JobState.QUEUED, JobState.QUARANTINED),
            (JobState.SUCCEEDED, JobState.RUNNING),
            (JobState.FAILED, JobState.QUEUED),
            (JobState.CANCELLED, JobState.RUNNING),
            (JobState.QUARANTINED, JobState.QUEUED),
            (JobState.QUARANTINED, JobState.RUNNING),
        ],
    )
    def test_illegal_edges_raise(self, start, bad):
        record = make_record()
        if start is not JobState.QUEUED:
            record = record.transition(JobState.RUNNING)
            if start is not JobState.RUNNING:
                record = record.transition(start)
        with pytest.raises(InvalidTransition):
            record.transition(bad)

    def test_transition_returns_new_record(self):
        record = make_record()
        moved = record.transition(JobState.RUNNING, worker="w0")
        assert record.state is JobState.QUEUED  # original untouched
        assert moved.worker == "w0"
        assert moved.updated_at >= record.updated_at

    def test_active_and_terminal_partition_states(self):
        assert ACTIVE_STATES | TERMINAL_STATES == frozenset(JobState)
        assert not ACTIVE_STATES & TERMINAL_STATES

    def test_quarantined_is_terminal(self):
        parked = make_record().transition(JobState.RUNNING).transition(
            JobState.QUARANTINED
        )
        assert parked.terminal

    def test_terminal_property(self):
        assert not make_record().terminal
        done = make_record().transition(JobState.CANCELLED)
        assert done.terminal

    def test_retries_left(self):
        record = make_record(max_attempts=3)
        assert record.retries_left == 3
        claimed = record.transition(JobState.RUNNING, attempts=3)
        assert claimed.retries_left == 0

    def test_max_attempts_validated(self):
        with pytest.raises(ValueError):
            make_record(max_attempts=0)

    def test_deadlines_validated(self):
        with pytest.raises(ValueError):
            make_record(deadline_s=0)
        with pytest.raises(ValueError):
            make_record(attempt_deadline_s=-1.0)

    def test_seq_orders_by_creation(self):
        first, second = make_record(), make_record()
        assert second.seq > first.seq


class TestErrorChain:
    def test_chain_error_accumulates(self):
        record = make_record()
        changes = record.chain_error("boom 1")
        record = record.transition(JobState.RUNNING, **changes)
        changes = record.chain_error("boom 2")
        assert changes["error"] == "boom 2"
        assert changes["error_chain"] == ("boom 1", "boom 2")

    def test_chain_is_bounded(self):
        record = make_record(
            error_chain=tuple(f"e{i}" for i in range(MAX_ERROR_CHAIN))
        )
        changes = record.chain_error("newest")
        assert len(changes["error_chain"]) == MAX_ERROR_CHAIN
        assert changes["error_chain"][-1] == "newest"
        assert changes["error_chain"][0] == "e1"  # oldest dropped


class TestLeaseClocks:
    def test_lease_expiry_requires_running(self):
        queued = make_record(lease_expires_at=10.0)
        assert not queued.lease_expired(now=100.0)
        running = make_record().transition(
            JobState.RUNNING, lease_expires_at=10.0
        )
        assert not running.lease_expired(now=9.9)
        assert running.lease_expired(now=10.0)

    def test_job_deadline(self):
        record = make_record(created_at=100.0, deadline_s=5.0)
        assert not record.job_deadline_exceeded(now=104.9)
        assert record.job_deadline_exceeded(now=105.0)
        assert not make_record(created_at=100.0).job_deadline_exceeded(1e9)

    def test_attempt_deadline(self):
        record = make_record(
            attempt_started_at=100.0, attempt_deadline_s=2.0
        )
        assert not record.attempt_deadline_exceeded(now=101.9)
        assert record.attempt_deadline_exceeded(now=102.0)
        # no attempt running -> no attempt budget to spend
        idle = make_record(attempt_deadline_s=2.0)
        assert not idle.attempt_deadline_exceeded(now=1e9)


class TestWireFormat:
    def test_round_trip(self):
        record = make_record(
            request={"schema": 1, "x": [1, 2]},
            deadline_s=30.0,
            attempt_deadline_s=5.0,
        ).transition(
            JobState.RUNNING,
            attempts=1,
            worker="w0",
            lease_token=new_lease_token(),
            lease_expires_at=123.0,
            attempt_started_at=100.0,
            **{"error": "x", "error_chain": ("x",)},
        )
        assert JobRecord.from_dict(record.to_dict()) == record

    def test_schema_stamped(self):
        assert make_record().to_dict()["schema"] == JOB_SCHEMA

    def test_foreign_schema_refused(self):
        payload = make_record().to_dict()
        payload["schema"] = JOB_SCHEMA + 1
        with pytest.raises(ValueError, match="schema"):
            JobRecord.from_dict(payload)

    def test_schema_1_migrates_forward(self):
        """Pre-lease records load with the new fields defaulted."""
        payload = make_record().to_dict()
        payload["schema"] = 1
        for gone in (
            "error_chain",
            "lease_token",
            "lease_expires_at",
            "attempt_started_at",
            "deadline_s",
            "attempt_deadline_s",
        ):
            del payload[gone]
        migrated = JobRecord.from_dict(payload)
        assert migrated.error_chain == ()
        assert migrated.lease_token is None
        assert migrated.deadline_s is None

    def test_public_dict_drops_request_payload(self):
        public = make_record().public_dict()
        assert "request" not in public
        assert public["job_id"] == "j1"
        assert public["state"] == "queued"

    def test_public_dict_hides_lease_token(self):
        """The token is a fencing capability: leaking it over HTTP would
        let any caller settle someone else's running job."""
        running = make_record().transition(
            JobState.RUNNING, lease_token=new_lease_token()
        )
        public = running.public_dict()
        assert "lease_token" not in public
        assert public["error_chain"] == []

"""ServiceClient retry/backoff discipline, tested hermetically.

No sockets: ``_request_once`` is replaced by a scripted transport, the
jitter rng always returns 0.5 (jitter factor exactly 1.0), and sleeps
are recorded instead of slept — so every delay the client chooses is
asserted to the exact float.
"""

from typing import List, Optional

import pytest

from repro.service import ServiceClient, ServiceError


class FixedRng:
    """random() == 0.5 -> the (0.5 + r) jitter factor is exactly 1.0."""

    def random(self) -> float:
        return 0.5


class ScriptedTransport:
    """Feed the client a fixed sequence of outcomes per request."""

    def __init__(self, outcomes: List[object]) -> None:
        self.outcomes = list(outcomes)
        self.calls: List[tuple] = []

    def __call__(self, method: str, path: str, body=None) -> str:
        self.calls.append((method, path))
        outcome = self.outcomes.pop(0)
        if isinstance(outcome, Exception):
            raise outcome
        return str(outcome)


def make_client(outcomes: List[object], **kwargs) -> ServiceClient:
    sleeps: List[float] = []
    kwargs.setdefault("backoff_s", 0.1)
    kwargs.setdefault("max_backoff_s", 2.0)
    client = ServiceClient(
        "http://test.invalid",
        rng=FixedRng(),
        sleep=sleeps.append,
        **kwargs,
    )
    client._request_once = ScriptedTransport(outcomes)
    client._recorded_sleeps = sleeps
    return client


def shed(status: int, retry_after_s: Optional[float] = None) -> ServiceError:
    return ServiceError(status, "busy", retry_after_s)


class TestRetrySchedule:
    def test_503s_then_success_backs_off_exponentially(self):
        client = make_client(
            [shed(503), shed(503), shed(503), '{"job_id": "j1"}']
        )
        assert client.submit({"schema": 1}) == {"job_id": "j1"}
        # 0.1 * 2^0, 2^1, 2^2 — jitter factor pinned to 1.0
        assert client._recorded_sleeps == [0.1, 0.2, 0.4]
        assert client.stats == {"retries_429": 0, "retries_503": 3}

    def test_backoff_caps_at_max_backoff(self):
        client = make_client(
            [shed(503)] * 6 + ['{"ok": true}'],
            max_retries=6,
            backoff_s=0.5,
            max_backoff_s=2.0,
        )
        client.submit({"schema": 1})
        assert client._recorded_sleeps == [0.5, 1.0, 2.0, 2.0, 2.0, 2.0]

    def test_retry_after_floors_the_delay(self):
        # the computed backoff would be 0.1s; the server asked for 5s
        client = make_client([shed(429, retry_after_s=5.0), '{"ok": true}'])
        client.submit({"schema": 1})
        assert client._recorded_sleeps == [5.0]
        assert client.stats["retries_429"] == 1

    def test_retry_after_never_lowers_the_delay(self):
        client = make_client(
            [shed(503, retry_after_s=0.001), '{"ok": true}'],
            backoff_s=1.0,
        )
        client.submit({"schema": 1})
        assert client._recorded_sleeps == [1.0]

    def test_exhausted_retries_raise_the_last_error(self):
        client = make_client([shed(503)] * 3, max_retries=2)
        with pytest.raises(ServiceError) as err:
            client.submit({"schema": 1})
        assert err.value.status == 503
        assert len(client._recorded_sleeps) == 2
        assert client.stats["retries_503"] == 2

    def test_max_retries_zero_fails_fast(self):
        client = make_client([shed(503)], max_retries=0)
        with pytest.raises(ServiceError):
            client.submit({"schema": 1})
        assert client._recorded_sleeps == []

    def test_non_retryable_status_raises_immediately(self):
        client = make_client([ServiceError(400, "bad request")])
        with pytest.raises(ServiceError) as err:
            client.submit({"schema": 1})
        assert err.value.status == 400
        assert client._recorded_sleeps == []
        assert client.stats == {"retries_429": 0, "retries_503": 0}

    def test_cancel_is_never_retried(self):
        """DELETE is not idempotent against a job that may have started:
        a refused cancel must surface, not silently repeat."""
        client = make_client([shed(503)])
        with pytest.raises(ServiceError):
            client.cancel("j1")
        assert client._recorded_sleeps == []

    def test_status_and_result_do_retry(self):
        client = make_client(
            [shed(503), '{"state": "queued"}', shed(429), "REPORT"]
        )
        assert client.status("j1") == {"state": "queued"}
        assert client.result("j1") == "REPORT"
        assert client.stats == {"retries_429": 1, "retries_503": 1}


class TestWaitBackoff:
    def test_poll_interval_grows_and_caps(self):
        queued = '{"state": "queued", "job_id": "j1"}'
        done = '{"state": "succeeded", "job_id": "j1"}'
        client = make_client([queued] * 6 + [done], max_poll_s=0.4)
        status = client.wait("j1", timeout_s=300.0, poll_s=0.1)
        assert status["state"] == "succeeded"
        # 0.1 * 1.5^k, capped at max_poll_s, jitter factor 1.0
        expected = [0.1, 0.15, 0.225, 0.3375, 0.4, 0.4]
        assert client._recorded_sleeps == pytest.approx(expected)

    def test_wait_raises_on_non_success_terminal(self):
        parked = (
            '{"state": "quarantined", "job_id": "j1", '
            '"error": "lease expired at attempt 3"}'
        )
        client = make_client([parked])
        with pytest.raises(ServiceError) as err:
            client.wait("j1", timeout_s=5.0)
        assert "quarantined" in err.value.message
        assert "lease expired" in err.value.message


class TestValidation:
    def test_negative_max_retries_refused(self):
        with pytest.raises(ValueError):
            ServiceClient("http://x", max_retries=-1)

    def test_non_positive_intervals_refused(self):
        with pytest.raises(ValueError):
            ServiceClient("http://x", backoff_s=0.0)
        with pytest.raises(ValueError):
            ServiceClient("http://x", max_poll_s=-1.0)

"""The repro.api facade: every advertised name resolves, none are stale."""

import repro.api as api


def test_all_names_resolve():
    for name in api.__all__:
        assert getattr(api, name, None) is not None, f"api.__all__ lists {name!r}"


def test_all_has_no_duplicates():
    assert len(api.__all__) == len(set(api.__all__))


def test_service_entry_points_exported():
    for name in (
        "JobManager",
        "JobRecord",
        "JobState",
        "ScanService",
        "ServiceClient",
        "WorkerFleet",
        "canonical_report_json",
        "encode_job_request",
        "serve",
    ):
        assert name in api.__all__
        assert getattr(api, name) is not None


def test_facade_matches_subpackage_objects():
    from repro import service

    assert api.JobManager is service.JobManager
    assert api.ScanService is service.ScanService
    assert api.serve is service.serve


def test_chip_scan_entry_points_exported():
    from repro import runtime

    for name in (
        "ChipScanConfig",
        "ShardPlan",
        "ShardPlanner",
        "ShardRunner",
        "merge_reports",
        "scan_chip",
    ):
        assert name in api.__all__
        assert getattr(api, name) is getattr(runtime, name)


def test_shard_plan_round_trips_through_the_facade():
    """Plan -> JSON -> plan via api names only, digest-stable."""
    region = api.Rect(0, 0, 4096, 4096)
    plan = api.ShardPlanner(4, snap_nm=512).plan(region)
    back = api.ShardPlan.from_json(plan.to_json())
    assert back == plan
    assert back.digest == plan.digest

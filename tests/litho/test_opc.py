"""Tests for rule-based OPC: geometry moves and printability improvement."""

import numpy as np
import pytest

from repro.geometry import Rect
from repro.litho import (
    HotspotOracle,
    LithoSimulator,
    OPCRules,
    add_hammerheads,
    bias_isolated_wires,
    correct_clip,
)

from ..conftest import clip_from_rects


class TestRules:
    def test_negative_values_raise(self):
        with pytest.raises(ValueError):
            OPCRules(iso_bias_nm=-1)


class TestBias:
    def test_isolated_vertical_wire_widened(self):
        rects = [Rect(568, 96, 632, 1104)]
        out = bias_isolated_wires(rects, OPCRules(iso_bias_nm=8))
        assert out[0].width == 64 + 16
        assert out[0].height == rects[0].height

    def test_dense_wires_untouched(self):
        rects = [Rect(500, 96, 564, 1104), Rect(628, 96, 692, 1104)]
        out = bias_isolated_wires(rects, OPCRules(iso_bias_nm=8, iso_space_nm=160))
        assert out == rects

    def test_horizontal_wire_widened_in_y(self):
        rects = [Rect(96, 568, 1104, 632)]
        out = bias_isolated_wires(rects, OPCRules(iso_bias_nm=8))
        assert out[0].height == 64 + 16


class TestHammerheads:
    def test_vertical_stub_gets_two_heads(self):
        rects = [Rect(568, 400, 632, 800)]
        out = add_hammerheads(rects, OPCRules())
        assert len(out) == 3  # wire + two heads
        heads = [r for r in out if r != rects[0]]
        assert any(h.y1 == 800 for h in heads)  # top head
        assert any(h.y2 == 400 for h in heads)  # bottom head

    def test_through_wire_in_contact_gets_no_heads(self):
        # wire abutting another shape at its end: not an exposed cap
        rects = [Rect(568, 400, 632, 800), Rect(500, 800, 700, 864)]
        out = add_hammerheads(rects, OPCRules())
        top_heads = [r for r in out if r.y1 == 800 and r.height <= 24]
        assert not top_heads

    def test_narrow_tip_skipped(self):
        rects = [Rect(568, 400, 600, 800)]  # 32nm wide < min_tip_width 40
        out = add_hammerheads(rects, OPCRules())
        assert out == rects


class TestCorrectClip:
    def test_window_preserved_and_rects_inside(self):
        clip = clip_from_rects([Rect(568, 400, 632, 800)])
        corrected = correct_clip(clip)
        assert corrected.window == clip.window
        assert corrected.core == clip.core
        for r in corrected.rects:
            assert clip.window.contains(r)
        assert "opc" in corrected.tag

    def test_opc_reduces_tip_pullback(self):
        """Hammerheads shrink line-end shortening under the simulator."""
        clip = clip_from_rects([Rect(568, 96, 632, 600)])  # tip ends mid-core
        sim = LithoSimulator()
        before = sim.print_clip(clip, dose=0.96, defocus_nm=32)
        corrected = correct_clip(clip, OPCRules(hammer_extend_nm=24, hammer_overhang_nm=16))
        after = sim.print_clip(corrected, dose=0.96, defocus_nm=32)
        # printed extent along the wire axis grows toward the design tip
        col = slice(46, 50)  # wire center columns
        assert after[:, col].sum() > before[:, col].sum()

    def test_opc_can_fix_a_neck_hotspot(self):
        """An isolated thin wire (neck hotspot) is cured by edge bias."""
        oracle = HotspotOracle()
        clip = clip_from_rects([Rect(584, 96, 632, 1104)])  # 48nm isolated
        assert oracle.label(clip) == 1
        corrected = correct_clip(clip, OPCRules(iso_bias_nm=16))
        assert oracle.label(corrected) == 0

"""Physical invariances of the lithography oracle."""

import numpy as np
import pytest

from repro.geometry import Rect
from repro.geometry.layout import Clip
from repro.litho import HotspotOracle

from ..conftest import clip_from_rects


@pytest.fixture(scope="module")
def oracle():
    return HotspotOracle()


MARGINAL = [Rect(504, 96, 568, 1104), Rect(608, 96, 672, 1104)]  # 40nm gap
COMFORT = [Rect(88 + i * 128, 96, 88 + i * 128 + 64, 1104) for i in range(8)]


class TestTranslationInvariance:
    @pytest.mark.parametrize("delta", [(8, 0), (0, 8), (64, 64), (-128, 256)])
    @pytest.mark.parametrize("rects", [MARGINAL, COMFORT], ids=["marginal", "comfort"])
    def test_global_shift_preserves_label(self, oracle, rects, delta):
        dx, dy = delta
        base = clip_from_rects(rects)
        moved = Clip(
            window=base.window.translate(dx, dy),
            core=base.core.translate(dx, dy),
            rects=tuple(r.translate(dx, dy) for r in base.rects),
            layer_name=base.layer_name,
        )
        assert oracle.label(base) == oracle.label(moved)


class TestMonotonicity:
    def test_widening_an_unsafe_wire_eventually_fixes_it(self, oracle):
        """A 40nm isolated wire is a hotspot; an 80nm one is not."""
        labels = {}
        for width in (40, 80):
            clip = clip_from_rects([Rect(600 - width // 2, 96, 600 + width // 2, 1104)])
            labels[width] = oracle.label(clip)
        assert labels[40] == 1
        assert labels[80] == 0

    def test_spacing_relief_fixes_bridging(self, oracle):
        """The 40nm pair is a hotspot; at 96nm spacing it is clean."""
        tight = clip_from_rects(MARGINAL)
        relaxed = clip_from_rects(
            [Rect(504 - 28, 96, 568 - 28, 1104), Rect(608 + 28, 96, 672 + 28, 1104)]
        )
        assert oracle.label(tight) == 1
        assert oracle.label(relaxed) == 0


class TestCornerSetMonotonicity:
    def test_fewer_corners_never_add_hotspots(self, oracle):
        """Restricting process corners can only reduce the defect set."""
        from repro.litho.optics import ImagingSettings

        clip = clip_from_rects(MARGINAL)
        full = oracle.analyze(clip)
        nominal_only = HotspotOracle(
            corners=(ImagingSettings(pixel_nm=8),),
            resist=oracle.resist,
        )
        reduced = nominal_only.analyze(clip)
        assert len(reduced.defects) <= len(full.defects)

    def test_corner_defects_align_with_corner_list(self, oracle):
        clip = clip_from_rects(COMFORT)
        analysis = oracle.analyze(clip)
        assert len(analysis.corner_defects) == len(oracle.corners)

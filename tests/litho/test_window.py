"""Tests for process-window metrics."""

import numpy as np
import pytest

from repro.geometry import Rect
from repro.litho import HotspotOracle, ProcessWindow, process_window, severity_score

from ..conftest import clip_from_rects


@pytest.fixture(scope="module")
def oracle():
    return HotspotOracle()


DOSES = (0.92, 1.0, 1.08)
DEFOCUS = (0.0, 32.0)


class TestProcessWindowDataclass:
    def test_ratio(self):
        passes = np.array([[True, True, False], [True, False, False]])
        pw = ProcessWindow(DOSES, DEFOCUS, passes)
        assert pw.ratio == pytest.approx(3 / 6)

    def test_dose_latitude_contiguous(self):
        passes = np.array([[True, True, False]])
        pw = ProcessWindow(DOSES, (0.0,), passes)
        assert pw.dose_latitude(0) == pytest.approx(1.0 - 0.92)

    def test_dose_latitude_zero_when_all_fail(self):
        passes = np.zeros((1, 3), dtype=bool)
        pw = ProcessWindow(DOSES, (0.0,), passes)
        assert pw.dose_latitude(0) == 0.0

    def test_dose_latitude_full_row(self):
        passes = np.ones((1, 3), dtype=bool)
        pw = ProcessWindow(DOSES, (0.0,), passes)
        assert pw.dose_latitude(0) == pytest.approx(1.08 - 0.92)


class TestProcessWindowEvaluation:
    def test_comfortable_pattern_wide_window(self, oracle, grating_clip):
        pw = process_window(
            grating_clip, oracle, doses=DOSES, defocus_values_nm=DEFOCUS
        )
        assert pw.ratio == 1.0
        assert severity_score(pw) == 0.0

    def test_marginal_pattern_narrow_window(self, oracle):
        clip = clip_from_rects(
            [Rect(504, 96, 568, 1104), Rect(608, 96, 672, 1104)]  # 40nm gap
        )
        pw = process_window(clip, oracle, doses=DOSES, defocus_values_nm=DEFOCUS)
        assert pw.ratio < 1.0
        assert severity_score(pw) > 0.0

    def test_grid_shape(self, oracle, grating_clip):
        pw = process_window(
            grating_clip, oracle, doses=DOSES, defocus_values_nm=DEFOCUS
        )
        assert pw.passes.shape == (len(DEFOCUS), len(DOSES))

    def test_severity_orders_patterns(self, oracle):
        """Severity grades marginality beyond the binary label."""
        tight = clip_from_rects(
            [Rect(504, 96, 568, 1104), Rect(608, 96, 672, 1104)]  # 40nm
        )
        comfortable = clip_from_rects(
            [Rect(472, 96, 536, 1104), Rect(632, 96, 696, 1104)]  # 96nm
        )
        s_tight = severity_score(
            process_window(tight, oracle, doses=DOSES, defocus_values_nm=DEFOCUS)
        )
        s_comf = severity_score(
            process_window(
                comfortable, oracle, doses=DOSES, defocus_values_nm=DEFOCUS
            )
        )
        assert s_tight > s_comf

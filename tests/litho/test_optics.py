"""Tests for aerial-image computation."""

import numpy as np
import pytest

from repro.litho import ImagingSettings, OpticalSystem, aerial_image


@pytest.fixture
def optics():
    return OpticalSystem(sigma_scale=0.20)


@pytest.fixture
def settings():
    return ImagingSettings(pixel_nm=8)


def block_mask(h=64, w=64, lo=16, hi=48):
    mask = np.zeros((h, w))
    mask[lo:hi, lo:hi] = 1.0
    return mask


class TestSettings:
    def test_invalid_raise(self):
        with pytest.raises(ValueError):
            ImagingSettings(pixel_nm=0)
        with pytest.raises(ValueError):
            ImagingSettings(dose=0.0)


class TestAerialImage:
    def test_shape_preserved(self, optics, settings):
        image = aerial_image(block_mask(), optics, settings)
        assert image.shape == (64, 64)

    def test_rejects_non_2d(self, optics, settings):
        with pytest.raises(ValueError):
            aerial_image(np.zeros((2, 4, 4)), optics, settings)

    def test_clear_field_images_to_dose(self, optics):
        for dose in (0.9, 1.0, 1.1):
            settings = ImagingSettings(pixel_nm=8, dose=dose)
            image = aerial_image(np.ones((48, 48)), optics, settings)
            np.testing.assert_allclose(image, dose, rtol=1e-6)

    def test_dark_field_images_to_zero(self, optics, settings):
        image = aerial_image(np.zeros((48, 48)), optics, settings)
        np.testing.assert_allclose(image, 0.0, atol=1e-12)

    def test_intensity_nonnegative(self, optics, settings):
        image = aerial_image(block_mask(), optics, settings)
        assert image.min() >= 0.0

    def test_peak_under_feature_center(self, optics, settings):
        image = aerial_image(block_mask(), optics, settings)
        peak = np.unravel_index(image.argmax(), image.shape)
        assert 16 <= peak[0] < 48 and 16 <= peak[1] < 48

    def test_blur_spreads_light_beyond_edges(self, optics, settings):
        image = aerial_image(block_mask(), optics, settings)
        assert image[32, 10] > 0.0  # left of the block
        assert image[32, 10] < image[32, 32]

    def test_dose_scales_linearly(self, optics):
        mask = block_mask()
        low = aerial_image(mask, optics, ImagingSettings(pixel_nm=8, dose=0.5))
        high = aerial_image(mask, optics, ImagingSettings(pixel_nm=8, dose=1.0))
        np.testing.assert_allclose(2 * low, high, rtol=1e-10)

    def test_defocus_lowers_small_feature_peak(self, optics):
        mask = np.zeros((64, 64))
        mask[30:34, 30:34] = 1.0  # small 32nm contact
        nominal = aerial_image(mask, optics, ImagingSettings(pixel_nm=8))
        blurred = aerial_image(
            mask, optics, ImagingSettings(pixel_nm=8, defocus_nm=60)
        )
        assert blurred.max() < nominal.max()

    def test_dense_grating_loses_contrast_vs_isolated(self, optics, settings):
        """Near the resolution limit, dense patterns image with lower
        contrast than isolated ones (the amplitude field flattens)."""
        iso = np.zeros((64, 96))
        iso[:, 44:52] = 1.0  # one 64nm line
        dense = np.zeros((64, 96))
        for start in range(4, 96, 16):
            dense[:, start : start + 8] = 1.0  # 64/64 grating
        iso_img = aerial_image(iso, optics, settings)
        dense_img = aerial_image(dense, optics, settings)
        iso_contrast = iso_img[:, 44:52].max() - iso_img[:, 60:88].min()
        dense_row = dense_img[32, 8:88]
        dense_contrast = dense_row.max() - dense_row.min()
        assert dense_contrast < iso_contrast

    def test_linearity_in_kernel_weights(self, settings):
        """Single-kernel system: image == (blurred amplitude)^2 exactly."""
        from scipy import ndimage

        from repro.litho.kernels import gaussian_1d, kernel_radius_px

        optics = OpticalSystem(sigma_scale=0.2, n_kernels=1)
        mask = block_mask()
        (weight, sigma_nm), = optics.kernel_stack()
        sigma_px = sigma_nm / settings.pixel_nm
        taps = gaussian_1d(sigma_px, kernel_radius_px(sigma_px))
        amp = ndimage.correlate1d(mask, taps, axis=0, mode="reflect")
        amp = ndimage.correlate1d(amp, taps, axis=1, mode="reflect")
        expected = weight * amp**2
        np.testing.assert_allclose(
            aerial_image(mask, optics, settings), expected, rtol=1e-12
        )

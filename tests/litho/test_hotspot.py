"""Tests for the hotspot oracle: calibration, tip zones, verdicts."""

import numpy as np
import pytest

from repro.geometry import Rect, rasterize_clip
from repro.litho import HotspotOracle, OpticalSystem, calibrate_threshold
from repro.litho.hotspot import edge_sites_for_clip, tip_mask, tip_zones_for_clip

from ..conftest import clip_from_rects


@pytest.fixture(scope="module")
def oracle():
    return HotspotOracle()


class TestCalibration:
    def test_threshold_in_sane_range(self):
        thr = calibrate_threshold(OpticalSystem(sigma_scale=0.2), 8, 64, 192)
        assert 0.05 < thr < 0.95

    def test_reference_grating_prints_at_size(self, oracle):
        """By construction the reference grating has ~zero EPE at nominal."""
        width, pitch = oracle.reference_width_nm, oracle.reference_pitch_nm
        rects = [
            Rect(96 + i * pitch, 100, 96 + i * pitch + width, 1100)
            for i in range(6)
        ]
        clip = clip_from_rects(rects)
        analysis = oracle.analyze(clip)
        nominal_defects = analysis.corner_defects[0]
        assert not [d for d in nominal_defects if d.kind == "epe"]

    def test_misaligned_grid_raises(self):
        with pytest.raises(ValueError):
            calibrate_threshold(OpticalSystem(), 8, 63, 192)


class TestTipZones:
    def test_wire_end_gets_zone(self):
        clip = clip_from_rects([Rect(568, 296, 632, 696)])  # vertical stub
        design = rasterize_clip(clip, 8)
        zones = tip_zones_for_clip(clip, design, 8, tip_margin_nm=80)
        assert len(zones) == 2  # both ends
        for z in zones:
            assert z.width == 64  # wire width
            assert z.height == 80

    def test_through_wire_no_zone(self, grating_clip):
        design = rasterize_clip(grating_clip, 8)
        zones = tip_zones_for_clip(grating_clip, design, 8)
        assert zones == []  # wires cross the whole window; caps lie outside

    def test_tip_mask_covers_zones(self):
        # grid-aligned stub so zone boundaries land on pixel boundaries
        clip = clip_from_rects([Rect(568, 296, 632, 696)])
        design = rasterize_clip(clip, 8)
        zones = tip_zones_for_clip(clip, design, 8)
        mask = tip_mask(zones, design.shape, 8)
        assert mask.sum() == sum((z.area // 64) for z in zones)


class TestEdgeSites:
    def test_sites_only_in_core(self, grating_clip):
        design = rasterize_clip(grating_clip, 8)
        sites = edge_sites_for_clip(grating_clip, design, 8)
        rs_lo = (grating_clip.local_core().y1 // 8) - 0.5
        rs_hi = (grating_clip.local_core().y2 // 8) - 0.5
        assert sites, "grating should expose side-wall sites in the core"
        for s in sites:
            assert rs_lo <= s.row <= rs_hi

    def test_grating_sites_all_side_kind(self, grating_clip):
        design = rasterize_clip(grating_clip, 8)
        sites = edge_sites_for_clip(grating_clip, design, 8)
        assert {s.kind for s in sites} == {"side"}

    def test_tip_pair_has_cap_sites(self, tip_pair_clip):
        design = rasterize_clip(tip_pair_clip, 8)
        zones = tip_zones_for_clip(tip_pair_clip, design, 8)
        sites = edge_sites_for_clip(tip_pair_clip, design, 8, tip_zones=zones)
        kinds = {s.kind for s in sites}
        assert "cap" in kinds

    def test_interior_edges_skipped(self):
        """Touching rects' shared edge yields no sites."""
        clip = clip_from_rects(
            [Rect(300, 560, 600, 624), Rect(600, 560, 900, 624)]
        )
        design = rasterize_clip(clip, 8)
        sites = edge_sites_for_clip(clip, design, 8)
        for s in sites:
            # no site on the shared vertical line x=600 (local 384, col 47.5)
            if s.normal[1] != 0:
                assert abs(s.col - 47.5) > 0.6


class TestVerdicts:
    def test_comfortable_grating_not_hotspot(self, oracle, grating_clip):
        assert oracle.label(grating_clip) == 0

    def test_empty_clip_not_hotspot(self, oracle, empty_clip):
        assert oracle.label(empty_clip) == 0

    def test_sub_min_spacing_pair_is_hotspot(self, oracle):
        """Two long runs at 40nm spacing bridge at the dose+ corner."""
        clip = clip_from_rects(
            [Rect(504, 96, 568, 1104), Rect(608, 96, 672, 1104)]
        )
        assert oracle.label(clip) == 1

    def test_thin_isolated_wire_is_hotspot(self, oracle):
        """40nm isolated wire necks/opens at the defocus corner."""
        clip = clip_from_rects([Rect(584, 96, 624, 1104)])
        assert oracle.label(clip) == 1

    def test_defect_outside_core_not_attributed(self, oracle):
        """The same marginal pair placed away from the core is clean here."""
        clip = clip_from_rects(
            [Rect(96, 96, 1104, 160), Rect(96, 200, 1104, 240)]  # 40nm gap, far below core
        )
        analysis = oracle.analyze(clip)
        assert analysis.is_hotspot is False
        # but the defect does exist somewhere in the window at some corner
        all_defects = [d for ds in analysis.corner_defects for d in ds]
        assert all_defects, "marginal pair should defect outside the core"

    def test_label_many_matches_label(self, oracle, grating_clip, tip_pair_clip):
        labels = oracle.label_many([grating_clip, tip_pair_clip])
        assert labels.tolist() == [
            oracle.label(grating_clip),
            oracle.label(tip_pair_clip),
        ]

    def test_determinism(self, oracle, tip_pair_clip):
        a = oracle.analyze(tip_pair_clip)
        b = oracle.analyze(tip_pair_clip)
        assert a.is_hotspot == b.is_hotspot
        assert a.defects == b.defects

    def test_d4_invariance_of_verdict(self, oracle):
        """Physics is D4-equivariant: orientation must not flip the label."""
        from repro.geometry import transform_clip

        clip = clip_from_rects(
            [Rect(504, 96, 568, 1104), Rect(608, 96, 672, 1104)]
        )
        base = oracle.label(clip)
        for name in ("rot90", "mirror_x", "transpose"):
            assert oracle.label(transform_clip(clip, name)) == base

"""Tests for multi-layer clips and metal-to-via analysis."""

import numpy as np
import pytest

from repro.geometry import (
    Layer,
    MultiLayerClip,
    Rect,
    enclosure_violations,
    extract_multilayer_clip,
)
from repro.litho import HotspotOracle, analyze_metal_via


def build_layers(metal_rects, via_rects):
    metal = Layer("metal1")
    metal.add_rects(metal_rects)
    via = Layer("via1")
    via.add_rects(via_rects)
    return {"metal1": metal, "via1": via}


def ml_clip(metal_rects, via_rects, center=(600, 600)):
    return extract_multilayer_clip(
        build_layers(metal_rects, via_rects), center, 768, 256
    )


WIDE_METAL = [Rect(96, 520, 1104, 680)]  # 160nm-wide landing pad strip
GOOD_VIA = [Rect(552, 552, 648, 648)]  # 96nm via well inside the metal


class TestMultiLayerClip:
    def test_extraction_aligned(self):
        clip = ml_clip(WIDE_METAL, GOOD_VIA)
        assert clip.layer_names == ("metal1", "via1")
        assert clip.layer("metal1").window == clip.layer("via1").window
        assert clip.window.width == 768

    def test_unknown_layer_raises(self):
        clip = ml_clip(WIDE_METAL, GOOD_VIA)
        with pytest.raises(KeyError):
            clip.layer("poly")

    def test_mismatched_windows_rejected(self):
        layers = build_layers(WIDE_METAL, GOOD_VIA)
        a = extract_multilayer_clip(layers, (600, 600), 768, 256)
        from repro.geometry import extract_clip

        other = extract_clip(layers["via1"], (700, 600), 768, 256)
        with pytest.raises(ValueError):
            MultiLayerClip(clips=(a.clips[0], ("via1", other)))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MultiLayerClip(clips=())
        with pytest.raises(ValueError):
            extract_multilayer_clip({}, (0, 0), 64, 32)


class TestEnclosureDRC:
    def test_well_enclosed_clean(self):
        clip = ml_clip(WIDE_METAL, GOOD_VIA)
        violations = enclosure_violations(
            clip.layer("metal1"), clip.layer("via1"), min_enclosure_nm=16
        )
        assert violations == []

    def test_under_enclosed_flagged(self):
        # via flush with the metal edge: zero top-side enclosure
        via = [Rect(552, 584, 648, 680)]
        clip = ml_clip(WIDE_METAL, via)
        violations = enclosure_violations(
            clip.layer("metal1"), clip.layer("via1"), min_enclosure_nm=16
        )
        assert len(violations) == 1

    def test_via_off_metal_flagged(self):
        via = [Rect(552, 800, 648, 896)]  # not on the strip at all
        clip = ml_clip(WIDE_METAL, via)
        violations = enclosure_violations(
            clip.layer("metal1"), clip.layer("via1"), min_enclosure_nm=8
        )
        assert len(violations) == 1

    def test_window_mismatch_raises(self):
        layers = build_layers(WIDE_METAL, GOOD_VIA)
        from repro.geometry import extract_clip

        metal = extract_clip(layers["metal1"], (600, 600), 768, 256)
        via = extract_clip(layers["via1"], (700, 600), 768, 256)
        with pytest.raises(ValueError):
            enclosure_violations(metal, via, 16)


class TestMetalViaPrintability:
    @pytest.fixture(scope="class")
    def oracle(self):
        return HotspotOracle()

    def test_healthy_stack_clean(self, oracle):
        clip = ml_clip(WIDE_METAL, GOOD_VIA)
        analysis = analyze_metal_via(clip, oracle)
        assert not analysis.is_hotspot
        assert analysis.missing_vias == 0
        assert analysis.min_coverage_nm2_ratio >= 0.7
        core_vias = [c for c in analysis.coverages if c.in_core]
        assert len(core_vias) == 1

    def test_tiny_via_never_prints(self, oracle):
        clip = ml_clip(WIDE_METAL, [Rect(568, 568, 632, 632)])  # 64nm via
        analysis = analyze_metal_via(clip, oracle)
        assert analysis.missing_vias == 1
        assert analysis.is_hotspot

    def test_via_under_retreating_metal_tip_loses_coverage(self, oracle):
        """Metal tip pullback exposes a via whose span the tip ends inside."""
        metal = [Rect(96, 552, 640, 648)]  # wire tip inside the via's span
        via = [Rect(552, 552, 648, 648)]
        exposed = analyze_metal_via(ml_clip(metal, via), oracle)
        covered = analyze_metal_via(ml_clip(WIDE_METAL, via), oracle)
        assert covered.min_coverage_nm2_ratio == pytest.approx(1.0)
        assert exposed.min_coverage_nm2_ratio < 1.0

    def test_metal_ending_at_via_center_is_hotspot(self, oracle):
        metal = [Rect(96, 552, 600, 648)]  # designed tip at the via center
        via = [Rect(552, 552, 648, 648)]
        analysis = analyze_metal_via(ml_clip(metal, via), oracle)
        assert analysis.min_coverage_nm2_ratio < 0.7
        assert analysis.is_hotspot

    def test_vias_outside_core_not_attributed(self, oracle):
        # healthy via in core, broken (tiny) via far outside the core
        metal = [Rect(96, 520, 1104, 680), Rect(96, 900, 1104, 1000)]
        via = [Rect(552, 552, 648, 648), Rect(300, 920, 364, 984)]
        analysis = analyze_metal_via(ml_clip(metal, via), oracle)
        assert analysis.missing_vias == 0  # the broken one is out of core
        assert not analysis.is_hotspot

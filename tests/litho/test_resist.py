"""Tests for the resist model and printed-component labeling."""

import numpy as np
import pytest

from repro.litho import ResistModel, print_image, printed_components


class TestResist:
    def test_threshold_develop(self):
        resist = ResistModel(threshold=0.5)
        intensity = np.array([[0.2, 0.5], [0.7, 0.49]])
        printed = resist.develop(intensity)
        np.testing.assert_array_equal(
            printed, [[False, True], [True, False]]
        )

    def test_bad_threshold_raises(self):
        with pytest.raises(ValueError):
            ResistModel(threshold=0.0)
        with pytest.raises(ValueError):
            ResistModel(threshold=2.5)

    def test_print_image_matches_develop(self):
        resist = ResistModel(threshold=0.3)
        intensity = np.random.default_rng(0).random((8, 8))
        np.testing.assert_array_equal(
            print_image(intensity, resist), resist.develop(intensity)
        )


class TestComponents:
    def test_two_separate_blobs(self):
        printed = np.zeros((10, 10), dtype=bool)
        printed[1:3, 1:3] = True
        printed[6:9, 6:9] = True
        labels, count = printed_components(printed)
        assert count == 2
        assert labels.max() == 2

    def test_diagonal_contact_not_connected(self):
        """4-connectivity: corner-touching blobs stay distinct."""
        printed = np.zeros((4, 4), dtype=bool)
        printed[0:2, 0:2] = True
        printed[2:4, 2:4] = True
        _, count = printed_components(printed)
        assert count == 2

    def test_edge_contact_connected(self):
        printed = np.zeros((4, 4), dtype=bool)
        printed[0:2, 0:2] = True
        printed[2:4, 0:2] = True
        _, count = printed_components(printed)
        assert count == 1

    def test_empty(self):
        _, count = printed_components(np.zeros((5, 5), dtype=bool))
        assert count == 0

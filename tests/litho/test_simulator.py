"""Tests for the LithoSimulator facade."""

import numpy as np
import pytest

from repro.geometry import Rect
from repro.litho import LithoSimulator

from ..conftest import clip_from_rects


@pytest.fixture(scope="module")
def sim():
    return LithoSimulator()


@pytest.fixture
def wire_clip():
    return clip_from_rects([Rect(96, 568, 1104, 632)])


class TestImaging:
    def test_image_shape(self, sim, wire_clip):
        image = sim.image(wire_clip)
        assert image.shape == (96, 96)

    def test_print_is_boolean(self, sim, wire_clip):
        printed = sim.print_clip(wire_clip)
        assert printed.dtype == bool

    def test_wire_prints_roughly_at_size(self, sim, wire_clip):
        printed = sim.print_clip(wire_clip)
        # design covers rows 44..52 (8 rows); the print should land close
        printed_rows = printed[:, 48].sum()
        assert 5 <= printed_rows <= 11

    def test_higher_dose_prints_superset(self, sim, wire_clip):
        low = sim.print_clip(wire_clip, dose=0.9)
        high = sim.print_clip(wire_clip, dose=1.1)
        assert (high | low == high).all()  # low-dose print is a subset

    def test_higher_dose_prints_more_on_marginal_gap(self, sim):
        """A 24nm tip gap gains printed pixels as dose rises (pre-bridge)."""
        clip = clip_from_rects(
            [Rect(96, 568, 588, 632), Rect(612, 568, 1104, 632)]
        )
        low = sim.print_clip(clip, dose=0.92).sum()
        high = sim.print_clip(clip, dose=1.08).sum()
        assert high > low

    def test_component_count(self, sim, grating_clip):
        from repro.geometry import merge_touching

        n_design = len(merge_touching(list(grating_clip.rects)))
        count = sim.printed_component_count(grating_clip)
        assert count == n_design  # every grating wire prints separately


class TestProcessWindow:
    def test_sweep_size(self, sim, wire_clip):
        sweep = sim.process_window(
            wire_clip, doses=(0.95, 1.0, 1.05), defocus_values_nm=(0.0, 30.0)
        )
        assert len(sweep) == 6
        for dose, defocus, printed in sweep:
            assert printed.dtype == bool

    def test_pv_band_nonempty_and_ring_shaped(self, sim, wire_clip):
        band = sim.pv_band(wire_clip)
        assert band.any(), "edges must move across the process window"
        nominal = sim.print_clip(wire_clip)
        # band pixels are disputed: not part of the always-printed core
        always = sim.print_clip(wire_clip, dose=0.9, defocus_nm=40.0)
        assert not (band & always & nominal).all()

    def test_pv_band_empty_for_empty_clip(self, sim, empty_clip):
        assert not sim.pv_band(empty_clip).any()

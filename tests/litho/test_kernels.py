"""Tests for the optical kernel model."""

import numpy as np
import pytest

from repro.litho import OpticalSystem
from repro.litho.kernels import gaussian_1d, kernel_radius_px


class TestOpticalSystem:
    def test_base_sigma_scales(self):
        a = OpticalSystem(wavelength_nm=193.0, numerical_aperture=1.35)
        b = OpticalSystem(wavelength_nm=193.0, numerical_aperture=0.9)
        assert b.base_sigma_nm > a.base_sigma_nm

    def test_invalid_params_raise(self):
        with pytest.raises(ValueError):
            OpticalSystem(wavelength_nm=-1)
        with pytest.raises(ValueError):
            OpticalSystem(numerical_aperture=0)
        with pytest.raises(ValueError):
            OpticalSystem(n_kernels=0)
        with pytest.raises(ValueError):
            OpticalSystem(kernel_spread=0.5)
        with pytest.raises(ValueError):
            OpticalSystem(kernel_decay=1.5)

    def test_kernel_stack_weights_sum_to_one(self):
        stack = OpticalSystem(n_kernels=4).kernel_stack()
        assert sum(w for w, _ in stack) == pytest.approx(1.0)
        assert len(stack) == 4

    def test_kernel_stack_decreasing_weights_increasing_sigma(self):
        stack = OpticalSystem(n_kernels=4).kernel_stack()
        weights = [w for w, _ in stack]
        sigmas = [s for _, s in stack]
        assert weights == sorted(weights, reverse=True)
        assert sigmas == sorted(sigmas)

    def test_defocus_broadens_every_kernel(self):
        optics = OpticalSystem()
        nominal = optics.kernel_stack(0.0)
        defocused = optics.kernel_stack(50.0)
        for (_, s0), (_, s1) in zip(nominal, defocused):
            assert s1 > s0

    def test_defocus_sign_symmetric(self):
        optics = OpticalSystem()
        assert optics.kernel_stack(40.0) == optics.kernel_stack(-40.0)


class TestGaussian:
    def test_normalized(self):
        taps = gaussian_1d(2.0, 8)
        assert taps.sum() == pytest.approx(1.0)
        assert len(taps) == 17

    def test_symmetric_peak_center(self):
        taps = gaussian_1d(3.0, 12)
        np.testing.assert_allclose(taps, taps[::-1])
        assert taps.argmax() == 12

    def test_bad_sigma_raises(self):
        with pytest.raises(ValueError):
            gaussian_1d(0.0, 4)

    def test_radius_covers_truncate_sigmas(self):
        assert kernel_radius_px(2.0, truncate=4.0) == 8
        assert kernel_radius_px(0.1) >= 1

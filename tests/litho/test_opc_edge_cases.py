"""Edge-case tests for the OPC rule engine."""

import pytest

from repro.geometry import Rect
from repro.litho import OPCRules, add_hammerheads, bias_isolated_wires, correct_clip

from ..conftest import clip_from_rects


class TestBiasEdgeCases:
    def test_empty_input(self):
        assert bias_isolated_wires([], OPCRules()) == []

    def test_square_biased_along_x(self):
        # width == height: the tie goes to the x axis
        out = bias_isolated_wires([Rect(0, 0, 64, 64)], OPCRules(iso_bias_nm=8))
        assert out[0].width == 80
        assert out[0].height == 64

    def test_pair_within_iso_space_untouched_even_if_far_in_one_axis(self):
        # vertically far but horizontally close: manhattan gap is small
        rects = [Rect(0, 0, 64, 1000), Rect(100, 0, 164, 1000)]
        out = bias_isolated_wires(rects, OPCRules(iso_space_nm=160))
        assert out == rects


class TestHammerheadEdgeCases:
    def test_empty_input(self):
        assert add_hammerheads([], OPCRules()) == []

    def test_square_gets_no_heads(self):
        # a square is not an elongated wire: no cap edges
        rects = [Rect(0, 0, 64, 64)]
        assert add_hammerheads(rects, OPCRules()) == rects

    def test_horizontal_wire_heads_on_both_ends(self):
        rects = [Rect(100, 0, 700, 64)]
        out = add_hammerheads(rects, OPCRules())
        heads = [r for r in out if r not in rects]
        assert len(heads) == 2
        assert any(h.x2 == 100 for h in heads)
        assert any(h.x1 == 700 for h in heads)

    def test_zero_extend_produces_no_empty_rects(self):
        rules = OPCRules(hammer_extend_nm=0, hammer_overhang_nm=16)
        out = add_hammerheads([Rect(0, 0, 64, 400)], rules)
        assert all(not r.empty() for r in out)


class TestCorrectClipEdgeCases:
    def test_empty_clip_passthrough(self, empty_clip):
        corrected = correct_clip(empty_clip)
        assert corrected.rects == ()
        assert corrected.window == empty_clip.window

    def test_idempotent_on_comfortable_grating(self, grating_clip):
        """Through-wires with dense neighbors: OPC changes nothing."""
        corrected = correct_clip(grating_clip)
        assert set(corrected.rects) == set(grating_clip.rects)

    def test_corrections_never_escape_window(self):
        # wire ending exactly at the window edge: head clipped back inside
        clip = clip_from_rects([Rect(568, 216, 632, 984)])  # full window height
        corrected = correct_clip(clip)
        for r in corrected.rects:
            assert clip.window.contains(r)

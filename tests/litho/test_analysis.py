"""Tests for defect analysis: bridges, opens, necks, spots, EPE."""

import numpy as np
import pytest

from repro.litho import (
    Defect,
    EdgeSite,
    design_components,
    find_bridges,
    find_epe_defects,
    find_necks,
    find_opens,
    find_spots,
    measure_epe,
)


def two_wires(h=32, w=32, gap_cols=(14, 18)):
    """Design with two vertical wires and the labels grid."""
    design = np.zeros((h, w))
    design[:, 8 : gap_cols[0]] = 1.0
    design[:, gap_cols[1] : 24] = 1.0
    labels, count = design_components(design)
    assert count == 2
    return design, labels


class TestDefect:
    def test_in_box(self):
        d = Defect("neck", row=5, col=7, severity=0.2)
        assert d.in_box(0, 0, 10, 10)
        assert not d.in_box(6, 0, 10, 10)
        assert not d.in_box(0, 0, 10, 7)


class TestBridges:
    def test_no_bridge_when_prints_separate(self):
        design, labels = two_wires()
        printed = design > 0.5
        assert find_bridges(labels, printed) == []

    def test_bridge_detected(self):
        design, labels = two_wires()
        printed = design > 0.5
        printed[15:17, 13:19] = True  # material crossing the gap
        defects = find_bridges(labels, printed)
        assert len(defects) == 1
        d = defects[0]
        assert d.kind == "bridge"
        assert 13 <= d.col <= 18 and 14 <= d.row <= 17

    def test_bridge_marker_at_gap_material(self):
        design, labels = two_wires()
        printed = design > 0.5
        printed[15:17, 14:18] = True
        d = find_bridges(labels, printed)[0]
        assert labels[d.row, d.col] == 0  # marker on bridge material


class TestOpens:
    def test_intact_wire_clean(self):
        design, labels = two_wires()
        assert find_opens(labels, design > 0.5) == []

    def test_vanished_wire(self):
        design, labels = two_wires()
        printed = design > 0.5
        printed[:, 8:14] = False  # left wire gone
        defects = find_opens(labels, printed)
        assert len(defects) == 1
        assert defects[0].kind == "open"

    def test_broken_wire(self):
        design, labels = two_wires()
        printed = design > 0.5
        printed[15:17, 8:14] = False  # cut through the left wire
        defects = find_opens(labels, printed)
        assert len(defects) == 1
        assert 15 <= defects[0].row <= 16


class TestNecks:
    def test_full_print_clean(self):
        design, labels = two_wires()
        assert find_necks(labels, design > 0.5, min_width_ratio=0.7) == []

    def test_thinned_region_flagged(self):
        design, labels = two_wires()
        printed = design > 0.5
        # thin the left wire (cols 8..13) down to 2 of 6 columns mid-span
        printed[14:18, 8:10] = False
        printed[14:18, 12:14] = False
        defects = find_necks(labels, printed, min_width_ratio=0.7)
        assert any(d.kind == "neck" for d in defects)

    def test_exclusion_mask_suppresses(self):
        design, labels = two_wires()
        printed = design > 0.5
        printed[14:18, 8:10] = False
        printed[14:18, 12:14] = False
        exclude = np.ones_like(printed, dtype=bool)
        assert find_necks(labels, printed, 0.7, exclude=exclude) == []

    def test_empty_design(self):
        labels = np.zeros((8, 8), dtype=np.int64)
        assert find_necks(labels, np.zeros((8, 8), dtype=bool)) == []


class TestSpots:
    def test_no_extra_printing(self):
        design, labels = two_wires()
        assert find_spots(labels, design > 0.5) == []

    def test_blob_in_clear_area(self):
        design, labels = two_wires()
        printed = design > 0.5
        printed[4:7, 27:30] = True  # floating blob far from any wire
        defects = find_spots(labels, printed, margin_px=1, min_area_px=2)
        assert len(defects) == 1
        assert defects[0].kind == "spot"
        assert defects[0].severity == 9.0

    def test_small_blob_below_area_ignored(self):
        design, labels = two_wires()
        printed = design > 0.5
        printed[5, 28] = True
        assert find_spots(labels, printed, margin_px=1, min_area_px=2) == []

    def test_edge_bulge_absorbed_by_margin(self):
        design, labels = two_wires()
        printed = design > 0.5
        printed[:, 7] = True  # 1-px bulge along the wire's left wall
        assert find_spots(labels, printed, margin_px=1, min_area_px=2) == []


class TestEPE:
    def _ramp_intensity(self, h=16, w=32, edge_col=16.0, slope=0.1):
        """Intensity ramping across columns, crossing 0.5 at edge_col."""
        cols = np.arange(w, dtype=float)
        row = 0.5 + slope * (edge_col - cols)
        return np.tile(row, (h, 1))

    def test_zero_epe_at_exact_edge(self):
        intensity = self._ramp_intensity(edge_col=16.0)
        sites = [EdgeSite(row=8.0, col=16.0, normal=(0.0, 1.0))]
        (epe,) = measure_epe(intensity, sites, threshold=0.5)
        assert epe == pytest.approx(0.0, abs=0.05)

    def test_positive_epe_when_print_bulges(self):
        intensity = self._ramp_intensity(edge_col=20.0)
        sites = [EdgeSite(row=8.0, col=16.0, normal=(0.0, 1.0))]
        (epe,) = measure_epe(intensity, sites, threshold=0.5)
        assert epe == pytest.approx(4.0, abs=0.1)

    def test_negative_epe_when_print_recedes(self):
        intensity = self._ramp_intensity(edge_col=12.0)
        sites = [EdgeSite(row=8.0, col=16.0, normal=(0.0, 1.0))]
        (epe,) = measure_epe(intensity, sites, threshold=0.5)
        assert epe == pytest.approx(-4.0, abs=0.1)

    def test_no_crossing_saturates(self):
        intensity = np.full((16, 32), 0.9)
        sites = [EdgeSite(row=8.0, col=16.0, normal=(0.0, 1.0))]
        (epe,) = measure_epe(intensity, sites, threshold=0.5, max_px=6.0)
        assert epe == 6.0
        intensity[:] = 0.1
        (epe,) = measure_epe(intensity, sites, threshold=0.5, max_px=6.0)
        assert epe == -6.0

    def test_epe_defects_respect_kind_limits(self):
        intensity = self._ramp_intensity(edge_col=12.0)  # -4 px everywhere
        sites = [
            EdgeSite(row=8.0, col=16.0, normal=(0.0, 1.0), kind="side"),
            EdgeSite(row=9.0, col=16.0, normal=(0.0, 1.0), kind="cap"),
        ]
        defects = find_epe_defects(
            intensity, sites, threshold=0.5, epe_limit_px=3.0, cap_limit_px=5.0
        )
        # side site violates its 3px limit; cap site tolerates 4px
        assert len(defects) == 1
        assert defects[0].row == 8

"""CLI smoke tests (in-process, no benchmark generation)."""

import numpy as np
import pytest

from repro.cli import main
from repro.geometry import Rect, save_clips

from .conftest import clip_from_rects


class TestList:
    def test_lists_detectors(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "svm-ccas" in out
        assert "cnn-dct" in out


class TestAnalyze:
    def test_analyze_clip_file(self, tmp_path, capsys):
        clips = [
            clip_from_rects([Rect(88 + i * 128, 96, 88 + i * 128 + 64, 1104) for i in range(8)], tag="grate"),
            clip_from_rects([Rect(504, 96, 568, 1104), Rect(608, 96, 672, 1104)], tag="close"),
        ]
        path = tmp_path / "clips.txt"
        save_clips(clips, path, labels=[0, 1])
        assert main(["analyze", str(path)]) == 0
        out = capsys.readouterr().out
        assert "grate: ok" in out
        assert "close: HOTSPOT" in out
        assert "1/2 hotspots" in out


class TestPattern:
    def test_renders_ascii(self, tmp_path, capsys):
        clip = clip_from_rects([Rect(96, 568, 1104, 632)], tag="wire")
        path = tmp_path / "clips.txt"
        save_clips([clip], path)
        assert main(["pattern", str(path), "--pixel", "48"]) == 0
        out = capsys.readouterr().out
        assert "#" in out and "." in out

    def test_bad_index(self, tmp_path, capsys):
        clip = clip_from_rects([Rect(96, 568, 1104, 632)])
        path = tmp_path / "clips.txt"
        save_clips([clip], path)
        assert main(["pattern", str(path), "--index", "5"]) == 2


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestTrainScore:
    def test_train_then_score(self, tmp_path, capsys):
        from .conftest import synthetic_labeled_clips

        rng = np.random.default_rng(0)
        clips, labels = synthetic_labeled_clips(rng, n=24)
        data = tmp_path / "train.txt"
        save_clips(clips, data, labels=labels.tolist())
        model = tmp_path / "model.npz"
        assert main(["train", str(data), "--out", str(model), "--epochs", "2"]) == 0
        assert model.exists()
        assert main(["score", str(model), str(data)]) == 0
        out = capsys.readouterr().out
        assert "flagged" in out

    def test_train_rejects_unlabeled(self, tmp_path):
        clip = clip_from_rects([Rect(96, 568, 1104, 632)])
        data = tmp_path / "u.txt"
        save_clips([clip], data)
        assert main(["train", str(data)]) == 2


class TestGenDataAndEvaluate:
    def test_gen_data_tiny(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert main(["gen-data", "--scale", "0.02", "--seed", "99"]) == 0
        out = capsys.readouterr().out
        assert "B1" in out and "B5" in out
        assert (tmp_path / "cache").exists()

    def test_evaluate_tiny(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert (
            main(
                [
                    "evaluate",
                    "--detectors",
                    "logistic-density,dtree-density",
                    "--benchmarks",
                    "B1",
                    "--scale",
                    "0.02",
                    "--seed",
                    "99",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "accuracy" in out
        assert "logistic-density" in out


class TestScanCommand:
    def test_scan_gdsii(self, tmp_path, capsys):
        from .conftest import synthetic_labeled_clips
        from repro.geometry import Layout, Polygon
        from repro.geometry.gdsii import write_gdsii

        # train a tiny model
        rng = np.random.default_rng(0)
        clips, labels = synthetic_labeled_clips(rng, n=24)
        data = tmp_path / "train.txt"
        save_clips(clips, data, labels=labels.tolist())
        model = tmp_path / "model.npz"
        assert main(["train", str(data), "--out", str(model), "--epochs", "2"]) == 0
        capsys.readouterr()

        # build a small GDSII layout: wires across a 2um block
        layout = Layout("block")
        layer = layout.layer("metal1")
        for i in range(15):
            layer.add(Polygon.rectangle(Rect(0, i * 144, 2304, i * 144 + 64)))
        gds = tmp_path / "block.gds"
        write_gdsii(layout, gds)

        assert main(["scan", str(model), str(gds), "--layer", "L1"]) == 0
        out = capsys.readouterr().out
        assert "windows" in out

    def test_scan_unknown_layer(self, tmp_path, capsys):
        from repro.geometry import Layout, Polygon
        from repro.geometry.gdsii import write_gdsii

        layout = Layout("block")
        layout.layer("m").add(Polygon.rectangle(Rect(0, 0, 2000, 64)))
        gds = tmp_path / "b.gds"
        write_gdsii(layout, gds)
        assert main(["scan", str(gds), str(gds), "--layer", "nope"]) == 2

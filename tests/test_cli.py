"""CLI smoke tests (in-process, no benchmark generation)."""

import numpy as np
import pytest

from repro.cli import main
from repro.geometry import Rect, save_clips

from .conftest import clip_from_rects


class TestList:
    def test_lists_detectors(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "svm-ccas" in out
        assert "cnn-dct" in out


class TestAnalyze:
    def test_analyze_clip_file(self, tmp_path, capsys):
        clips = [
            clip_from_rects([Rect(88 + i * 128, 96, 88 + i * 128 + 64, 1104) for i in range(8)], tag="grate"),
            clip_from_rects([Rect(504, 96, 568, 1104), Rect(608, 96, 672, 1104)], tag="close"),
        ]
        path = tmp_path / "clips.txt"
        save_clips(clips, path, labels=[0, 1])
        assert main(["analyze", str(path)]) == 0
        out = capsys.readouterr().out
        assert "grate: ok" in out
        assert "close: HOTSPOT" in out
        assert "1/2 hotspots" in out


class TestPattern:
    def test_renders_ascii(self, tmp_path, capsys):
        clip = clip_from_rects([Rect(96, 568, 1104, 632)], tag="wire")
        path = tmp_path / "clips.txt"
        save_clips([clip], path)
        assert main(["pattern", str(path), "--pixel", "48"]) == 0
        out = capsys.readouterr().out
        assert "#" in out and "." in out

    def test_bad_index(self, tmp_path, capsys):
        clip = clip_from_rects([Rect(96, 568, 1104, 632)])
        path = tmp_path / "clips.txt"
        save_clips([clip], path)
        assert main(["pattern", str(path), "--index", "5"]) == 2


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestTrainScore:
    def test_train_then_score(self, tmp_path, capsys):
        from .conftest import synthetic_labeled_clips

        rng = np.random.default_rng(0)
        clips, labels = synthetic_labeled_clips(rng, n=24)
        data = tmp_path / "train.txt"
        save_clips(clips, data, labels=labels.tolist())
        model = tmp_path / "model.npz"
        assert main(["train", str(data), "--out", str(model), "--epochs", "2"]) == 0
        assert model.exists()
        assert main(["score", str(model), str(data)]) == 0
        out = capsys.readouterr().out
        assert "flagged" in out

    def test_train_rejects_unlabeled(self, tmp_path):
        clip = clip_from_rects([Rect(96, 568, 1104, 632)])
        data = tmp_path / "u.txt"
        save_clips([clip], data)
        assert main(["train", str(data)]) == 2


class TestGenDataAndEvaluate:
    def test_gen_data_tiny(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert main(["gen-data", "--scale", "0.02", "--seed", "99"]) == 0
        out = capsys.readouterr().out
        assert "B1" in out and "B5" in out
        assert (tmp_path / "cache").exists()

    def test_evaluate_tiny(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert (
            main(
                [
                    "evaluate",
                    "--detectors",
                    "logistic-density,dtree-density",
                    "--benchmarks",
                    "B1",
                    "--scale",
                    "0.02",
                    "--seed",
                    "99",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "accuracy" in out
        assert "logistic-density" in out


class TestScanCommand:
    def test_scan_gdsii(self, tmp_path, capsys):
        from .conftest import synthetic_labeled_clips
        from repro.geometry import Layout, Polygon
        from repro.geometry.gdsii import write_gdsii

        # train a tiny model
        rng = np.random.default_rng(0)
        clips, labels = synthetic_labeled_clips(rng, n=24)
        data = tmp_path / "train.txt"
        save_clips(clips, data, labels=labels.tolist())
        model = tmp_path / "model.npz"
        assert main(["train", str(data), "--out", str(model), "--epochs", "2"]) == 0
        capsys.readouterr()

        # build a small GDSII layout: wires across a 2um block
        layout = Layout("block")
        layer = layout.layer("metal1")
        for i in range(15):
            layer.add(Polygon.rectangle(Rect(0, i * 144, 2304, i * 144 + 64)))
        gds = tmp_path / "block.gds"
        write_gdsii(layout, gds)

        assert main(["scan", str(model), str(gds), "--layer", "L1"]) == 0
        out = capsys.readouterr().out
        assert "windows" in out

    def test_scan_unknown_layer(self, tmp_path, capsys):
        from repro.geometry import Layout, Polygon
        from repro.geometry.gdsii import write_gdsii

        layout = Layout("block")
        layout.layer("m").add(Polygon.rectangle(Rect(0, 0, 2000, 64)))
        gds = tmp_path / "b.gds"
        write_gdsii(layout, gds)
        assert main(["scan", str(gds), str(gds), "--layer", "nope"]) == 2

    def test_scan_region_smaller_than_window_exits_2(self, tmp_path, capsys):
        """A bbox (after margin inset) below one window must not traceback."""
        from .conftest import synthetic_labeled_clips
        from repro.geometry import Layout, Polygon
        from repro.geometry.gdsii import write_gdsii

        rng = np.random.default_rng(0)
        clips, labels = synthetic_labeled_clips(rng, n=24)
        data = tmp_path / "train.txt"
        save_clips(clips, data, labels=labels.tolist())
        model = tmp_path / "model.npz"
        assert main(["train", str(data), "--out", str(model), "--epochs", "1"]) == 0
        capsys.readouterr()

        layout = Layout("tiny")
        layout.layer("L1").add(Polygon.rectangle(Rect(0, 0, 500, 500)))
        gds = tmp_path / "tiny.gds"
        write_gdsii(layout, gds)

        assert main(["scan", str(model), str(gds), "--layer", "L1"]) == 2
        err = capsys.readouterr().err
        assert "smaller than one" in err
        assert "nothing to scan" in err


class TestRenderHeat:
    def test_nan_cells_render_blank_not_cold(self):
        from repro.cli import _render_heat

        grid = np.array([[0.9, np.nan], [0.1, 0.3]])
        rows = _render_heat(grid, threshold=0.5)
        # top row first: grid[1] renders first
        assert rows == [".+", "# "]

    def test_threshold_marks_hash(self):
        from repro.cli import _render_heat

        rows = _render_heat(np.array([[0.5, 0.49]]), threshold=0.5)
        assert rows == ["#+"]


class TestScanChipCommand:
    def _write_block(self, tmp_path, name="block.gds"):
        from repro.geometry import Layout, Polygon
        from repro.geometry.gdsii import write_gdsii

        layout = Layout("block")
        layer = layout.layer("L1")
        for i in range(15):
            layer.add(Polygon.rectangle(Rect(0, i * 144, 2304, i * 144 + 64)))
        gds = tmp_path / name
        write_gdsii(layout, gds)
        return gds

    def test_requires_exactly_one_source(self, tmp_path, capsys):
        gds = self._write_block(tmp_path)
        assert main(["scan-chip", str(gds)]) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_registry_detector_scan(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        gds = self._write_block(tmp_path)
        cache = tmp_path / "scores"
        assert (
            main(
                [
                    "scan-chip",
                    str(gds),
                    "--detector",
                    "logistic-density",
                    "--cache-dir",
                    str(cache),
                    "--stats",
                    "--map",
                    "--scale",
                    "0.02",
                    "--seed",
                    "99",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "windows" in out
        assert "dedup" in out
        assert (cache / "scan-scores.json").exists()

    def test_set_overrides_threshold(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        gds = self._write_block(tmp_path)
        assert (
            main(
                [
                    "scan-chip",
                    str(gds),
                    "--detector",
                    "logistic-density",
                    "--set",
                    "threshold=0.999",
                    "--scale",
                    "0.02",
                    "--seed",
                    "99",
                ]
            )
            == 0
        )
        assert "windows" in capsys.readouterr().out

    def test_no_raster_plane_flag(self, tmp_path, capsys, monkeypatch):
        """--no-raster-plane forces the per-clip path; summaries agree."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        gds = self._write_block(tmp_path)
        base = [
            "scan-chip",
            str(gds),
            "--detector",
            "logistic-density",
            "--scale",
            "0.02",
            "--seed",
            "99",
        ]
        assert main(base) == 0
        auto = capsys.readouterr().out
        assert "[raster path]" in auto
        assert main(base + ["--no-raster-plane"]) == 0
        forced = capsys.readouterr().out
        assert "[clip path]" in forced
        # same windows and same flagged count either way
        assert auto.split("windows")[0] == forced.split("windows")[0]
        assert auto.split("flagged")[0] == forced.split("flagged")[0]

    def test_cache_dir_detector_mismatch_exits_2(
        self, tmp_path, capsys, monkeypatch
    ):
        """Reusing another detector's score cache must refuse cleanly."""
        from repro.runtime import ScoreCache

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        gds = self._write_block(tmp_path)
        cache_dir = tmp_path / "scores"
        cache_dir.mkdir()
        stale = ScoreCache(detector_tag="someone-else")
        stale.put("fp", 0.5)
        stale.save(ScoreCache.dir_path(cache_dir))
        assert (
            main(
                [
                    "scan-chip",
                    str(gds),
                    "--detector",
                    "logistic-density",
                    "--cache-dir",
                    str(cache_dir),
                    "--scale",
                    "0.02",
                    "--seed",
                    "99",
                ]
            )
            == 2
        )
        assert "refusing" in capsys.readouterr().err

    def test_bad_override_syntax_exits_2(self, tmp_path, capsys):
        gds = self._write_block(tmp_path)
        assert (
            main(
                ["scan-chip", str(gds), "--detector", "x", "--set", "oops"]
            )
            == 2
        )
        assert "key=value" in capsys.readouterr().err


class TestScanChipSharding:
    """--shards / --shard-workers / --manifest-out / --rescan-from."""

    def _write_block(self, tmp_path):
        from repro.geometry import Layout, Polygon
        from repro.geometry.gdsii import write_gdsii

        layout = Layout("block")
        layer = layout.layer("L1")
        for i in range(15):
            layer.add(Polygon.rectangle(Rect(0, i * 144, 2304, i * 144 + 64)))
        gds = tmp_path / "block.gds"
        write_gdsii(layout, gds)
        return gds

    def _scan(self, tmp_path, monkeypatch, report, extra):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        argv = [
            "scan-chip",
            str(self._write_block(tmp_path)),
            "--detector",
            "logistic-density",
            "--seed",
            "99",
            "--report-json",
            str(report),
        ] + extra
        return main(argv)

    def test_sharded_cli_scan_is_byte_identical(
        self, tmp_path, capsys, monkeypatch
    ):
        from repro.service import canonical_report_json

        mono = tmp_path / "mono.json"
        assert self._scan(tmp_path, monkeypatch, mono, []) == 0
        sharded = tmp_path / "sharded.json"
        assert (
            self._scan(
                tmp_path,
                monkeypatch,
                sharded,
                ["--shards", "4", "--shard-workers", "2"],
            )
            == 0
        )
        assert canonical_report_json(
            sharded.read_text().strip()
        ) == canonical_report_json(mono.read_text().strip())

    def test_rescan_from_manifest_round_trips(
        self, tmp_path, capsys, monkeypatch
    ):
        from repro.service import canonical_report_json

        manifest = tmp_path / "chip.npz"
        first = tmp_path / "first.json"
        assert (
            self._scan(
                tmp_path,
                monkeypatch,
                first,
                ["--shards", "4", "--manifest-out", str(manifest)],
            )
            == 0
        )
        assert manifest.exists()
        second = tmp_path / "second.json"
        assert (
            self._scan(
                tmp_path,
                monkeypatch,
                second,
                ["--shards", "4", "--rescan-from", str(manifest)],
            )
            == 0
        )
        assert canonical_report_json(
            second.read_text().strip()
        ) == canonical_report_json(first.read_text().strip())

    def test_missing_rescan_manifest_exits_2(
        self, tmp_path, capsys, monkeypatch
    ):
        report = tmp_path / "r.json"
        code = self._scan(
            tmp_path,
            monkeypatch,
            report,
            ["--shards", "4", "--rescan-from", str(tmp_path / "nope.npz")],
        )
        assert code == 2
        assert "no chip manifest" in capsys.readouterr().err


class TestScanChipObservability:
    """End-to-end: --trace-dir / --metrics-out / --progress / --report-json."""

    def _scan(self, tmp_path, capsys, monkeypatch, extra):
        import json

        from repro.geometry import Layout, Polygon
        from repro.geometry.gdsii import write_gdsii

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        layout = Layout("block")
        layer = layout.layer("L1")
        for i in range(15):
            layer.add(Polygon.rectangle(Rect(0, i * 144, 2304, i * 144 + 64)))
        gds = tmp_path / "block.gds"
        write_gdsii(layout, gds)
        argv = [
            "scan-chip",
            str(gds),
            "--detector",
            "logistic-density",
            "--scale",
            "0.02",
            "--seed",
            "99",
        ] + extra
        assert main(argv) == 0
        captured = capsys.readouterr()
        return json, captured

    def test_trace_and_metrics_artifacts(
        self, tmp_path, capsys, monkeypatch
    ):
        json, captured = self._scan(
            tmp_path,
            capsys,
            monkeypatch,
            [
                "--trace-dir",
                str(tmp_path / "trace"),
                "--metrics-out",
                str(tmp_path / "metrics"),
                "--progress",
            ],
        )
        # JSONL trace parses line by line and is bracketed correctly
        trace_lines = (
            (tmp_path / "trace" / "scan-trace.jsonl")
            .read_text()
            .splitlines()
        )
        records = [json.loads(line) for line in trace_lines]
        assert records[0]["ev"] == "trace_start"
        assert records[-1]["ev"] == "trace_end"
        assert any(r["ev"] == "span_open" for r in records)
        # metrics snapshot: valid JSON + Prometheus exposition
        snapshot = json.loads((tmp_path / "metrics.json").read_text())
        assert snapshot["counters"]["fault_worker_crash"] == 0
        prom = (tmp_path / "metrics.prom").read_text()
        assert prom.startswith("# HELP repro_scan_info")
        assert 'repro_scan_events_total{event="pool_retries"} 0' in prom
        # progress heartbeats landed on stderr
        assert "windows" in captured.err

    def test_report_json_round_trips(self, tmp_path, capsys, monkeypatch):
        from repro.runtime import ScanReport

        json, _captured = self._scan(
            tmp_path,
            capsys,
            monkeypatch,
            ["--report-json", str(tmp_path / "report.json")],
        )
        document = (tmp_path / "report.json").read_text().strip()
        report = ScanReport.from_json(document)
        assert report.to_json() == document
        assert report.n_windows > 0

    def test_stats_prints_structured_snapshot(
        self, tmp_path, capsys, monkeypatch
    ):
        json, captured = self._scan(
            tmp_path, capsys, monkeypatch, ["--stats"]
        )
        out = captured.out
        snapshot = json.loads(out[out.index("{") :])
        assert snapshot["schema"] == 1
        assert "fault_worker_crash" in snapshot["counters"]
        assert list(snapshot["counters"]) == sorted(snapshot["counters"])

"""Tests for table formatting."""

from repro.bench import format_table, write_table


class TestFormatTable:
    def test_basic_markdown(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}]
        text = format_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "### demo"
        assert "| a " in lines[2]
        assert any("22" in line for line in lines)

    def test_explicit_columns_subset_and_order(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = format_table(rows, columns=["c", "a"])
        header = text.splitlines()[0]
        assert header.index("c") < header.index("a")
        assert "b" not in header

    def test_none_rendered_empty(self):
        text = format_table([{"a": None}])
        assert "None" not in text

    def test_empty_rows(self):
        assert "no rows" in format_table([], title="t")

    def test_alignment_consistent(self):
        rows = [{"name": "x", "v": 1}, {"name": "longer", "v": 100}]
        lines = format_table(rows).splitlines()
        assert len({len(line) for line in lines if line.startswith("|")}) == 1


class TestWriteTable:
    def test_writes_file(self, tmp_path):
        path = tmp_path / "out" / "t.md"
        text = write_table([{"a": 1}], path, title="T")
        assert path.read_text() == text
        assert "### T" in text

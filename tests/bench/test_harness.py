"""Tests for the bench harness (run matrix + pivots)."""

import pytest

from repro.bench import pivot_metric, results_to_rows, run_matrix
from repro.data import Benchmark

from ..core.test_detector_api import ConstantDetector


@pytest.fixture
def suite(tiny_dataset, rng):
    train, test = tiny_dataset.split(0.5, rng)
    return [Benchmark(name=f"B{i}", train=train, test=test) for i in (1, 2)]


class TestRunMatrix:
    def test_full_matrix(self, suite):
        factories = {
            "always": lambda: ConstantDetector(1.0),
            "never": lambda: ConstantDetector(0.0),
        }
        results = run_matrix(factories, suite)
        assert len(results) == 4
        pairs = {(r.detector, r.benchmark) for r in results}
        assert pairs == {
            ("constant", "B1"),
            ("constant", "B2"),
        } or len(pairs) <= 4  # detector name comes from the instance

    def test_rows(self, suite):
        results = run_matrix({"d": lambda: ConstantDetector(1.0)}, suite)
        rows = results_to_rows(results)
        assert len(rows) == 2
        assert rows[0]["accuracy"] == 100.0


class TestPivot:
    def test_pivot_accuracy(self, suite):
        results = run_matrix({"d": lambda: ConstantDetector(1.0)}, suite)
        table = pivot_metric(results, metric="accuracy")
        assert len(table) == 1
        row = table[0]
        assert row["B1"] == "100.0"
        assert row["B2"] == "100.0"

    def test_pivot_false_alarms(self, suite):
        results = run_matrix({"d": lambda: ConstantDetector(1.0)}, suite)
        table = pivot_metric(results, metric="false_alarms", fmt="{:d}")
        assert int(table[0]["B1"]) == suite[0].test.n_non_hotspots

    def test_pivot_unformatted(self, suite):
        results = run_matrix({"d": lambda: ConstantDetector(0.0)}, suite)
        table = pivot_metric(results, metric="odst_seconds", fmt=None)
        assert isinstance(table[0]["B1"], float)

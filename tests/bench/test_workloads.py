"""Tests for bench workload configuration and caching."""

import pytest

from repro.bench import bench_scale, cache_dir, get_benchmark, get_suite, results_dir


class TestEnvConfig:
    def test_default_scale(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale() == pytest.approx(0.35)

    def test_scale_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.07")
        assert bench_scale() == pytest.approx(0.07)

    def test_cache_dir_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert cache_dir() == tmp_path

    def test_results_dir_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        assert results_dir() == tmp_path

    def test_default_dirs_inside_repo(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.delenv("REPRO_RESULTS_DIR", raising=False)
        assert cache_dir().name == ".bench_cache"
        assert results_dir().parent.name == "benchmarks"


class TestSuiteAccess:
    def test_get_suite_and_benchmark(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        suite = get_suite(scale=0.02, seed=123)
        assert [b.name for b in suite] == ["B1", "B2", "B3", "B4", "B5"]
        b3 = get_benchmark("B3", scale=0.02)
        assert b3.name == "B3"

    def test_get_benchmark_unknown(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        with pytest.raises(KeyError):
            get_benchmark("B9", scale=0.02)

    def test_cache_reused(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        get_suite(scale=0.02, seed=123)
        files_before = sorted(p.name for p in tmp_path.iterdir())
        get_suite(scale=0.02, seed=123)  # second call hits the cache
        files_after = sorted(p.name for p in tmp_path.iterdir())
        assert files_before == files_after
        assert files_before  # something was cached

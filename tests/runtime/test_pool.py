"""Tests for the scoring worker pool and detector state shipping.

The ``workers=2`` cases use real library detectors (not test doubles):
the ``spawn`` start method re-imports modules in the child, so shipped
detectors must come from importable modules.
"""

import numpy as np
import pytest

from repro.core.detector import detector_from_state, detector_to_state
from repro.runtime import WorkerPool
from repro.shallow import make_logistic_density

from .conftest import DensityDetector, tiny_grating_dataset


def _fitted_logistic():
    det = make_logistic_density()
    det.fit(tiny_grating_dataset(), rng=np.random.default_rng(1))
    return det


class TestDetectorState:
    def test_round_trip_preserves_scores(self):
        det = _fitted_logistic()
        clips = tiny_grating_dataset(n=8, seed=3).clips
        clone = detector_from_state(detector_to_state(det))
        assert np.array_equal(
            det.predict_proba(clips), clone.predict_proba(clips)
        )
        assert clone.threshold == det.threshold

    def test_non_detector_state_rejected(self):
        with pytest.raises(TypeError):
            detector_from_state(detector_to_state({"not": "a detector"}))

    def test_method_form(self):
        det = DensityDetector()
        clone = type(det).from_state(det.to_state())
        assert clone.cutoff == det.cutoff


class TestInProcess:
    def test_single_worker_scores_in_order(self):
        det = DensityDetector(0.3)
        clips = tiny_grating_dataset(n=12, seed=5).clips
        pool = WorkerPool(det, workers=1)
        scores = pool.score(clips, chunk_clips=5)
        assert np.array_equal(scores, det.predict_proba(clips))

    def test_empty_clip_list(self):
        scores = WorkerPool(DensityDetector(), workers=1).score([])
        assert scores.shape == (0,)

    def test_bad_workers(self):
        with pytest.raises(ValueError):
            WorkerPool(DensityDetector(), workers=0)

    def test_map_scores_streams_lazily(self):
        """The in-process path must pull chunks one at a time."""
        det = DensityDetector(0.3)
        clips = tiny_grating_dataset(n=6, seed=5).clips
        pulled = []

        def chunks():
            for i in range(0, len(clips), 2):
                pulled.append(i)
                yield clips[i : i + 2]

        it = WorkerPool(det, workers=1).map_scores(chunks())
        next(it)
        assert pulled == [0]  # only the first chunk was materialized


class TestMultiprocess:
    def test_spawn_pool_byte_identical(self):
        """workers=2 must reproduce workers=1 scores exactly."""
        det = _fitted_logistic()
        clips = tiny_grating_dataset(n=10, seed=7).clips
        sequential = WorkerPool(det, workers=1).score(clips, chunk_clips=3)
        with WorkerPool(det, workers=2) as pool:
            parallel = pool.score(clips, chunk_clips=3)
        assert sequential.tobytes() == parallel.tobytes()


class TestLifecycle:
    def test_interrupted_map_scores_leaks_no_children(self):
        """Abandoning the result iterator mid-scan must not leak workers."""
        import multiprocessing

        det = _fitted_logistic()
        clips = tiny_grating_dataset(n=12, seed=5).clips
        chunks = [clips[i : i + 3] for i in range(0, 12, 3)]
        with WorkerPool(det, workers=2) as pool:
            gen = pool.map_scores(iter(chunks))
            next(gen)  # consume one chunk, walk away from the rest
        assert pool._pool is None
        assert multiprocessing.active_children() == []

    def test_exit_with_exception_terminates(self):
        import multiprocessing

        det = _fitted_logistic()
        clips = tiny_grating_dataset(n=6, seed=5).clips
        with pytest.raises(RuntimeError, match="boom"):
            with WorkerPool(det, workers=2) as pool:
                next(pool.map_scores(iter([clips])))
                raise RuntimeError("boom")
        assert pool._pool is None
        assert multiprocessing.active_children() == []

    def test_close_without_use_is_noop(self):
        pool = WorkerPool(DensityDetector(), workers=2)
        pool.close()
        pool.terminate()
        assert pool._pool is None

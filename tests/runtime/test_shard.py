"""Shard planning, deterministic merge, and the scan_chip front door."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.contracts import ContractViolation
from repro.geometry import (
    Layer,
    Layout,
    Rect,
    clip_fingerprint,
    region_fingerprint,
)
from repro.runtime import (
    EngineConfig,
    FaultInjector,
    ScanEngine,
    ScanReport,
    ShardPlan,
    ShardPlanner,
    ShardRunner,
    merge_reports,
    scan_chip,
)
from repro.service import canonical_report_json

from .conftest import DensityDetector, GradedDensityDetector


def canonical(report: ScanReport) -> str:
    return canonical_report_json(report.to_json())


def mono_scan(detector, layer, region, **scan_kwargs) -> ScanReport:
    """The monolithic reference: one engine, one region."""
    return ScanEngine(detector).scan(
        layer, region, keep_clips=False, **scan_kwargs
    )


# ----------------------------------------------------------------------
# planner invariants
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shards", [1, 2, 3, 4, 6, 9])
def test_owned_ranges_partition_the_grid(region, shards):
    plan = ShardPlanner(shards).plan(region)
    owned = np.zeros((plan.ny, plan.nx), dtype=int)
    for spec in plan.shards:
        owned[spec.own_y[0] : spec.own_y[1], spec.own_x[0] : spec.own_x[1]] += 1
    assert (owned == 1).all(), "every window must have exactly one owner"
    assert sum(s.n_owned for s in plan.shards) == plan.n_windows


@pytest.mark.parametrize("shards", [2, 4, 6])
def test_scan_ranges_extend_owned_by_the_halo(region, shards):
    plan = ShardPlanner(shards).plan(region, window_nm=768, core_nm=256)
    assert plan.halo_nm == 768  # default halo: the full window extent
    halo_c = -(-plan.halo_nm // plan.step_nm)
    for spec in plan.shards:
        assert spec.scan_x == (
            max(0, spec.own_x[0] - halo_c),
            min(plan.nx, spec.own_x[1] + halo_c),
        )
        assert spec.scan_y == (
            max(0, spec.own_y[0] - halo_c),
            min(plan.ny, spec.own_y[1] + halo_c),
        )
        assert spec.n_windows == spec.scan_w * spec.scan_h


def test_shard_regions_enumerate_exactly_the_scanned_centers(region):
    plan = ShardPlanner(4).plan(region)
    for spec in plan.shards:
        centers = plan.shard_centers(spec)
        assert len(centers) == spec.n_windows
        half = plan.window_nm // 2
        assert centers[0] == (
            spec.region.x1 + half,
            spec.region.y1 + half,
        )
        assert centers[-1] == (
            spec.region.x2 - plan.window_nm + half,
            spec.region.y2 - plan.window_nm + half,
        )


def test_explicit_grid_overrides_shard_count(region):
    plan = ShardPlanner(2, grid=(1, 3)).plan(region)
    assert plan.grid == (1, 3)
    assert len(plan.shards) == 3


def test_snap_aligns_shard_boundaries(region):
    plan = ShardPlanner(4, snap_nm=1024).plan(region, step_nm=256)
    snap_ix = 1024 // 256
    for spec in plan.shards:
        for bound in (*spec.own_x, *spec.own_y):
            assert bound % snap_ix == 0 or bound in (plan.nx, plan.ny)


def test_aggressive_snap_shrinks_the_plan_not_empty_shards(region):
    # snapping every boundary to the far edge collapses the split
    plan = ShardPlanner(4, snap_nm=4096).plan(region, step_nm=256)
    assert 1 <= len(plan.shards) <= 4
    for spec in plan.shards:
        assert spec.n_owned > 0


def test_planner_rejects_bad_parameters(region):
    with pytest.raises(ValueError, match="shards must be"):
        ShardPlanner(0)
    with pytest.raises(ValueError, match="grid dimensions"):
        ShardPlanner(1, grid=(0, 2))
    with pytest.raises(ValueError, match="halo_nm"):
        ShardPlanner(1, halo_nm=-1)
    with pytest.raises(ValueError, match="snap_nm"):
        ShardPlanner(1, snap_nm=0)
    with pytest.raises(ValueError, match="multiple of the"):
        ShardPlanner(2, snap_nm=1000).plan(region, step_nm=256)
    with pytest.raises(ValueError, match="too small for the clip window"):
        ShardPlanner(2).plan(Rect(0, 0, 512, 512), window_nm=768)


# ----------------------------------------------------------------------
# plan wire format + digest
# ----------------------------------------------------------------------
def test_plan_json_round_trip_is_lossless(region):
    plan = ShardPlanner(6, snap_nm=512).plan(region, window_nm=768)
    back = ShardPlan.from_json(plan.to_json())
    assert back == plan
    assert back.digest == plan.digest
    assert [s.region for s in back.shards] == [s.region for s in plan.shards]


def test_plan_digest_is_stable_and_content_addressed(region):
    a = ShardPlanner(4).plan(region)
    b = ShardPlanner(4).plan(region)
    assert a.digest == b.digest
    c = ShardPlanner(4).plan(Rect(0, 0, 3840, 4096))
    assert c.digest != a.digest


def test_plan_refuses_unknown_schema(region):
    doc = ShardPlanner(2).plan(region).to_json().replace(
        '"schema": 1', '"schema": 99'
    )
    with pytest.raises(ValueError, match="unsupported ShardPlan schema"):
        ShardPlan.from_json(doc)


# ----------------------------------------------------------------------
# sharded == monolithic, byte for byte
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shards", [1, 4, 6])
@pytest.mark.parametrize("shard_workers", [1, 3])
def test_sharded_scan_merges_byte_identical(layer, region, shards, shard_workers):
    detector = GradedDensityDetector()
    mono = canonical(mono_scan(detector, layer, region))
    config = EngineConfig.from_kwargs(
        shards=shards, shard_workers=shard_workers
    )
    sharded = scan_chip(layer, detector, config, region=region)
    assert canonical(sharded) == mono
    if shards > 1:
        assert sharded.plan_digest
        assert sharded.telemetry.counter("shard_scans") > 0


class DensityOracle:
    """Deterministic ground-truth labeler (the oracle protocol is .label)."""

    def label(self, clip) -> int:
        return int(clip.density() > 0.3)


def test_sharded_scan_with_oracle_matches_monolithic(layer, region):
    detector = GradedDensityDetector()
    mono = canonical(
        mono_scan(detector, layer, region, oracle=DensityOracle())
    )
    config = EngineConfig.from_kwargs(shards=4)
    sharded = scan_chip(
        layer, detector, config, region=region, oracle=DensityOracle()
    )
    assert sharded.confirmed is not None
    assert canonical(sharded) == mono


def test_merged_report_recovers_flagged_window_geometry(layer, region):
    detector = GradedDensityDetector()
    mono = mono_scan(detector, layer, region)
    sharded = scan_chip(
        layer, detector, EngineConfig.from_kwargs(shards=4), region=region
    )
    assert len(sharded.flagged_windows) == len(mono.flagged_windows)
    for ours, theirs in zip(sharded.flagged_windows, mono.flagged_windows):
        assert clip_fingerprint(ours) == clip_fingerprint(theirs)


# ----------------------------------------------------------------------
# merge validation
# ----------------------------------------------------------------------
def _shard_reports(detector, layer, plan):
    reports = []
    for spec in plan.shards:
        rep = ScanEngine(detector).scan(
            layer,
            spec.region,
            window_nm=plan.window_nm,
            core_nm=plan.core_nm,
            step_nm=plan.step_nm,
            keep_clips=False,
        )
        rep.shard_id = spec.shard_id
        rep.plan_digest = plan.digest
        reports.append(rep)
    return reports


def test_merge_rejects_misaligned_reports(layer, region):
    detector = GradedDensityDetector()
    plan = ShardPlanner(4).plan(region)
    reports = _shard_reports(detector, layer, plan)

    with pytest.raises(ValueError, match="reports were supplied"):
        merge_reports(plan, reports[:-1])

    swapped = [reports[1], reports[0], *reports[2:]]
    with pytest.raises(ValueError, match="carries shard_id"):
        merge_reports(plan, swapped)

    # same grid geometry, different plan content (core_nm) -> new digest
    other = ShardPlanner(4).plan(region, core_nm=512, step_nm=256)
    assert other.digest != plan.digest
    with pytest.raises(ValueError, match="was scanned under plan"):
        merge_reports(other, reports)


def test_merge_rejects_mixed_verification(layer, region):
    detector = GradedDensityDetector()
    plan = ShardPlanner(4).plan(region)
    reports = _shard_reports(detector, layer, plan)
    reports[2].confirmed = np.ones(
        int(np.count_nonzero(reports[2].flagged)), dtype=bool
    )
    with pytest.raises(ValueError, match="mix verified and unverified"):
        merge_reports(plan, reports)


# ----------------------------------------------------------------------
# crash-resume
# ----------------------------------------------------------------------
def test_killed_shard_resumes_to_byte_identical_report(layer, region, tmp_path):
    detector = GradedDensityDetector()
    mono = canonical(mono_scan(detector, layer, region))

    def config():
        return EngineConfig.from_kwargs(
            shards=4,
            shard_workers=1,
            dedup=False,
            chunk_clips=64,
            checkpoint_dir=tmp_path / "ckpt",
            on_invalid_score="raise",
        )

    # one injector shared across shard engines: opportunities count
    # globally, so the crash lands mid-run after shard 0 completed
    injector = FaultInjector("nan_score@2")
    with pytest.raises(ContractViolation):
        scan_chip(
            layer, detector, config(), region=region, faults=injector
        )
    persisted = list((tmp_path / "ckpt").glob("shard-*.report.json"))
    assert persisted, "completed shards must persist their reports"

    resumed = scan_chip(layer, detector, config(), region=region, resume=True)
    assert canonical(resumed) == mono
    assert resumed.telemetry.counter("shard_resumed") >= 1
    # the merge succeeded: per-shard reports are cleaned up
    assert not list((tmp_path / "ckpt").glob("shard-*.report.json"))


# ----------------------------------------------------------------------
# instance-level dedup
# ----------------------------------------------------------------------
def _array_layer(nx: int = 3, ny: int = 3, pitch: int = 2048) -> Layer:
    """An nx x ny array of identical 2048 nm cells."""
    from repro.data.layouts import replicate_block

    cell = Layer("metal1")
    cell.add_rects(
        [Rect(64, k * 256 + 32, 1984, k * 256 + 128) for k in range(8)]
    )
    return replicate_block(
        cell, Rect(0, 0, pitch, pitch), nx, ny, pitch_x=pitch, pitch_y=pitch
    )


def test_instance_dedup_scans_congruent_shards_once():
    layer = _array_layer()
    region = Rect(0, 0, 3 * 2048, 3 * 2048)
    detector = GradedDensityDetector()
    mono = canonical(mono_scan(detector, layer, region))

    config = EngineConfig.from_kwargs(shards=9, snap_nm=2048, halo_nm=0)
    deduped = scan_chip(layer, detector, config, region=region)
    assert canonical(deduped) == mono
    tele = deduped.telemetry
    # 2048-snapped boundaries land on the cell pitch: one canonical
    # shard per congruence class (fingerprint x scan shape), the rest
    # replayed
    n_scans = tele.counter("shard_scans")
    n_replays = tele.counter("shard_replays")
    assert n_scans + n_replays == 9
    assert n_replays > 0 and n_scans < 9
    assert tele.counter("shard_windows_replayed") > 0

    off = EngineConfig.from_kwargs(
        shards=9, snap_nm=2048, halo_nm=0, instance_dedup=False
    )
    plain = scan_chip(layer, detector, off, region=region)
    assert canonical(plain) == mono
    assert plain.telemetry.counter("shard_scans") == 9
    assert plain.telemetry.counter("shard_replays") == 0


def test_dedup_keys_on_fingerprint_and_shape():
    layer = _array_layer()
    region = Rect(0, 0, 3 * 2048, 3 * 2048)
    plan = ShardPlanner(9, snap_nm=2048, halo_nm=0).plan(region)
    fps = [region_fingerprint(layer, s.region) for s in plan.shards]
    by_shape = {}
    for spec, fp in zip(plan.shards, fps):
        by_shape.setdefault((spec.scan_w, spec.scan_h), set()).add(fp)
    # same scan shape over periodic content -> congruent placements
    # fingerprint equal (one class per shape)
    assert all(len(v) == 1 for v in by_shape.values())
    assert len(by_shape) < 9

    edited = _array_layer()
    edited.add_rects([Rect(2100, 2200, 2300, 2400)])  # dirty one cell
    fps2 = [region_fingerprint(edited, s.region) for s in plan.shards]
    changed = [i for i, (a, b) in enumerate(zip(fps, fps2)) if a != b]
    assert changed, "the edited cell's shards must re-fingerprint"
    assert len(changed) < 9, "untouched placements keep their fingerprint"


# ----------------------------------------------------------------------
# incremental re-scan
# ----------------------------------------------------------------------
def test_rescan_replays_unchanged_shards_and_rescores_the_cone(
    layer, region, tmp_path
):
    detector = GradedDensityDetector()
    manifest = tmp_path / "chip-manifest.npz"

    first = scan_chip(
        layer,
        detector,
        EngineConfig.from_kwargs(shards=4, manifest=manifest),
        region=region,
    )
    assert manifest.exists()

    # no edit: every shard replays from the manifest
    replayed = scan_chip(
        layer,
        detector,
        EngineConfig.from_kwargs(shards=4, rescan_from=manifest),
        region=region,
    )
    assert canonical(replayed) == canonical(first)
    tele = replayed.telemetry
    assert tele.counter("rescan_shards_reused") == 4
    plan = ShardPlanner(4).plan(region)
    assert tele.counter("rescan_windows_reused") == sum(
        s.n_windows for s in plan.shards
    )
    assert tele.counter("shard_scans") == 0

    # edit one corner: only the shards whose fingerprint cone covers it
    # are re-scored
    edited = Layer("metal1")
    for poly in layer.polygons:
        edited.add(poly)
    edited.add_rects([Rect(64, 72, 512, 120)])
    mono_edited = canonical(mono_scan(detector, edited, region))
    rescanned = scan_chip(
        edited,
        detector,
        EngineConfig.from_kwargs(shards=4, rescan_from=manifest),
        region=region,
    )
    assert canonical(rescanned) == mono_edited
    tele = rescanned.telemetry
    assert tele.counter("rescan_shards_rescored") >= 1
    assert tele.counter("rescan_shards_reused") >= 1
    assert (
        tele.counter("rescan_shards_reused")
        + tele.counter("rescan_shards_rescored")
        == 4
    )


def test_rescan_refuses_mismatched_manifest(layer, region, tmp_path):
    detector = GradedDensityDetector()
    manifest = tmp_path / "chip-manifest.npz"
    scan_chip(
        layer,
        detector,
        EngineConfig.from_kwargs(shards=4, manifest=manifest),
        region=region,
    )
    with pytest.raises(ValueError, match="re-plan with the same"):
        scan_chip(
            layer,
            detector,
            EngineConfig.from_kwargs(shards=2, rescan_from=manifest),
            region=region,
        )
    with pytest.raises(ValueError, match="was scored by"):
        scan_chip(
            layer,
            DensityDetector(),
            EngineConfig.from_kwargs(shards=4, rescan_from=manifest),
            region=region,
        )
    with pytest.raises(FileNotFoundError):
        scan_chip(
            layer,
            detector,
            EngineConfig.from_kwargs(
                shards=4, rescan_from=tmp_path / "nope.npz"
            ),
            region=region,
        )


# ----------------------------------------------------------------------
# report schema 2: shard provenance
# ----------------------------------------------------------------------
def test_shard_reports_round_trip_byte_identically(layer, region):
    import json

    detector = GradedDensityDetector()
    plan = ShardPlanner(4).plan(region)
    rep = _shard_reports(detector, layer, plan)[1]
    assert rep.shard_id == 1
    assert rep.plan_digest == plan.digest

    document = rep.to_json()
    assert json.loads(document)["schema"] == 2
    back = ScanReport.from_json(document)
    assert back.shard_id == 1
    assert back.plan_digest == plan.digest
    assert back.to_json() == document  # byte-identical re-serialization


def test_schema_1_reports_migrate_forward(layer, region):
    import json

    detector = GradedDensityDetector()
    rep = mono_scan(detector, layer, region)
    payload = json.loads(rep.to_json())
    payload["schema"] = 1
    del payload["shard_id"]
    del payload["plan_digest"]
    migrated = ScanReport.from_json(json.dumps(payload))
    assert migrated.shard_id is None
    assert migrated.plan_digest is None
    # re-serializes as a valid schema-2 document with null provenance
    assert json.loads(migrated.to_json())["schema"] == 2
    assert np.array_equal(migrated.scores, rep.scores)


def test_newer_report_schema_is_refused(layer, region):
    import json

    rep = mono_scan(GradedDensityDetector(), layer, region)
    payload = json.loads(rep.to_json())
    payload["schema"] = 3
    with pytest.raises(ValueError, match="unsupported ScanReport schema"):
        ScanReport.from_json(json.dumps(payload))


# ----------------------------------------------------------------------
# the scan_chip front door
# ----------------------------------------------------------------------
def test_scan_chip_accepts_layouts_and_selects_layers(layer, region):
    detector = GradedDensityDetector()
    mono = canonical(mono_scan(detector, layer, region))

    layout = Layout("chip", layers={"metal1": layer})
    assert canonical(scan_chip(layout, detector, region=region)) == mono

    other = Layer("metal2")
    other.add_rects([Rect(0, 0, 4096, 64)])
    layout.layers["metal2"] = other
    with pytest.raises(ValueError, match="pass layer="):
        scan_chip(layout, detector, region=region)
    got = scan_chip(layout, detector, layer="metal1", region=region)
    assert canonical(got) == mono
    with pytest.raises(ValueError, match="has no layer"):
        scan_chip(layout, detector, layer="poly", region=region)
    with pytest.raises(TypeError, match="bare Layer"):
        scan_chip(layer, detector, layer="metal1", region=region)
    with pytest.raises(TypeError, match="must be a Layer or Layout"):
        scan_chip(object(), detector, region=region)


def test_scan_chip_defaults_region_to_the_layer_bbox(layer):
    detector = GradedDensityDetector()
    explicit = scan_chip(layer, detector, region=layer.bbox)
    implicit = scan_chip(layer, detector)
    assert canonical(implicit) == canonical(explicit)


def test_scan_chip_legacy_kwargs_warn_and_match_config(layer, region):
    detector = GradedDensityDetector()
    config = EngineConfig.from_kwargs(shards=4, shard_workers=2)
    want = canonical(scan_chip(layer, detector, config, region=region))
    with pytest.warns(DeprecationWarning, match="shards"):
        got = scan_chip(
            layer, detector, region=region, shards=4, shard_workers=2
        )
    assert canonical(got) == want
    with pytest.raises(TypeError, match="not both"):
        scan_chip(layer, detector, config, region=region, shards=4)

"""Tests for the staged cascade detector."""

import numpy as np
import pytest

from repro.core.detector import Detector, FitReport
from repro.runtime import CascadeDetector
from repro.shallow import ExactPatternMatcher, make_logistic_density

from .conftest import GradedDensityDetector, tiny_grating_dataset


class ConstantDetector(Detector):  # lint: disable=raster-parity  (test double)
    """Scores every clip the same (stage stub)."""

    name = "const"

    def __init__(self, score: float, threshold: float = 0.5) -> None:
        self.score = score
        self.threshold = threshold

    def fit(self, train, rng=None) -> FitReport:
        self.fitted = True
        return FitReport(n_train=len(train))

    def predict_proba(self, clips):
        return np.full(len(clips), self.score)


class TestStageResolution:
    def test_matcher_short_circuits_known_patterns(self):
        train = tiny_grating_dataset(n=24, seed=0)
        matcher = ExactPatternMatcher()
        matcher.fit(train)
        primary = GradedDensityDetector()
        cascade = CascadeDetector(primary=primary, matcher=matcher)
        hot_clips = [
            train.clips[int(i)] for i in train.hotspot_indices()
        ]
        scores = cascade.predict_proba(hot_clips)
        # exact repeats of library hotspots resolve hot without the primary
        assert (scores >= cascade.threshold).all()
        assert cascade.stats.matched_hot == len(hot_clips)
        assert cascade.stats.primary_scored == 0

    def test_prefilter_resolves_cold_below_cutoff(self):
        clips = tiny_grating_dataset(n=8, seed=2).clips
        prefilter = ConstantDetector(0.01)
        primary = ConstantDetector(0.9)
        cascade = CascadeDetector(
            primary=primary, prefilter=prefilter, filter_cutoff=0.05
        )
        scores = cascade.predict_proba(clips)
        assert cascade.stats.filtered_cold == len(clips)
        assert cascade.stats.primary_scored == 0
        # resolved-cold windows can never be flagged
        assert (scores < cascade.threshold).all()

    def test_primary_scores_the_rest(self):
        clips = tiny_grating_dataset(n=6, seed=3).clips
        cascade = CascadeDetector(
            primary=ConstantDetector(0.8),
            prefilter=ConstantDetector(0.4),  # above cutoff: resolves nothing
        )
        scores = cascade.predict_proba(clips)
        assert cascade.stats.primary_scored == len(clips)
        assert scores == pytest.approx(np.full(len(clips), 0.8))

    def test_stats_accumulate_and_reset(self):
        clips = tiny_grating_dataset(n=4, seed=4).clips
        cascade = CascadeDetector(primary=ConstantDetector(0.8))
        cascade.predict_proba(clips)
        cascade.predict_proba(clips)
        assert cascade.stats.windows == 2 * len(clips)
        cascade.reset_stats()
        assert cascade.stats.windows == 0

    def test_empty_input(self):
        cascade = CascadeDetector(primary=ConstantDetector(0.8))
        assert cascade.predict_proba([]).shape == (0,)


class TestFlagConsistency:
    def test_cascade_never_unflags_matcher_hot(self):
        """Matched windows are flagged even if the match score is low."""
        train = tiny_grating_dataset(n=24, seed=0)
        matcher = ExactPatternMatcher()
        matcher.threshold = 0.5
        matcher.fit(train)
        primary = ConstantDetector(0.0, threshold=0.9)
        cascade = CascadeDetector(primary=primary, matcher=matcher)
        hot = [train.clips[int(i)] for i in train.hotspot_indices()]
        scores = cascade.predict_proba(hot)
        assert (scores >= cascade.threshold).all()

    def test_filter_cutoff_clamped_below_threshold(self):
        """A huge filter_cutoff cannot silently flag-starve the scan."""
        clips = tiny_grating_dataset(n=4, seed=5).clips
        cascade = CascadeDetector(
            primary=ConstantDetector(0.9, threshold=0.2),
            prefilter=ConstantDetector(0.15),
            filter_cutoff=0.5,  # would exceed threshold 0.2 without clamping
        )
        scores = cascade.predict_proba(clips)
        # 0.15 >= clamp(0.5 -> 0.1), so nothing resolves cold
        assert cascade.stats.filtered_cold == 0
        assert (scores >= cascade.threshold).all()

    def test_bad_cutoff_rejected(self):
        with pytest.raises(ValueError):
            CascadeDetector(primary=ConstantDetector(0.5), filter_cutoff=1.0)


class TestFitAndVerify:
    def test_fit_fits_all_stages(self):
        train = tiny_grating_dataset(n=24, seed=0)
        matcher = ExactPatternMatcher()
        prefilter = make_logistic_density()
        primary = ConstantDetector(0.9)
        cascade = CascadeDetector(
            primary=primary, matcher=matcher, prefilter=prefilter
        )
        report = cascade.fit(train, rng=np.random.default_rng(0))
        assert report.n_train == len(train)
        assert primary.fitted
        assert "matcher" in report.notes and "prefilter" in report.notes

    def test_fit_primary_false_skips_primary(self):
        train = tiny_grating_dataset(n=24, seed=0)
        primary = ConstantDetector(0.9)
        cascade = CascadeDetector(primary=primary, fit_primary=False)
        cascade.fit(train, rng=np.random.default_rng(0))
        assert not hasattr(primary, "fitted")

    def test_verify_flagged_counts(self):
        class YesOracle:
            def label(self, clip):
                return 1

        clips = tiny_grating_dataset(n=5, seed=6).clips
        cascade = CascadeDetector(
            primary=ConstantDetector(0.9), verifier=YesOracle()
        )
        confirmed = cascade.verify_flagged(clips)
        assert confirmed.all()
        assert cascade.stats.verified == 5
        assert cascade.stats.verified_hot == 5

    def test_verify_without_verifier_raises(self):
        cascade = CascadeDetector(primary=ConstantDetector(0.9))
        with pytest.raises(RuntimeError):
            cascade.verify_flagged([])


# --------------------------------------------------------------------------
# EPIC-style cutoff auto-tuning
# --------------------------------------------------------------------------
class ScriptedDetector(Detector):  # lint: disable=raster-parity  (test double)
    """Returns a pre-scripted score per clip, in call order."""

    name = "scripted"

    def __init__(self, scores, threshold=0.5):
        self.scores = np.asarray(scores, dtype=np.float64)
        self.threshold = threshold

    def fit(self, train, rng=None) -> FitReport:
        return FitReport(n_train=len(train))

    def predict_proba(self, clips):
        return self.scores[: len(clips)]


def _calibration(scores, labels):
    from repro.data.dataset import ClipDataset

    clips = tiny_grating_dataset(n=len(scores), seed=1).clips
    return ClipDataset(
        name="cal", clips=clips, labels=np.asarray(labels, dtype=np.int64)
    )


class TestTuneCascade:
    def test_cutoff_is_min_hot_score_when_unclamped(self):
        from repro.runtime import CascadeDetector, tune_cascade

        scores = [0.05, 0.10, 0.30, 0.40, 0.80]
        cal = _calibration(scores, [0, 0, 0, 1, 1])
        cascade = CascadeDetector(
            primary=ConstantDetector(0.9, threshold=0.9),
            prefilter=ScriptedDetector(scores),
        )
        tuning = tune_cascade(cascade, cal)
        # clamp is 0.45 > min hot score 0.40: the hot windows bind
        assert tuning.filter_cutoff == pytest.approx(0.40)
        assert not tuning.clamped
        assert tuning.min_hot_score == pytest.approx(0.40)
        # strict < keeps the 0.40 hot window out of the cold bucket
        assert tuning.skip_rate == pytest.approx(3 / 5)
        assert tuning.n_hot == 2

    def test_cutoff_clamped_by_runtime_threshold_rule(self):
        from repro.runtime import CascadeDetector, tune_cascade

        scores = [0.05, 0.10, 0.30, 0.40, 0.80]
        cal = _calibration(scores, [0, 0, 0, 1, 1])
        cascade = CascadeDetector(
            primary=ConstantDetector(0.9, threshold=0.5),
            prefilter=ScriptedDetector(scores),
        )
        tuning = tune_cascade(cascade, cal)
        # predict-time rule is min(cutoff, 0.5*threshold): tuning must
        # not promise skips the live cascade would refuse
        assert tuning.filter_cutoff == pytest.approx(0.25)
        assert tuning.clamped

    def test_sweep_rows_zero_missed_up_to_chosen_cutoff(self):
        from repro.runtime import CascadeDetector, tune_cascade

        rng = np.random.default_rng(7)
        scores = rng.uniform(size=40)
        labels = (scores > 0.35).astype(int)
        cal = _calibration(scores, labels)
        cascade = CascadeDetector(
            primary=ConstantDetector(0.9, threshold=0.6),
            prefilter=ScriptedDetector(scores),
        )
        tuning = tune_cascade(cascade, cal)
        assert any(c == tuning.filter_cutoff for c, _, _ in tuning.sweep)
        for cutoff, skip_rate, missed in tuning.sweep:
            if cutoff <= tuning.filter_cutoff:
                assert missed == 0
            assert 0.0 <= skip_rate <= 1.0

    def test_no_hot_windows_falls_back_to_clamp(self):
        from repro.runtime import CascadeDetector, tune_cascade

        scores = [0.1, 0.2, 0.3]
        cal = _calibration(scores, [0, 0, 0])
        cascade = CascadeDetector(
            primary=ConstantDetector(0.9, threshold=0.5),
            prefilter=ScriptedDetector(scores),
        )
        tuning = tune_cascade(cascade, cal)
        assert tuning.n_hot == 0
        assert tuning.min_hot_score == float("inf")
        assert tuning.filter_cutoff == pytest.approx(0.25)

    def test_requires_prefilter_and_calibration(self):
        from repro.data.dataset import ClipDataset
        from repro.runtime import CascadeDetector, tune_cascade

        cascade = CascadeDetector(primary=ConstantDetector(0.9))
        cal = _calibration([0.1], [0])
        with pytest.raises(ValueError, match="prefilter"):
            tune_cascade(cascade, cal)
        cascade = CascadeDetector(
            primary=ConstantDetector(0.9),
            prefilter=ScriptedDetector([0.1]),
        )
        empty = ClipDataset(
            name="e", clips=[], labels=np.zeros(0, dtype=np.int64)
        )
        with pytest.raises(ValueError, match="empty"):
            tune_cascade(cascade, empty)


class TestTuningPersistence:
    def _tuning(self):
        from repro.runtime import CascadeDetector, tune_cascade

        scores = [0.05, 0.4, 0.8]
        cal = _calibration(scores, [0, 1, 1])
        cascade = CascadeDetector(
            primary=ConstantDetector(0.9, threshold=0.9),
            prefilter=ScriptedDetector(scores),
        )
        return cascade, tune_cascade(cascade, cal)

    def test_json_round_trip(self, tmp_path):
        from repro.runtime import CascadeTuning

        cascade, tuning = self._tuning()
        path = tuning.save(tmp_path / "tuning.json")
        assert CascadeTuning.load(path) == tuning

    def test_degenerate_tuning_round_trips_as_strict_json(self, tmp_path):
        """No-hot-window tunings (min_hot_score=inf) must persist as null.

        ``json.dumps`` would happily emit a bare ``Infinity`` token, which
        strict JSON parsers (jq, browsers) reject — the saved file must
        stay consumable outside Python.
        """
        import json

        from repro.runtime import CascadeDetector, CascadeTuning, tune_cascade

        scores = [0.05, 0.4, 0.8]
        cal = _calibration(scores, [0, 0, 0])  # no hot windows
        cascade = CascadeDetector(
            primary=ConstantDetector(0.9, threshold=0.9),
            prefilter=ScriptedDetector(scores),
        )
        tuning = tune_cascade(cascade, cal)
        assert tuning.min_hot_score == float("inf")
        path = tuning.save(tmp_path / "tuning.json")
        assert "Infinity" not in path.read_text()
        assert json.loads(path.read_text())["min_hot_score"] is None
        assert CascadeTuning.load(path) == tuning

    def test_unknown_schema_rejected(self, tmp_path):
        import json

        from repro.runtime import CascadeTuning

        _, tuning = self._tuning()
        path = tuning.save(tmp_path / "tuning.json")
        payload = json.loads(path.read_text())
        payload["schema"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="schema"):
            CascadeTuning.load(path)

    def test_apply_tuning_sets_cutoff(self):
        cascade, tuning = self._tuning()
        cascade.apply_tuning(tuning)
        assert cascade.filter_cutoff == tuning.filter_cutoff

    def test_apply_tuning_rejects_threshold_mismatch(self):
        import dataclasses

        cascade, tuning = self._tuning()
        stale = dataclasses.replace(tuning, threshold=0.123)
        with pytest.raises(ValueError, match="threshold"):
            cascade.apply_tuning(stale)

    def test_summary_names_the_binding_constraint(self):
        _, tuning = self._tuning()
        assert "0 of 2 hotspots missed" in tuning.summary()

"""Tests for the staged cascade detector."""

import numpy as np
import pytest

from repro.core.detector import Detector, FitReport
from repro.runtime import CascadeDetector
from repro.shallow import ExactPatternMatcher, make_logistic_density

from .conftest import GradedDensityDetector, tiny_grating_dataset


class ConstantDetector(Detector):  # lint: disable=raster-parity  (test double)
    """Scores every clip the same (stage stub)."""

    name = "const"

    def __init__(self, score: float, threshold: float = 0.5) -> None:
        self.score = score
        self.threshold = threshold

    def fit(self, train, rng=None) -> FitReport:
        self.fitted = True
        return FitReport(n_train=len(train))

    def predict_proba(self, clips):
        return np.full(len(clips), self.score)


class TestStageResolution:
    def test_matcher_short_circuits_known_patterns(self):
        train = tiny_grating_dataset(n=24, seed=0)
        matcher = ExactPatternMatcher()
        matcher.fit(train)
        primary = GradedDensityDetector()
        cascade = CascadeDetector(primary=primary, matcher=matcher)
        hot_clips = [
            train.clips[int(i)] for i in train.hotspot_indices()
        ]
        scores = cascade.predict_proba(hot_clips)
        # exact repeats of library hotspots resolve hot without the primary
        assert (scores >= cascade.threshold).all()
        assert cascade.stats.matched_hot == len(hot_clips)
        assert cascade.stats.primary_scored == 0

    def test_prefilter_resolves_cold_below_cutoff(self):
        clips = tiny_grating_dataset(n=8, seed=2).clips
        prefilter = ConstantDetector(0.01)
        primary = ConstantDetector(0.9)
        cascade = CascadeDetector(
            primary=primary, prefilter=prefilter, filter_cutoff=0.05
        )
        scores = cascade.predict_proba(clips)
        assert cascade.stats.filtered_cold == len(clips)
        assert cascade.stats.primary_scored == 0
        # resolved-cold windows can never be flagged
        assert (scores < cascade.threshold).all()

    def test_primary_scores_the_rest(self):
        clips = tiny_grating_dataset(n=6, seed=3).clips
        cascade = CascadeDetector(
            primary=ConstantDetector(0.8),
            prefilter=ConstantDetector(0.4),  # above cutoff: resolves nothing
        )
        scores = cascade.predict_proba(clips)
        assert cascade.stats.primary_scored == len(clips)
        assert scores == pytest.approx(np.full(len(clips), 0.8))

    def test_stats_accumulate_and_reset(self):
        clips = tiny_grating_dataset(n=4, seed=4).clips
        cascade = CascadeDetector(primary=ConstantDetector(0.8))
        cascade.predict_proba(clips)
        cascade.predict_proba(clips)
        assert cascade.stats.windows == 2 * len(clips)
        cascade.reset_stats()
        assert cascade.stats.windows == 0

    def test_empty_input(self):
        cascade = CascadeDetector(primary=ConstantDetector(0.8))
        assert cascade.predict_proba([]).shape == (0,)


class TestFlagConsistency:
    def test_cascade_never_unflags_matcher_hot(self):
        """Matched windows are flagged even if the match score is low."""
        train = tiny_grating_dataset(n=24, seed=0)
        matcher = ExactPatternMatcher()
        matcher.threshold = 0.5
        matcher.fit(train)
        primary = ConstantDetector(0.0, threshold=0.9)
        cascade = CascadeDetector(primary=primary, matcher=matcher)
        hot = [train.clips[int(i)] for i in train.hotspot_indices()]
        scores = cascade.predict_proba(hot)
        assert (scores >= cascade.threshold).all()

    def test_filter_cutoff_clamped_below_threshold(self):
        """A huge filter_cutoff cannot silently flag-starve the scan."""
        clips = tiny_grating_dataset(n=4, seed=5).clips
        cascade = CascadeDetector(
            primary=ConstantDetector(0.9, threshold=0.2),
            prefilter=ConstantDetector(0.15),
            filter_cutoff=0.5,  # would exceed threshold 0.2 without clamping
        )
        scores = cascade.predict_proba(clips)
        # 0.15 >= clamp(0.5 -> 0.1), so nothing resolves cold
        assert cascade.stats.filtered_cold == 0
        assert (scores >= cascade.threshold).all()

    def test_bad_cutoff_rejected(self):
        with pytest.raises(ValueError):
            CascadeDetector(primary=ConstantDetector(0.5), filter_cutoff=1.0)


class TestFitAndVerify:
    def test_fit_fits_all_stages(self):
        train = tiny_grating_dataset(n=24, seed=0)
        matcher = ExactPatternMatcher()
        prefilter = make_logistic_density()
        primary = ConstantDetector(0.9)
        cascade = CascadeDetector(
            primary=primary, matcher=matcher, prefilter=prefilter
        )
        report = cascade.fit(train, rng=np.random.default_rng(0))
        assert report.n_train == len(train)
        assert primary.fitted
        assert "matcher" in report.notes and "prefilter" in report.notes

    def test_fit_primary_false_skips_primary(self):
        train = tiny_grating_dataset(n=24, seed=0)
        primary = ConstantDetector(0.9)
        cascade = CascadeDetector(primary=primary, fit_primary=False)
        cascade.fit(train, rng=np.random.default_rng(0))
        assert not hasattr(primary, "fitted")

    def test_verify_flagged_counts(self):
        class YesOracle:
            def label(self, clip):
                return 1

        clips = tiny_grating_dataset(n=5, seed=6).clips
        cascade = CascadeDetector(
            primary=ConstantDetector(0.9), verifier=YesOracle()
        )
        confirmed = cascade.verify_flagged(clips)
        assert confirmed.all()
        assert cascade.stats.verified == 5
        assert cascade.stats.verified_hot == 5

    def test_verify_without_verifier_raises(self):
        cascade = CascadeDetector(primary=ConstantDetector(0.9))
        with pytest.raises(RuntimeError):
            cascade.verify_flagged([])

"""Shared fixtures for the scan-runtime tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.detector import Detector, FitReport
from repro.data.dataset import ClipDataset
from repro.geometry import Layer, Rect, extract_clip


class DensityDetector(Detector):  # lint: disable=raster-parity  (test double)
    """Flags clips whose metal density exceeds a cutoff (test double)."""

    name = "density-cutoff"
    threshold = 0.5

    def __init__(self, cutoff: float = 0.3) -> None:
        self.cutoff = cutoff

    def fit(self, train, rng=None) -> FitReport:
        return FitReport()

    def predict_proba(self, clips):
        return np.array(
            [1.0 if c.density() > self.cutoff else 0.0 for c in clips]
        )


class GradedDensityDetector(Detector):  # lint: disable=raster-parity  (test double)
    """Continuous density score in [0, 1] (for threshold-sensitive tests)."""

    name = "density-graded"
    threshold = 0.5

    def fit(self, train, rng=None) -> FitReport:
        return FitReport()

    def predict_proba(self, clips):
        return np.clip([4.0 * c.density() for c in clips], 0.0, 1.0)


@pytest.fixture
def layer() -> Layer:
    """Sparse wires everywhere, one dense block in the lower-left."""
    layer = Layer("metal1")
    rects = []
    for i in range(30):
        rects.append(Rect(0, i * 256, 4096, i * 256 + 64))
    for i in range(8):
        rects.append(Rect(0, i * 256 + 128, 1500, i * 256 + 192))
    layer.add_rects(rects)
    return layer


@pytest.fixture
def region() -> Rect:
    return Rect(0, 0, 4096, 4096)


def tiny_grating_dataset(n: int = 24, seed: int = 0) -> ClipDataset:
    """Dense gratings are hot, sparse ones are not — a separable toy task."""
    rng = np.random.default_rng(seed)
    clips, labels = [], []
    for i in range(n):
        hot = bool(rng.integers(2))
        pitch = 64 + (48 if hot else 128)
        layer = Layer("metal1")
        layer.add_rects(
            [
                Rect(100 + k * pitch, 100, 164 + k * pitch, 1100)
                for k in range(10)
            ]
        )
        clips.append(extract_clip(layer, (600, 600), 768, 256, tag=f"g{i}"))
        labels.append(int(hot))
    return ClipDataset(name="tiny", clips=clips, labels=np.array(labels))

"""Metrics snapshots: stable shape, baseline counters, Prometheus exposition."""

import json
import re

from repro.runtime import (
    METRICS_SCHEMA,
    EngineConfig,
    ScanEngine,
    export_metrics,
    format_snapshot,
    metrics_snapshot,
    to_prometheus,
)
from repro.runtime.metrics import (  # lint: disable=no-deep-runtime-import  (BASELINE_COUNTERS is test-only surface)
    BASELINE_COUNTERS,
)

from .conftest import GradedDensityDetector

# one Prometheus text-exposition sample line:  name{labels} value
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})?'
    r" -?[0-9].*$"
)


def small_report(layer, region):
    return ScanEngine(GradedDensityDetector()).scan(layer, region)


class TestSnapshot:
    def test_baseline_counters_always_present(self, layer, region):
        snapshot = metrics_snapshot(small_report(layer, region))
        counters = snapshot["counters"]
        for name in BASELINE_COUNTERS:
            assert name in counters
        # a clean run still exposes the full fault/supervision families
        assert counters["fault_worker_crash"] == 0
        assert counters["pool_rebuilds"] == 0
        assert counters["windows"] > 0

    def test_schema_and_scan_block(self, layer, region):
        report = small_report(layer, region)
        snapshot = metrics_snapshot(report)
        assert snapshot["schema"] == METRICS_SCHEMA
        scan = snapshot["scan"]
        assert scan["n_windows"] == report.n_windows
        assert scan["n_scored"] == report.n_scored
        assert 0.0 <= scan["dedup_ratio"] <= 1.0
        assert scan["scan_path"] in ("clip", "raster")

    def test_cascade_stats_block(self, layer, region):
        from repro.runtime import CascadeDetector

        detector = CascadeDetector(primary=GradedDensityDetector())
        report = ScanEngine(detector).scan(layer, region)
        snapshot = metrics_snapshot(report)
        assert snapshot["cascade"] == report.cascade_stats.as_dict()
        assert snapshot["cascade"]["windows"] == report.n_scored
        json.dumps(snapshot)  # the whole snapshot stays serializable

    def test_format_is_stable_and_sorted(self, layer, region):
        snapshot = metrics_snapshot(small_report(layer, region))
        text = format_snapshot(snapshot)
        assert text == format_snapshot(json.loads(text))
        assert text.endswith("\n")
        parsed = json.loads(text)
        assert list(parsed) == sorted(parsed)
        assert list(parsed["counters"]) == sorted(parsed["counters"])


class TestPrometheus:
    def test_every_sample_line_is_well_formed(self, layer, region):
        text = to_prometheus(metrics_snapshot(small_report(layer, region)))
        assert text.endswith("\n")
        for line in text.splitlines():
            if line.startswith("#"):
                assert re.match(r"^# (HELP|TYPE) repro_scan_\w+ .+$", line)
            else:
                assert _SAMPLE_RE.match(line), line

    def test_families_have_help_and_type(self, layer, region):
        text = to_prometheus(metrics_snapshot(small_report(layer, region)))
        assert "# TYPE repro_scan_events_total counter" in text
        assert "# TYPE repro_scan_windows_total gauge" in text
        assert 'repro_scan_events_total{event="fault_worker_crash"} 0' in text

    def test_counter_labels_sorted(self, layer, region):
        text = to_prometheus(metrics_snapshot(small_report(layer, region)))
        events = re.findall(r'repro_scan_events_total\{event="([^"]+)"\}', text)
        assert events == sorted(events)

    def test_label_escaping(self):
        snapshot = {
            "schema": METRICS_SCHEMA,
            "scan": {
                "scan_path": 'cl"ip\\x',
                "n_windows": 1,
                "n_scored": 1,
                "n_flagged": 0,
                "cache_hits": 0,
                "dedup_ratio": 0.0,
                "elapsed_s": 1.0,
                "windows_per_s": 1.0,
            },
            "counters": {},
            "timers": {},
            "histograms": {},
            "cascade": {},
        }
        text = to_prometheus(snapshot)
        assert 'scan_path="cl\\"ip\\\\x"' in text


class TestExport:
    def test_writes_json_and_prom(self, layer, region, tmp_path):
        report = small_report(layer, region)
        json_path, prom_path = export_metrics(report, tmp_path / "out" / "m")
        assert json_path.name == "m.json" and prom_path.name == "m.prom"
        parsed = json.loads(json_path.read_text())
        assert parsed["schema"] == METRICS_SCHEMA
        assert prom_path.read_text().startswith("# HELP repro_scan_info")

    def test_engine_metrics_config_exports(self, layer, region, tmp_path):
        config = EngineConfig.from_kwargs(metrics=tmp_path / "scan")
        report = ScanEngine(GradedDensityDetector(), config=config).scan(
            layer, region
        )
        parsed = json.loads((tmp_path / "scan.json").read_text())
        assert parsed["scan"]["n_windows"] == report.n_windows
        assert (tmp_path / "scan.prom").exists()

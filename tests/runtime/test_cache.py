"""Tests for the content-hash score cache and clip fingerprinting."""

import numpy as np
import pytest

from repro.geometry import Layer, Rect, clip_fingerprint, extract_clip
from repro.runtime import ScoreCache


def _grating_layer(origin_x: int = 0, origin_y: int = 0) -> Layer:
    layer = Layer("metal1")
    layer.add_rects(
        [
            Rect(origin_x + k * 128, origin_y, origin_x + k * 128 + 64, origin_y + 2000)
            for k in range(20)
        ]
    )
    return layer


class TestClipFingerprint:
    def test_translation_invariant(self):
        """Same local geometry at different chip positions hashes equal."""
        a = extract_clip(_grating_layer(), (640, 1000), 768, 256)
        b = extract_clip(_grating_layer(4096, 8192), (4096 + 640, 8192 + 1000), 768, 256)
        assert clip_fingerprint(a) == clip_fingerprint(b)

    def test_geometry_sensitive(self):
        a = extract_clip(_grating_layer(), (640, 1000), 768, 256)
        shifted = extract_clip(_grating_layer(), (672, 1000), 768, 256)
        assert clip_fingerprint(a) != clip_fingerprint(shifted)

    def test_window_size_sensitive(self):
        a = extract_clip(_grating_layer(), (640, 1000), 768, 256)
        b = extract_clip(_grating_layer(), (640, 1000), 512, 256)
        assert clip_fingerprint(a) != clip_fingerprint(b)

    def test_rect_order_irrelevant(self):
        """Fingerprints canonicalize rect ordering."""
        window = Rect(0, 0, 768, 768)
        core = Rect.from_center(384, 384, 256, 256)
        from repro.geometry import Clip

        r1, r2 = Rect(0, 0, 64, 768), Rect(128, 0, 192, 768)
        a = Clip(window=window, core=core, rects=(r1, r2))
        b = Clip(window=window, core=core, rects=(r2, r1))
        assert clip_fingerprint(a) == clip_fingerprint(b)

    def test_stable_across_runs(self):
        """BLAKE2-based, so the value is process-independent (snapshot)."""
        clip = extract_clip(_grating_layer(), (640, 1000), 768, 256)
        assert clip_fingerprint(clip) == clip_fingerprint(clip)
        assert len(clip_fingerprint(clip)) == 32  # 128-bit hex


class TestScoreCache:
    def test_get_put_and_counters(self):
        cache = ScoreCache()
        assert cache.get("fp1") is None
        cache.put("fp1", 0.7)
        assert cache.get("fp1") == pytest.approx(0.7)
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_ratio == pytest.approx(0.5)

    def test_lru_eviction_order(self):
        cache = ScoreCache(max_entries=2)
        cache.put("a", 0.1)
        cache.put("b", 0.2)
        cache.get("a")  # refresh a; b is now oldest
        cache.put("c", 0.3)
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.evictions == 1

    def test_put_existing_updates(self):
        cache = ScoreCache(max_entries=2)
        cache.put("a", 0.1)
        cache.put("a", 0.9)
        assert len(cache) == 1
        assert cache.get("a") == pytest.approx(0.9)

    def test_bad_max_entries(self):
        with pytest.raises(ValueError):
            ScoreCache(max_entries=0)


class TestPersistence:
    @pytest.mark.parametrize("name", ["cache.json", "cache.npz"])
    def test_round_trip(self, tmp_path, name):
        cache = ScoreCache(detector_tag="cnn-dct")
        cache.put("fp1", 0.25)
        cache.put("fp2", 0.75)
        path = cache.save(tmp_path / name)
        loaded = ScoreCache.load(path, detector_tag="cnn-dct")
        assert loaded.get("fp1") == pytest.approx(0.25)
        assert loaded.get("fp2") == pytest.approx(0.75)
        assert loaded.detector_tag == "cnn-dct"

    def test_detector_tag_mismatch_rejected(self, tmp_path):
        cache = ScoreCache(detector_tag="cnn-dct")
        cache.put("fp", 0.5)
        path = cache.save(tmp_path / "cache.json")
        with pytest.raises(ValueError):
            ScoreCache.load(path, detector_tag="svm-ccas")

    def test_open_dir_empty_then_warm(self, tmp_path):
        cache = ScoreCache.open_dir(tmp_path, detector_tag="d")
        assert len(cache) == 0
        cache.put("fp", 0.5)
        cache.save(ScoreCache.dir_path(tmp_path))
        warm = ScoreCache.open_dir(tmp_path, detector_tag="d")
        assert warm.get("fp") == pytest.approx(0.5)


class TestHardening:
    """Schema/checksum verification, quarantine, and atomic persistence."""

    def _saved(self, tmp_path, name="cache.json", n=3):
        cache = ScoreCache(detector_tag="d")
        for i in range(n):
            cache.put(f"fp{i}", i / 10.0)
        return cache.save(tmp_path / name)

    @pytest.mark.parametrize("name", ["cache.json", "cache.npz"])
    def test_truncated_file_raises_integrity_error(self, tmp_path, name):
        from repro.runtime import CacheIntegrityError

        path = self._saved(tmp_path, name)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        with pytest.raises(CacheIntegrityError):
            ScoreCache.load(path, detector_tag="d")

    def test_tampered_score_fails_checksum(self, tmp_path):
        import json

        from repro.runtime import CacheIntegrityError

        path = self._saved(tmp_path)
        payload = json.loads(path.read_text())
        payload["scores"]["fp0"] = 0.9
        path.write_text(json.dumps(payload))
        with pytest.raises(CacheIntegrityError, match="checksum"):
            ScoreCache.load(path, detector_tag="d")

    def test_unsupported_schema_rejected(self, tmp_path):
        import json

        from repro.runtime import CacheIntegrityError

        path = self._saved(tmp_path)
        payload = json.loads(path.read_text())
        payload["schema"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(CacheIntegrityError, match="schema"):
            ScoreCache.load(path, detector_tag="d")

    def test_legacy_schema1_file_loads(self, tmp_path):
        import json

        path = tmp_path / "cache.json"
        path.write_text(
            json.dumps({"detector": "d", "scores": {"fp": 0.5}})
        )
        loaded = ScoreCache.load(path, detector_tag="d")
        assert loaded.get("fp") == pytest.approx(0.5)

    def test_tag_mismatch_is_not_integrity_error(self, tmp_path):
        from repro.runtime import CacheIntegrityError

        path = self._saved(tmp_path)
        with pytest.raises(ValueError) as excinfo:
            ScoreCache.load(path, detector_tag="other")
        assert not isinstance(excinfo.value, CacheIntegrityError)

    def test_open_dir_quarantines_corrupt_file(self, tmp_path):
        path = ScoreCache.dir_path(tmp_path)
        self._saved(tmp_path, path.name)
        original = path.read_bytes()
        path.write_bytes(original[: len(original) // 2])

        cache = ScoreCache.open_dir(tmp_path, detector_tag="d")
        assert len(cache) == 0
        quarantined = path.with_name(path.name + ".quarantined")
        assert cache.quarantined_from == quarantined
        assert not path.exists()
        # evidence preserved byte-for-byte, never deleted
        assert quarantined.read_bytes() == original[: len(original) // 2]

    def test_open_dir_still_raises_on_tag_mismatch(self, tmp_path):
        path = ScoreCache.dir_path(tmp_path)
        self._saved(tmp_path, path.name)
        with pytest.raises(ValueError):
            ScoreCache.open_dir(tmp_path, detector_tag="other")
        assert path.exists()  # an operator error must not quarantine data

    def test_overfull_file_keeps_most_recent_with_clean_counters(
        self, tmp_path
    ):
        path = self._saved(tmp_path, n=10)
        loaded = ScoreCache.load(path, max_entries=4, detector_tag="d")
        assert len(loaded) == 4
        assert loaded.evictions == 0
        assert loaded.hits == 0 and loaded.misses == 0
        # the most-recently-used tail survives
        assert loaded.get("fp9") == pytest.approx(0.9)
        assert loaded.get("fp5") is None

    @pytest.mark.parametrize("name", ["cache.json", "cache.npz"])
    def test_save_is_atomic_no_tmp_residue(self, tmp_path, name):
        self._saved(tmp_path, name)
        leftovers = [p.name for p in tmp_path.iterdir()]
        assert leftovers == [name]

"""Tests for the content-hash score cache and clip fingerprinting."""

import numpy as np
import pytest

from repro.geometry import Layer, Rect, clip_fingerprint, extract_clip
from repro.runtime import ScoreCache


def _grating_layer(origin_x: int = 0, origin_y: int = 0) -> Layer:
    layer = Layer("metal1")
    layer.add_rects(
        [
            Rect(origin_x + k * 128, origin_y, origin_x + k * 128 + 64, origin_y + 2000)
            for k in range(20)
        ]
    )
    return layer


class TestClipFingerprint:
    def test_translation_invariant(self):
        """Same local geometry at different chip positions hashes equal."""
        a = extract_clip(_grating_layer(), (640, 1000), 768, 256)
        b = extract_clip(_grating_layer(4096, 8192), (4096 + 640, 8192 + 1000), 768, 256)
        assert clip_fingerprint(a) == clip_fingerprint(b)

    def test_geometry_sensitive(self):
        a = extract_clip(_grating_layer(), (640, 1000), 768, 256)
        shifted = extract_clip(_grating_layer(), (672, 1000), 768, 256)
        assert clip_fingerprint(a) != clip_fingerprint(shifted)

    def test_window_size_sensitive(self):
        a = extract_clip(_grating_layer(), (640, 1000), 768, 256)
        b = extract_clip(_grating_layer(), (640, 1000), 512, 256)
        assert clip_fingerprint(a) != clip_fingerprint(b)

    def test_rect_order_irrelevant(self):
        """Fingerprints canonicalize rect ordering."""
        window = Rect(0, 0, 768, 768)
        core = Rect.from_center(384, 384, 256, 256)
        from repro.geometry import Clip

        r1, r2 = Rect(0, 0, 64, 768), Rect(128, 0, 192, 768)
        a = Clip(window=window, core=core, rects=(r1, r2))
        b = Clip(window=window, core=core, rects=(r2, r1))
        assert clip_fingerprint(a) == clip_fingerprint(b)

    def test_stable_across_runs(self):
        """BLAKE2-based, so the value is process-independent (snapshot)."""
        clip = extract_clip(_grating_layer(), (640, 1000), 768, 256)
        assert clip_fingerprint(clip) == clip_fingerprint(clip)
        assert len(clip_fingerprint(clip)) == 32  # 128-bit hex


class TestScoreCache:
    def test_get_put_and_counters(self):
        cache = ScoreCache()
        assert cache.get("fp1") is None
        cache.put("fp1", 0.7)
        assert cache.get("fp1") == pytest.approx(0.7)
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_ratio == pytest.approx(0.5)

    def test_lru_eviction_order(self):
        cache = ScoreCache(max_entries=2)
        cache.put("a", 0.1)
        cache.put("b", 0.2)
        cache.get("a")  # refresh a; b is now oldest
        cache.put("c", 0.3)
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.evictions == 1

    def test_put_existing_updates(self):
        cache = ScoreCache(max_entries=2)
        cache.put("a", 0.1)
        cache.put("a", 0.9)
        assert len(cache) == 1
        assert cache.get("a") == pytest.approx(0.9)

    def test_bad_max_entries(self):
        with pytest.raises(ValueError):
            ScoreCache(max_entries=0)


class TestPersistence:
    @pytest.mark.parametrize("name", ["cache.json", "cache.npz"])
    def test_round_trip(self, tmp_path, name):
        cache = ScoreCache(detector_tag="cnn-dct")
        cache.put("fp1", 0.25)
        cache.put("fp2", 0.75)
        path = cache.save(tmp_path / name)
        loaded = ScoreCache.load(path, detector_tag="cnn-dct")
        assert loaded.get("fp1") == pytest.approx(0.25)
        assert loaded.get("fp2") == pytest.approx(0.75)
        assert loaded.detector_tag == "cnn-dct"

    def test_detector_tag_mismatch_rejected(self, tmp_path):
        cache = ScoreCache(detector_tag="cnn-dct")
        cache.put("fp", 0.5)
        path = cache.save(tmp_path / "cache.json")
        with pytest.raises(ValueError):
            ScoreCache.load(path, detector_tag="svm-ccas")

    def test_open_dir_empty_then_warm(self, tmp_path):
        cache = ScoreCache.open_dir(tmp_path, detector_tag="d")
        assert len(cache) == 0
        cache.put("fp", 0.5)
        cache.save(ScoreCache.dir_path(tmp_path))
        warm = ScoreCache.open_dir(tmp_path, detector_tag="d")
        assert warm.get("fp") == pytest.approx(0.5)

"""Tests for the runtime telemetry primitives."""

import time

import pytest

from repro.runtime import Histogram, Telemetry, Timer


class TestCounters:
    def test_count_accumulates(self):
        t = Telemetry()
        t.count("windows", 10)
        t.count("windows", 5)
        assert t.counter("windows") == 15

    def test_missing_counter_is_zero(self):
        assert Telemetry().counter("nope") == 0

    def test_ratio(self):
        t = Telemetry()
        t.count("hits", 3)
        t.count("lookups", 4)
        assert t.ratio("hits", "lookups") == pytest.approx(0.75)
        assert t.ratio("hits", "missing") == 0.0


class TestTimers:
    def test_timer_accumulates_calls(self):
        t = Telemetry()
        for _ in range(3):
            with t.timer("stage"):
                time.sleep(0.001)
        assert t.timers["stage"].calls == 3
        assert t.seconds("stage") >= 0.003

    def test_add_time(self):
        t = Telemetry()
        t.add_time("total", 2.5)
        assert t.seconds("total") == pytest.approx(2.5)

    def test_rate(self):
        t = Telemetry()
        t.count("windows", 100)
        t.add_time("total", 2.0)
        assert t.rate("windows", "total") == pytest.approx(50.0)

    def test_mean_ms(self):
        timer = Timer()
        timer.add(0.25)
        timer.add(0.75)
        assert timer.mean_ms == pytest.approx(500.0)


class TestHistogram:
    def test_exact_moments(self):
        h = Histogram()
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.count == 4
        assert h.mean == pytest.approx(2.5)
        assert h.minimum == 1.0
        assert h.maximum == 4.0

    def test_percentiles(self):
        h = Histogram()
        for v in range(101):
            h.observe(float(v))
        assert h.percentile(0) == 0.0
        assert h.percentile(100) == 100.0
        assert h.percentile(50) == pytest.approx(50.0)

    def test_bounded_sample_stays_bounded(self):
        h = Histogram(max_sample=64)
        for v in range(10_000):
            h.observe(float(v))
        assert h.count == 10_000
        assert len(h._sample) <= 64
        # the subsampled percentile still tracks the true distribution
        assert h.percentile(50) == pytest.approx(5000, rel=0.1)

    def test_bad_percentile_raises(self):
        with pytest.raises(ValueError):
            Histogram().percentile(101)


class TestMergeAndRender:
    def test_merge_folds_everything(self):
        a, b = Telemetry(), Telemetry()
        a.count("windows", 10)
        b.count("windows", 5)
        a.add_time("score", 1.0)
        b.add_time("score", 2.0)
        a.observe("chunk", 10)
        b.observe("chunk", 30)
        a.merge(b)
        assert a.counter("windows") == 15
        assert a.seconds("score") == pytest.approx(3.0)
        assert a.histograms["chunk"].count == 2
        assert a.histograms["chunk"].mean == pytest.approx(20.0)

    def test_report_mentions_all_sections(self):
        t = Telemetry()
        t.count("windows", 42)
        t.add_time("score", 0.5)
        t.observe("chunk_clips", 256)
        text = t.report()
        assert "windows" in text
        assert "score" in text
        assert "chunk_clips" in text
        assert "42" in text

    def test_as_dict_round_trip_types(self):
        t = Telemetry()
        t.count("windows", 1)
        t.add_time("score", 0.5)
        t.observe("chunk", 2.0)
        d = t.as_dict()
        assert d["counters"]["windows"] == 1
        assert d["timers"]["score"]["calls"] == 1
        assert d["histograms"]["chunk"]["count"] == 1

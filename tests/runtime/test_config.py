"""EngineConfig: grouped frozen config, legacy-kwarg shim, report wire format."""

import dataclasses

import numpy as np
import pytest

from repro.runtime import (
    LEGACY_KWARGS,
    REPORT_SCHEMA,
    BatchConfig,
    CheckpointConfig,
    ChipScanConfig,
    EngineConfig,
    ObservabilityConfig,
    ScanEngine,
    ScanReport,
    SupervisionConfig,
)

from .conftest import DensityDetector, GradedDensityDetector


class TestEngineConfigDefaults:
    def test_default_groups(self):
        cfg = EngineConfig()
        assert cfg.batch.workers == 1
        assert cfg.batch.dedup is True
        assert cfg.raster.raster_plane is None
        assert cfg.supervision.on_invalid_score == "repair"
        assert cfg.checkpoint.dir is None
        assert not cfg.observability.enabled

    def test_frozen(self):
        cfg = EngineConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.batch = BatchConfig(workers=2)
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.batch.workers = 2

    @pytest.mark.parametrize(
        "group_cls,bad",
        [
            (BatchConfig, {"workers": 0}),
            (BatchConfig, {"chunk_clips": 0}),
            (SupervisionConfig, {"max_chunk_retries": -1}),
            (SupervisionConfig, {"on_invalid_score": "explode"}),
            (CheckpointConfig, {"every_chunks": 0}),
            (ObservabilityConfig, {"progress_every_chunks": 0}),
            (ObservabilityConfig, {"progress": "syslog"}),
        ],
    )
    def test_construction_time_validation(self, group_cls, bad):
        with pytest.raises(ValueError):
            group_cls(**bad)

    def test_chip_defaults_are_monolithic(self):
        chip = EngineConfig().chip
        assert chip.shards == 1
        assert chip.shard_workers == 1
        assert chip.halo_nm is None  # full window extent at plan time
        assert chip.snap_nm is None
        assert chip.instance_dedup is True
        assert chip.manifest is None
        assert chip.rescan_from is None

    @pytest.mark.parametrize(
        "bad",
        [
            {"shards": 0},
            {"shard_workers": 0},
            {"halo_nm": -1},
            {"snap_nm": 0},
        ],
    )
    def test_chip_construction_time_validation(self, bad):
        with pytest.raises(ValueError):
            ChipScanConfig(**bad)

    def test_chip_kwargs_route_through_from_kwargs(self):
        cfg = EngineConfig.from_kwargs(
            shards=8,
            shard_workers=4,
            halo_nm=768,
            snap_nm=2048,
            instance_dedup=False,
            manifest="out.npz",
            rescan_from="prior.npz",
        )
        assert cfg.chip == ChipScanConfig(
            shards=8,
            shard_workers=4,
            halo_nm=768,
            snap_nm=2048,
            instance_dedup=False,
            manifest="out.npz",
            rescan_from="prior.npz",
        )

    def test_observability_enabled_flag(self):
        assert ObservabilityConfig(trace_dir="t").enabled
        assert ObservabilityConfig(metrics="m").enabled
        assert ObservabilityConfig(progress="stderr").enabled
        assert ObservabilityConfig(progress=lambda e: None).enabled


class TestFlatKwargMapping:
    def test_from_kwargs_routes_to_groups(self):
        cfg = EngineConfig.from_kwargs(
            workers=4,
            chunk_clips=32,
            raster_plane=False,
            chunk_timeout_s=7.5,
            checkpoint_dir="ckpt",
            trace_dir="traces",
            progress="stderr",
        )
        assert cfg.batch.workers == 4
        assert cfg.batch.chunk_clips == 32
        assert cfg.raster.raster_plane is False
        assert cfg.supervision.chunk_timeout_s == 7.5
        assert cfg.checkpoint.dir == "ckpt"
        assert cfg.observability.trace_dir == "traces"
        assert cfg.observability.progress == "stderr"

    def test_unknown_kwarg_raises(self):
        with pytest.raises(TypeError, match="turbo"):
            EngineConfig.from_kwargs(turbo=True)

    def test_replace_kwargs_keeps_other_groups(self):
        base = EngineConfig.from_kwargs(workers=3, checkpoint_dir="ckpt")
        changed = base.replace_kwargs(chunk_clips=64)
        assert changed.batch.workers == 3
        assert changed.batch.chunk_clips == 64
        assert changed.checkpoint.dir == "ckpt"
        assert base.batch.chunk_clips == 256  # original untouched

    def test_flat_items_round_trips(self):
        cfg = EngineConfig.from_kwargs(
            workers=2, dedup=False, band_rows=4, checkpoint_every_chunks=5
        )
        assert EngineConfig.from_kwargs(**cfg.flat_items()) == cfg

    def test_every_legacy_kwarg_is_applicable(self):
        cfg = EngineConfig()
        for name in LEGACY_KWARGS:
            flat = cfg.flat_items()
            assert name in flat
            assert cfg.replace_kwargs(**{name: flat[name]}) == cfg


class TestLegacyShim:
    def test_flat_kwargs_warn_and_apply(self, layer, region):
        with pytest.warns(DeprecationWarning, match="EngineConfig.from_kwargs"):
            engine = ScanEngine(DensityDetector(), workers=1, chunk_clips=13)
        assert engine.config.batch.chunk_clips == 13
        report = engine.scan(layer, region)
        assert report.n_windows > 0

    def test_config_path_does_not_warn(self, recwarn):
        ScanEngine(DensityDetector(), config=EngineConfig())
        assert not [
            w for w in recwarn.list if w.category is DeprecationWarning
        ]

    def test_config_plus_legacy_is_type_error(self):
        with pytest.raises(TypeError, match="not both"):
            ScanEngine(DensityDetector(), config=EngineConfig(), workers=2)

    def test_unknown_legacy_kwarg_is_type_error(self):
        with pytest.raises(TypeError, match="warp_speed"):
            ScanEngine(DensityDetector(), warp_speed=9)

    def test_shim_equivalent_to_config(self, layer, region):
        with pytest.warns(DeprecationWarning):
            legacy = ScanEngine(GradedDensityDetector(), chunk_clips=17)
        config = ScanEngine(
            GradedDensityDetector(),
            config=EngineConfig.from_kwargs(chunk_clips=17),
        )
        a = legacy.scan(layer, region)
        b = config.scan(layer, region)
        assert a.scores.tobytes() == b.scores.tobytes()


class TestReportWire:
    def _report(self, layer, region):
        return ScanEngine(GradedDensityDetector()).scan(layer, region)

    def test_round_trip_is_byte_identical(self, layer, region):
        report = self._report(layer, region)
        doc = report.to_json()
        rebuilt = ScanReport.from_json(doc)
        assert rebuilt.to_json() == doc

    def test_schema_field_present(self, layer, region):
        import json

        payload = json.loads(self._report(layer, region).to_json())
        assert payload["schema"] == REPORT_SCHEMA

    def test_newer_schema_refused(self, layer, region):
        import json

        payload = json.loads(self._report(layer, region).to_json())
        payload["schema"] = REPORT_SCHEMA + 1
        with pytest.raises(ValueError, match="schema"):
            ScanReport.from_json(json.dumps(payload))

    def test_round_trip_preserves_scores_and_telemetry(self, layer, region):
        report = self._report(layer, region)
        rebuilt = ScanReport.from_json(report.to_json())
        assert rebuilt.scores.tobytes() == report.scores.tobytes()
        assert np.array_equal(rebuilt.flagged, report.flagged)
        assert rebuilt.n_windows == report.n_windows
        assert rebuilt.telemetry.counters == report.telemetry.counters
        for name, hist in report.telemetry.histograms.items():
            assert rebuilt.telemetry.histograms[name].as_dict() == (
                hist.as_dict()
            )

"""Property-based determinism contract of the chip sharding (hypothesis).

The load-bearing invariant of :mod:`repro.runtime.shard`: for *any*
layout, region, shard grid, and halo, the sharded-and-merged scan is
byte-identical to the monolithic scan — including windows that straddle
shard seams, where a buggy halo or owner rule would show up first.
"""

from __future__ import annotations

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.geometry import Layer, Rect
from repro.runtime import EngineConfig, ScanEngine, ShardPlanner, scan_chip
from repro.service import canonical_report_json

from .conftest import GradedDensityDetector

WINDOW = 512
STEP = 128


@st.composite
def layouts(draw):
    """A random wire soup over a region a few windows wide."""
    nx = draw(st.integers(WINDOW // STEP, 14))
    ny = draw(st.integers(WINDOW // STEP, 14))
    region = Rect(0, 0, WINDOW + (nx - 1) * STEP, WINDOW + (ny - 1) * STEP)
    layer = Layer("metal1")
    rects = []
    for _ in range(draw(st.integers(3, 12))):
        x1 = draw(st.integers(0, region.width - 64))
        y1 = draw(st.integers(0, region.height - 64))
        w = draw(st.integers(32, 900))
        h = draw(st.integers(32, 180))
        rects.append(
            Rect(x1, y1, min(x1 + w, region.width), min(y1 + h, region.height))
        )
    layer.add_rects(rects)
    return layer, region


@st.composite
def shard_grids(draw):
    return (draw(st.integers(1, 4)), draw(st.integers(1, 4)))


@given(layouts(), shard_grids(), st.booleans())
@settings(max_examples=25, deadline=None)
def test_sharded_merge_is_byte_identical_to_monolithic(layout, grid, dedup):
    layer, region = layout
    detector = GradedDensityDetector()
    mono = ScanEngine(detector).scan(layer, region, WINDOW, 128, keep_clips=False)
    want = canonical_report_json(mono.to_json())

    planner = ShardPlanner(grid[0] * grid[1], grid=grid)
    config = EngineConfig.from_kwargs(instance_dedup=dedup)
    sharded = scan_chip(
        layer,
        detector,
        config,
        region=region,
        window_nm=WINDOW,
        core_nm=128,
        planner=planner,
    )
    assert canonical_report_json(sharded.to_json()) == want

    # seam coverage: every window is owned exactly once and the merged
    # score array carries no holes
    plan = planner.plan(region, window_nm=WINDOW, core_nm=128)
    assert sum(s.n_owned for s in plan.shards) == plan.n_windows
    assert len(sharded.scores) == mono.n_windows
    assert np.array_equal(sharded.scores, mono.scores)


@given(layouts(), st.integers(0, 3))
@settings(max_examples=15, deadline=None)
def test_tight_halos_still_score_seam_windows_identically(layout, halo_steps):
    """Any halo >= 0 keeps byte-identity: window content always comes
    from the full layer, the halo only widens the fingerprint cone."""
    layer, region = layout
    detector = GradedDensityDetector()
    mono = ScanEngine(detector).scan(layer, region, WINDOW, 128, keep_clips=False)
    planner = ShardPlanner(4, halo_nm=halo_steps * STEP)
    sharded = scan_chip(
        layer,
        detector,
        region=region,
        window_nm=WINDOW,
        core_nm=128,
        planner=planner,
    )
    assert canonical_report_json(sharded.to_json()) == canonical_report_json(
        mono.to_json()
    )

"""Checkpoint / resume: an interrupted scan continues byte-identically.

The contract under test: kill a scan at an arbitrary point, re-run it
with ``resume=True``, and the final report's scores and flagged set are
byte-identical to a never-interrupted scan — on the direct, dedup, and
raster scan strategies.  Resume must also refuse checkpoints from a
different scan configuration and survive a corrupt checkpoint file.
"""

import numpy as np
import pytest

from repro.runtime import (
    CHECKPOINT_NAME,
    Checkpointer,
    CheckpointMismatch,
    ScanEngine,
    scan_config_hash,
)

from ._fault_doubles import (
    FlakyDensityDetector,
    FlakyRasterMeanDetector,
    RasterMeanDetector,
)
from .conftest import DensityDetector

# chunk_clips=4 keeps every strategy multi-chunk (the layer fixture has
# only 13 unique patterns, and the dedup paths chunk by unique pattern)
FAST = dict(
    workers=1, chunk_clips=4, checkpoint_every_chunks=1,
    max_chunk_retries=0, retry_backoff_s=0.0,
)


def _scan(engine, layer, region, **kw):
    return engine.scan(layer, region, keep_clips=False, **kw)


def _ckpt_path(tmp_path):
    return tmp_path / "ckpt" / CHECKPOINT_NAME


# ----------------------------------------------------------------------
# interrupt + resume, per strategy
# ----------------------------------------------------------------------
@pytest.mark.parametrize("dedup", [False, True], ids=["direct", "dedup"])
def test_interrupted_scan_resumes_byte_identical(layer, region, tmp_path, dedup):
    clean = _scan(
        ScanEngine(DensityDetector(), dedup=dedup, raster_plane=False, **FAST),
        layer, region,
    )

    flaky = ScanEngine(
        FlakyDensityDetector(fail_after=2), dedup=dedup, raster_plane=False,
        checkpoint_dir=tmp_path / "ckpt", **FAST,
    )
    with pytest.raises(RuntimeError, match="flaky detector"):
        _scan(flaky, layer, region)
    assert _ckpt_path(tmp_path).exists()

    resumed = ScanEngine(
        DensityDetector(), dedup=dedup, raster_plane=False,
        checkpoint_dir=tmp_path / "ckpt", **FAST,
    )
    report = _scan(resumed, layer, region, resume=True)

    assert np.array_equal(report.scores, clean.scores)
    assert np.array_equal(report.flagged, clean.flagged)
    t = report.telemetry
    assert t.counter("checkpoint_resumed") == 1
    assert t.counter("resume_hits") > 0
    # the resumed scan scored strictly less than the full window count
    assert t.counter("scored") < clean.telemetry.counter("scored")
    # success deletes the checkpoint: nothing left to mis-resume from
    assert not _ckpt_path(tmp_path).exists()


def test_interrupted_raster_scan_resumes_byte_identical(layer, region, tmp_path):
    clean = _scan(
        ScanEngine(RasterMeanDetector(), dedup=False, raster_plane=True, **FAST),
        layer, region,
    )
    assert clean.scan_path == "raster"

    flaky = ScanEngine(
        FlakyRasterMeanDetector(fail_after=2), dedup=False, raster_plane=True,
        checkpoint_dir=tmp_path / "ckpt", **FAST,
    )
    with pytest.raises(RuntimeError, match="flaky raster"):
        _scan(flaky, layer, region)
    assert _ckpt_path(tmp_path).exists()

    report = _scan(
        ScanEngine(
            RasterMeanDetector(), dedup=False, raster_plane=True,
            checkpoint_dir=tmp_path / "ckpt", **FAST,
        ),
        layer, region, resume=True,
    )
    assert np.array_equal(report.scores, clean.scores)
    assert np.array_equal(report.flagged, clean.flagged)
    assert report.telemetry.counter("resume_hits") > 0


def test_completed_scan_checkpoints_then_cleans_up(layer, region, tmp_path):
    engine = ScanEngine(
        DensityDetector(), dedup=False, raster_plane=False,
        checkpoint_dir=tmp_path / "ckpt", **FAST,
    )
    report = _scan(engine, layer, region)
    assert report.telemetry.counter("checkpoint_saves") >= 1
    assert not _ckpt_path(tmp_path).exists()


def test_resume_with_no_checkpoint_scans_from_scratch(layer, region, tmp_path):
    clean = _scan(
        ScanEngine(DensityDetector(), dedup=False, raster_plane=False, **FAST),
        layer, region,
    )
    report = _scan(
        ScanEngine(
            DensityDetector(), dedup=False, raster_plane=False,
            checkpoint_dir=tmp_path / "ckpt", **FAST,
        ),
        layer, region, resume=True,
    )
    assert np.array_equal(report.scores, clean.scores)
    assert report.telemetry.counter("checkpoint_resumed") == 0


def test_resume_requires_checkpoint_dir(layer, region):
    engine = ScanEngine(DensityDetector(), raster_plane=False)
    with pytest.raises(ValueError, match="checkpoint_dir"):
        _scan(engine, layer, region, resume=True)


# ----------------------------------------------------------------------
# refusal and corruption
# ----------------------------------------------------------------------
def _interrupt(layer, region, tmp_path, **engine_kw):
    flaky = ScanEngine(
        FlakyDensityDetector(fail_after=2), raster_plane=False,
        checkpoint_dir=tmp_path / "ckpt", **{**FAST, **engine_kw},
    )
    with pytest.raises(RuntimeError):
        _scan(flaky, layer, region)
    assert _ckpt_path(tmp_path).exists()


def test_resume_refuses_different_config(layer, region, tmp_path):
    _interrupt(layer, region, tmp_path, dedup=False)
    engine = ScanEngine(
        DensityDetector(), dedup=False, raster_plane=False,
        checkpoint_dir=tmp_path / "ckpt",
        **{**FAST, "chunk_clips": 16},  # different chunking => different scan
    )
    with pytest.raises(CheckpointMismatch):
        _scan(engine, layer, region, resume=True)


def test_resume_refuses_different_detector(layer, region, tmp_path):
    _interrupt(layer, region, tmp_path, dedup=False)
    engine = ScanEngine(
        DensityDetector(cutoff=0.45), dedup=False, raster_plane=False,
        checkpoint_dir=tmp_path / "ckpt", **FAST,
    )
    # same tag, same geometry — but a different threshold changes the hash
    engine.detector.threshold = 0.75
    with pytest.raises(CheckpointMismatch):
        _scan(engine, layer, region, resume=True)


def test_corrupt_checkpoint_is_quarantined_and_scan_restarts(
    layer, region, tmp_path
):
    _interrupt(layer, region, tmp_path, dedup=False)
    path = _ckpt_path(tmp_path)
    path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])

    clean = _scan(
        ScanEngine(DensityDetector(), dedup=False, raster_plane=False, **FAST),
        layer, region,
    )
    report = _scan(
        ScanEngine(
            DensityDetector(), dedup=False, raster_plane=False,
            checkpoint_dir=tmp_path / "ckpt", **FAST,
        ),
        layer, region, resume=True,
    )
    assert np.array_equal(report.scores, clean.scores)
    t = report.telemetry
    assert t.counter("checkpoint_quarantined") == 1
    assert t.counter("checkpoint_resumed") == 0
    assert t.counter("resume_hits") == 0
    assert path.with_name(path.name + ".quarantined").exists()


def test_checkpoint_truncate_fault_reaches_the_file(layer, region, tmp_path):
    """The checkpoint_truncate injection point corrupts a real save."""
    engine = ScanEngine(
        DensityDetector(), dedup=False, raster_plane=False,
        checkpoint_dir=tmp_path / "ckpt",
        faults="checkpoint_truncate@0",
        **FAST,
    )
    report = _scan(engine, layer, region)
    assert engine.faults.fired["checkpoint_truncate"] == 1
    assert report.telemetry.counter("fault_checkpoint_truncate") == 1


# ----------------------------------------------------------------------
# checkpointer unit behavior
# ----------------------------------------------------------------------
def test_replayed_chunk_size_mismatch_raises(tmp_path):
    path = tmp_path / CHECKPOINT_NAME
    h = scan_config_hash(x=1)
    writer = Checkpointer(
        path, config_hash=h, detector_tag="d", mode="direct", every_chunks=1
    )
    writer.record_chunk(np.array([0.1, 0.2, 0.3]))

    reader = Checkpointer(
        path, config_hash=h, detector_tag="d", mode="direct"
    )
    assert reader.load_for_resume()
    with pytest.raises(CheckpointMismatch, match="2 windows"):
        reader.next_resumed_chunk(2)


def test_config_hash_is_order_insensitive_and_sensitive_to_values():
    assert scan_config_hash(a=1, b=2) == scan_config_hash(b=2, a=1)
    assert scan_config_hash(a=1, b=2) != scan_config_hash(a=1, b=3)

"""Tests for ScanEngine: streaming, dedup, equivalence, verification.

The acceptance-critical case lives in ``TestAcceptance``: on a routed
block built from repeated cells, the engine with cache + cascade must
flag exactly the windows the naive ``scan_layer`` sweep flags while
sending at least 2x fewer windows through the expensive stage.
"""

import numpy as np
import pytest

from repro.core import scan_layer
from repro.data import RoutedBlockConfig, replicate_block, synthesize_routed_block
from repro.geometry import Rect
from repro.runtime import CascadeDetector, ScanEngine, ScanReport, ScoreCache
from repro.shallow import make_logistic_density

from .conftest import DensityDetector, GradedDensityDetector, tiny_grating_dataset


class TestEquivalence:
    def test_matches_naive_scan(self, layer, region):
        naive = scan_layer(DensityDetector(0.3), layer, region)
        report = ScanEngine(DensityDetector(0.3)).scan(layer, region)
        assert report.centers == naive.centers
        assert np.array_equal(report.flagged, naive.flagged)
        assert np.allclose(report.scores, naive.scores)

    def test_chunking_does_not_change_scores(self, layer, region):
        det = GradedDensityDetector()
        a = ScanEngine(det, chunk_clips=7, dedup=False).scan(layer, region)
        b = ScanEngine(det, chunk_clips=500, dedup=False).scan(layer, region)
        assert a.scores.tobytes() == b.scores.tobytes()

    def test_workers_byte_identical(self, layer, region):
        det = make_logistic_density()
        det.fit(tiny_grating_dataset(), rng=np.random.default_rng(1))
        r1 = ScanEngine(det, workers=1).scan(layer, region)
        r2 = ScanEngine(det, workers=2).scan(layer, region)
        assert r1.scores.tobytes() == r2.scores.tobytes()
        assert np.array_equal(r1.flagged, r2.flagged)

    def test_region_too_small_raises(self, layer):
        with pytest.raises(ValueError):
            ScanEngine(DensityDetector()).scan(layer, Rect(0, 0, 100, 100))


class TestDedup:
    def test_repeated_patterns_scored_once(self, layer, region):
        report = ScanEngine(DensityDetector(0.3)).scan(layer, region)
        assert report.n_scored < report.n_windows
        assert report.dedup_ratio > 0.5  # the fixture layer is periodic
        assert (
            report.telemetry.counter("dedup_hits")
            + report.telemetry.counter("cache_hits")
            + report.n_scored
            == report.n_windows
        )

    def test_dedup_disabled_scores_everything(self, layer, region):
        report = ScanEngine(DensityDetector(0.3), dedup=False).scan(
            layer, region
        )
        assert report.n_scored == report.n_windows
        assert report.dedup_ratio == 0.0

    def test_warm_cache_second_scan_near_free(self, layer, region):
        cache = ScoreCache(detector_tag="density-cutoff")
        engine = ScanEngine(DensityDetector(0.3), cache=cache)
        first = engine.scan(layer, region)
        second = engine.scan(layer, region)
        assert second.n_scored == 0
        assert second.telemetry.counter("cache_hits") > 0
        assert np.array_equal(first.flagged, second.flagged)

    def test_cache_dir_persists_across_engines(self, layer, region, tmp_path):
        r1 = ScanEngine(DensityDetector(0.3), cache_dir=tmp_path).scan(
            layer, region
        )
        assert ScoreCache.dir_path(tmp_path).exists()
        r2 = ScanEngine(DensityDetector(0.3), cache_dir=tmp_path).scan(
            layer, region
        )
        assert r1.n_scored > 0
        assert r2.n_scored == 0
        assert np.array_equal(r1.flagged, r2.flagged)


class TestReport:
    def test_report_is_scanresult_superset(self, layer, region):
        report = ScanEngine(DensityDetector(0.3)).scan(layer, region)
        assert isinstance(report, ScanReport)
        assert len(report.clips) == len(report.centers) == report.n_windows
        assert report.heat_map().size == report.n_windows
        assert report.windows_per_s > 0
        assert "windows" in report.summary()

    def test_keep_clips_false_retains_flagged(self, layer, region):
        report = ScanEngine(DensityDetector(0.3)).scan(
            layer, region, keep_clips=False
        )
        assert report.clips == []
        assert len(report.flagged_clips()) == report.n_flagged
        assert len(report.hotspot_regions()) == report.n_flagged
        assert report.flag_ratio > 0  # n_windows-based, not clips-based

    def test_telemetry_embedded(self, layer, region):
        report = ScanEngine(DensityDetector(0.3)).scan(layer, region)
        assert report.telemetry.counter("windows") == report.n_windows
        assert report.telemetry.seconds("total") > 0
        text = report.telemetry.report()
        assert "windows" in text and "extract" in text


class TestVerification:
    def test_oracle_verifies_flagged_only(self, layer, region):
        class RecordingOracle:
            def __init__(self):
                self.seen = []

            def label(self, clip):
                self.seen.append(clip)
                return 1

        oracle = RecordingOracle()
        report = ScanEngine(DensityDetector(0.3)).scan(
            layer, region, oracle=oracle
        )
        assert report.confirmed is not None
        assert len(report.confirmed) == report.n_flagged
        # verification is deduped by pattern, so the oracle saw fewer
        assert len(oracle.seen) <= report.n_flagged
        assert len(oracle.seen) == report.telemetry.counter("verified_unique")

    def test_cascade_verifier_populates_confirmed(self, layer, region):
        class NoOracle:
            def label(self, clip):
                return 0

        cascade = CascadeDetector(
            primary=DensityDetector(0.3), verifier=NoOracle()
        )
        report = ScanEngine(cascade).scan(layer, region)
        assert report.confirmed is not None
        assert not report.confirmed.any()
        assert report.cascade_stats.verified > 0
        assert len(report.hotspot_regions()) == 0


def _replicated_block(seed: int = 7):
    """A 3x3 array of one routed cell — the repeated-cell chip workload."""
    rng = np.random.default_rng(seed)
    cell = Rect(0, 0, 2048, 2048)
    layer, _seeded = synthesize_routed_block(
        rng, cell, RoutedBlockConfig(n_marginal=2, marginal_len_nm=400)
    )
    tiled = replicate_block(layer, cell, nx=3, ny=3)
    return tiled, Rect(0, 0, 3 * 2048, 3 * 2048)


class TestAcceptance:
    """ISSUE acceptance: identical flags, >= 2x fewer expensive scores."""

    def test_cache_cascade_matches_naive_with_2x_dedup(self):
        layer, region = _replicated_block()
        train = tiny_grating_dataset(n=24, seed=0)
        rng = np.random.default_rng(3)
        prefilter = make_logistic_density()
        prefilter.fit(train, rng=rng)
        cascade = CascadeDetector(
            primary=GradedDensityDetector(), prefilter=prefilter
        )

        naive = scan_layer(cascade, layer, region)
        cascade.reset_stats()

        engine = ScanEngine(cascade, workers=1)
        report = engine.scan(layer, region)

        # identical flagged windows
        assert report.centers == naive.centers
        assert np.array_equal(report.flagged, naive.flagged)

        # >= 2x fewer windows reach the expensive stage, proven by telemetry
        assert report.n_windows >= 2 * report.n_scored
        assert report.dedup_ratio >= 0.5
        assert report.cascade_stats.primary_scored <= report.n_scored

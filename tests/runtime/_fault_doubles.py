"""Detector test doubles for the fault-tolerance suites.

These live in an importable module (not a fixture closure) because the
spawn-based worker pool pickles detectors into child processes by
reference to their defining module.

* :class:`WorkerHostileDetector` — scores correctly in the parent
  process, always raises in a pool worker.  Drives the full supervision
  ladder (retry -> rebuild -> in-process degradation) with a *permanent*
  failure, which injected faults deliberately never model (they are
  transient: first submission only).
* :class:`FlakyDensityDetector` — a :class:`DensityDetector` that starts
  failing permanently after N scoring calls.  Shares the
  ``density-cutoff`` name/threshold so a scan it interrupts can be
  resumed by a healthy ``DensityDetector`` against the same checkpoint.
* :class:`RasterMeanDetector` / :class:`FlakyRasterMeanDetector` —
  raster-capable counterparts for the raster-plane scan path.
"""

from __future__ import annotations

import os

import numpy as np

from repro.core.detector import Detector, FitReport
from repro.geometry.rasterize import rasterize_clip


class WorkerHostileDetector(Detector):  # lint: disable=raster-parity  (test double)
    """Scores fine in its home process, raises anywhere else."""

    name = "worker-hostile"
    threshold = 0.5

    def __init__(self, cutoff: float = 0.3) -> None:
        self.cutoff = cutoff
        self.home_pid = os.getpid()

    def fit(self, train, rng=None) -> FitReport:
        return FitReport()

    def predict_proba(self, clips):
        if os.getpid() != self.home_pid:
            raise RuntimeError("hostile detector refuses to run in a worker")
        return np.array(
            [1.0 if c.density() > self.cutoff else 0.0 for c in clips]
        )


class FlakyDensityDetector(Detector):  # lint: disable=raster-parity  (test double)
    """Density cutoff that fails permanently after ``fail_after`` calls."""

    name = "density-cutoff"
    threshold = 0.5

    def __init__(self, fail_after: int = 2, cutoff: float = 0.3) -> None:
        self.fail_after = fail_after
        self.cutoff = cutoff
        self.calls = 0

    def fit(self, train, rng=None) -> FitReport:
        return FitReport()

    def predict_proba(self, clips):
        self.calls += 1
        if self.calls > self.fail_after:
            raise RuntimeError("flaky detector gave out mid-scan")
        return np.array(
            [1.0 if c.density() > self.cutoff else 0.0 for c in clips]
        )


class RasterMeanDetector(Detector):
    """Mean raster coverage through both scan paths (raster-capable)."""

    name = "raster-mean"
    threshold = 0.5

    def __init__(self, pixel_nm: int = 16) -> None:
        self.pixel_nm = pixel_nm

    def fit(self, train, rng=None) -> FitReport:
        return FitReport()

    def predict_proba(self, clips):
        if len(clips) == 0:
            return np.empty(0, dtype=np.float64)
        return np.array(
            [
                min(1.0, 4.0 * rasterize_clip(c, self.pixel_nm).mean())
                for c in clips
            ]
        )

    def predict_proba_rasters(self, rasters):
        rasters = np.asarray(rasters, dtype=np.float64)
        if len(rasters) == 0:
            return np.empty(0, dtype=np.float64)
        return np.minimum(1.0, 4.0 * rasters.mean(axis=(1, 2)))

    @property
    def raster_pixel_nm(self) -> int:
        return self.pixel_nm


class FlakyRasterMeanDetector(RasterMeanDetector):
    """Raster double that fails permanently after ``fail_after`` batches."""

    def __init__(self, fail_after: int = 2, pixel_nm: int = 16) -> None:
        super().__init__(pixel_nm=pixel_nm)
        self.fail_after = fail_after
        self.calls = 0

    def predict_proba_rasters(self, rasters):
        self.calls += 1
        if self.calls > self.fail_after:
            raise RuntimeError("flaky raster detector gave out mid-scan")
        return super().predict_proba_rasters(rasters)

"""ScanSession: background scans, live progress, result/error delivery."""

import threading

import numpy as np
import pytest

from repro.geometry import Rect
from repro.runtime import EngineConfig, ScanEngine

from .conftest import DensityDetector, GradedDensityDetector


class GatedDetector(DensityDetector):  # lint: disable=raster-parity  (clip-path test double; blocking is the point)
    """Blocks the first predict_proba call until the test releases it."""

    def __init__(self):
        super().__init__()
        self.gate = threading.Event()

    def predict_proba(self, clips):
        self.gate.wait(timeout=30)
        return super().predict_proba(clips)

    def __getstate__(self):
        state = dict(self.__dict__)
        del state["gate"]
        return state


class TestScanSession:
    def test_result_matches_blocking_scan(self, layer, region):
        detector = GradedDensityDetector()
        blocking = ScanEngine(detector).scan(layer, region)
        session = ScanEngine(detector).start(layer, region)
        report = session.result(timeout=60)
        assert session.done()
        assert report.scores.tobytes() == blocking.scores.tobytes()
        assert np.array_equal(report.flagged, blocking.flagged)

    def test_progress_observed_without_observability_config(
        self, layer, region
    ):
        session = ScanEngine(GradedDensityDetector()).start(layer, region)
        report = session.result(timeout=60)
        final = session.progress
        assert final is not None
        assert final.phase == "done"
        assert final.windows_done == report.n_windows
        assert session.progress_events[-1] == final

    def test_progress_cadence_config_applies(self, layer, region):
        config = EngineConfig.from_kwargs(
            chunk_clips=16, progress_every_chunks=1
        )
        session = ScanEngine(GradedDensityDetector(), config=config).start(
            layer, region
        )
        session.result(timeout=60)
        assert len(session.progress_events) >= 2

    def test_error_propagates_through_result(self, layer):
        session = ScanEngine(DensityDetector()).start(
            layer, Rect(0, 0, 100, 100)
        )
        with pytest.raises(ValueError):
            session.result(timeout=60)
        assert session.done()

    def test_timeout_then_completion(self, layer, region):
        detector = GatedDetector()
        session = ScanEngine(detector).start(layer, region)
        with pytest.raises(TimeoutError):
            session.result(timeout=0.05)
        assert not session.done()
        detector.gate.set()
        report = session.result(timeout=60)
        assert report.n_windows > 0

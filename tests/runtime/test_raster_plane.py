"""Raster-plane scan path: equivalence with the per-clip reference path.

The fast path must be an *optimization*, not a different detector: for
every supported configuration the flagged window set matches the clip
path exactly and scores agree to float tolerance.  These tests sweep the
same layer through both paths (dedup on and off, bands wide and narrow,
budget-constrained planes) and compare.
"""

import numpy as np
import pytest

from repro.core.detector import Detector, FitReport, supports_raster_scan
from repro.geometry import Layer, Rect
from repro.geometry.rasterize import rasterize_clip
from repro.runtime import ScanEngine
from repro.runtime.engine import (  # lint: disable=no-deep-runtime-import  (white-box test of the private band iterator)
    _iter_raster_bands,
)
from repro.shallow import make_logistic_density

from .conftest import DensityDetector, tiny_grating_dataset


class RasterMeanDetector(Detector):
    """Scores the raster's mean coverage — raster-capable test double.

    ``predict_proba`` rasterizes each clip, so the clip and raster paths
    compute the same quantity through both pipelines and any divergence
    is the scan machinery's fault.
    """

    name = "raster-mean"
    threshold = 0.5

    def __init__(self, pixel_nm: int = 8) -> None:
        self.pixel_nm = pixel_nm

    def fit(self, train, rng=None) -> FitReport:
        return FitReport()

    def predict_proba(self, clips):
        if len(clips) == 0:
            return np.empty(0, dtype=np.float64)
        return np.array(
            [
                min(1.0, 4.0 * rasterize_clip(c, self.pixel_nm).mean())
                for c in clips
            ]
        )

    def predict_proba_rasters(self, rasters):
        rasters = np.asarray(rasters, dtype=np.float64)
        if len(rasters) == 0:
            return np.empty(0, dtype=np.float64)
        return np.minimum(1.0, 4.0 * rasters.mean(axis=(1, 2)))

    @property
    def raster_pixel_nm(self) -> int:
        return self.pixel_nm


@pytest.fixture
def tiled_layer() -> Layer:
    """A 2x2-replicated wire cell: repeats for dedup, detail for scores."""
    layer = Layer("metal1")
    rects = []
    for ox, oy in [(0, 0), (2048, 0), (0, 2048), (2048, 2048)]:
        for i in range(8):
            rects.append(
                Rect(ox, oy + i * 256, ox + 2048, oy + i * 256 + 64)
            )
        rects.append(Rect(ox + 300, oy + 100, ox + 420, oy + 1900))
        rects.append(Rect(ox + 900, oy + 140, ox + 1500, oy + 260))
    layer.add_rects(rects)
    return layer


REGION = Rect(0, 0, 4096, 4096)


def _scan(detector, layer, *, raster_plane, dedup=True, **kw):
    engine = ScanEngine(detector, raster_plane=raster_plane, dedup=dedup, **kw)
    return engine.scan(layer, REGION, keep_clips=False)


class TestEquivalence:
    @pytest.mark.parametrize("dedup", [False, True], ids=["direct", "dedup"])
    def test_scores_and_flags_match_clip_path(self, tiled_layer, dedup):
        det = RasterMeanDetector()
        clip = _scan(det, tiled_layer, raster_plane=False, dedup=dedup)
        rast = _scan(det, tiled_layer, raster_plane=True, dedup=dedup)
        assert clip.scan_path == "clip" and rast.scan_path == "raster"
        assert rast.centers == clip.centers
        np.testing.assert_allclose(rast.scores, clip.scores, atol=1e-9)
        assert np.array_equal(rast.flagged, clip.flagged)

    def test_dedup_actually_dedups_rasters(self, tiled_layer):
        rast = _scan(RasterMeanDetector(), tiled_layer, raster_plane=True)
        # the 2x2 replication means far fewer unique patterns than windows
        assert rast.n_scored < rast.n_windows
        assert rast.dedup_ratio > 0.3

    def test_fitted_library_detector_matches(self, tiled_layer):
        det = make_logistic_density()
        det.fit(tiny_grating_dataset(), rng=np.random.default_rng(1))
        clip = _scan(det, tiled_layer, raster_plane=False, dedup=False)
        rast = _scan(det, tiled_layer, raster_plane=True, dedup=False)
        np.testing.assert_allclose(rast.scores, clip.scores, atol=1e-9)
        assert np.array_equal(rast.flagged, clip.flagged)

    def test_workers_match_in_process(self, tiled_layer):
        det = make_logistic_density()
        det.fit(tiny_grating_dataset(), rng=np.random.default_rng(1))
        one = _scan(det, tiled_layer, raster_plane=True, dedup=False)
        two = _scan(
            det, tiled_layer, raster_plane=True, dedup=False, workers=2
        )
        assert np.array_equal(one.scores, two.scores)


class TestBandGeometry:
    """Band partitioning must never change results, only plane sizes."""

    @pytest.mark.parametrize("band_rows", [1, 3, 64])
    def test_band_rows_invariant(self, tiled_layer, band_rows):
        det = RasterMeanDetector()
        baseline = _scan(det, tiled_layer, raster_plane=False, dedup=False)
        banded = _scan(
            det,
            tiled_layer,
            raster_plane=True,
            dedup=False,
            band_rows=band_rows,
        )
        assert banded.centers == baseline.centers
        np.testing.assert_allclose(banded.scores, baseline.scores, atol=1e-9)

    def test_tiny_plane_budget_segments_rows(self, tiled_layer):
        """A budget below one full row forces x-segmentation — still exact."""
        det = RasterMeanDetector()
        baseline = _scan(det, tiled_layer, raster_plane=False, dedup=False)
        segmented = _scan(
            det,
            tiled_layer,
            raster_plane=True,
            dedup=False,
            max_plane_pixels=2 * (768 // 8) ** 2,  # ~2 windows per plane
        )
        assert segmented.centers == baseline.centers
        np.testing.assert_allclose(
            segmented.scores, baseline.scores, atol=1e-9
        )
        assert segmented.telemetry.counter("raster_bands") > len(
            set(y for _, y in baseline.centers)
        )

    def test_band_iterator_preserves_row_major_order(self):
        from repro.geometry import iter_tile_centers

        region = Rect(0, 0, 3000, 2000)
        expected = list(iter_tile_centers(region, 768, 256))
        for band_rows, budget in [(4, 10**9), (2, 50_000), (1, 9_300)]:
            got = []
            for centers, box in _iter_raster_bands(
                region, 768, 256, 8, band_rows, budget
            ):
                got.extend(centers)
                assert box.width // 8 * (box.height // 8) <= budget
            assert got == expected, (band_rows, budget)

    def test_keep_clips_retains_clip_objects(self, tiled_layer):
        report = ScanEngine(
            RasterMeanDetector(), raster_plane=True, dedup=False
        ).scan(tiled_layer, REGION, keep_clips=True)
        assert len(report.clips) == report.n_windows
        assert report.clips[0].window.width == 768
        assert len(report.flagged_clips()) == report.n_flagged


class TestPathSelection:
    def test_auto_picks_raster_when_supported(self, tiled_layer):
        report = _scan(RasterMeanDetector(), tiled_layer, raster_plane=None)
        assert report.scan_path == "raster"

    def test_auto_falls_back_for_clip_only_detector(self, tiled_layer):
        assert not supports_raster_scan(DensityDetector())
        report = _scan(DensityDetector(), tiled_layer, raster_plane=None)
        assert report.scan_path == "clip"

    def test_auto_falls_back_on_misaligned_geometry(self, tiled_layer):
        class Misaligned(RasterMeanDetector):
            raster_pixel_nm = 7  # 768 % 7 != 0; clips still render at 8

        report = _scan(Misaligned(), tiled_layer, raster_plane=None)
        assert report.scan_path == "clip"

    def test_required_raster_raises_when_unsupported(self, tiled_layer):
        class Misaligned(RasterMeanDetector):
            raster_pixel_nm = 7

        with pytest.raises(ValueError, match="raster"):
            _scan(DensityDetector(), tiled_layer, raster_plane=True)
        with pytest.raises(ValueError, match="divisible"):
            _scan(Misaligned(), tiled_layer, raster_plane=True)

    def test_forced_clip_path(self, tiled_layer):
        report = _scan(RasterMeanDetector(), tiled_layer, raster_plane=False)
        assert report.scan_path == "clip"

    def test_supports_raster_scan_rejects_bad_pixel(self):
        det = RasterMeanDetector()
        assert supports_raster_scan(det)

        class NoPixel(RasterMeanDetector):
            raster_pixel_nm = None

        class ZeroPixel(RasterMeanDetector):
            raster_pixel_nm = 0

        assert not supports_raster_scan(NoPixel())
        assert not supports_raster_scan(ZeroPixel())


class FeatureMeanDetector(RasterMeanDetector):
    """Block-DCT double: exercises the plane-shared feature fast path.

    Scores are a function of the window's DCT feature tensor, computed
    identically by the raster path (per-window transform) and the plane
    path (one transform per band, sliced) — so any divergence between
    the two is the plane-slicing arithmetic's fault.
    """

    name = "feature-mean"
    block = 8
    keep = 4

    @property
    def raster_pixel_nm(self) -> int:  # restated for the raster-parity lint
        return self.pixel_nm

    def predict_proba(self, clips):
        if len(clips) == 0:
            return np.empty(0, dtype=np.float64)
        rasters = np.stack(
            [rasterize_clip(c, self.pixel_nm) for c in clips]
        )
        return self.predict_proba_rasters(rasters)

    def predict_proba_rasters(self, rasters):
        from repro.features.dct import feature_tensor_batch

        rasters = np.asarray(rasters, dtype=np.float64)
        if len(rasters) == 0:
            return np.empty(0, dtype=np.float64)
        return self.predict_proba_features(
            feature_tensor_batch(rasters, self.block, self.keep)
        )

    def plane_feature_block(self):
        return self.block

    def plane_feature_tensor(self, plane):
        from repro.features.dct import feature_tensor_batch

        return feature_tensor_batch(
            np.asarray(plane, dtype=np.float64)[None], self.block, self.keep
        )[0]

    def predict_proba_features(self, feats):
        feats = np.asarray(feats, dtype=np.float64)
        if len(feats) == 0:
            return np.empty(0, dtype=np.float64)
        # DC channel carries block means; any deterministic reduction works
        return np.minimum(1.0, feats[:, 0].mean(axis=(1, 2)))


class TestPlaneFeaturePath:
    """The band plane is feature-transformed once and windows slice it."""

    def test_plane_features_match_clip_path(self, tiled_layer):
        det = FeatureMeanDetector()
        clip = _scan(det, tiled_layer, raster_plane=False, dedup=False)
        rast = _scan(det, tiled_layer, raster_plane=True, dedup=False)
        assert rast.centers == clip.centers
        np.testing.assert_allclose(rast.scores, clip.scores, atol=1e-12)
        assert np.array_equal(rast.flagged, clip.flagged)
        # the fast path actually ran: one transform per band, not none
        assert rast.telemetry.counters["feature_planes"] >= 1
        assert rast.telemetry.counters["feature_planes"] == (
            rast.telemetry.counters["raster_bands"]
        )

    def test_plane_features_match_raster_window_path(self, tiled_layer):
        """Feature slices must equal per-window transforms bit-for-bit."""
        det = FeatureMeanDetector()
        rast = _scan(det, tiled_layer, raster_plane=True, dedup=False)

        class NoPlane(FeatureMeanDetector):
            plane_feature_block = None  # hides the hook; raster fallback

        fallback = _scan(NoPlane(), tiled_layer, raster_plane=True, dedup=False)
        assert fallback.telemetry.counters.get("feature_planes", 0) == 0
        assert np.array_equal(rast.scores, fallback.scores)

    def test_misaligned_step_falls_back_to_raster_windows(self, tiled_layer):
        det = FeatureMeanDetector()
        engine = ScanEngine(det, raster_plane=True, dedup=False)
        # step 96 nm is not a multiple of the 64 nm feature-block pitch
        report = engine.scan(tiled_layer, REGION, step_nm=96, keep_clips=False)
        assert report.scan_path == "raster"
        assert report.telemetry.counters.get("feature_planes", 0) == 0
        clip = ScanEngine(det, raster_plane=False, dedup=False).scan(
            tiled_layer, REGION, step_nm=96, keep_clips=False
        )
        np.testing.assert_allclose(report.scores, clip.scores, atol=1e-12)

    def test_dedup_path_ignores_plane_features(self, tiled_layer):
        """Dedup fingerprints raw rasters; the feature path must not leak."""
        det = FeatureMeanDetector()
        rast = _scan(det, tiled_layer, raster_plane=True, dedup=True)
        assert rast.telemetry.counters.get("feature_planes", 0) == 0
        direct = _scan(det, tiled_layer, raster_plane=True, dedup=False)
        assert np.array_equal(rast.scores, direct.scores)


class TestEmptyInputRegressions:
    def test_predict_on_empty(self):
        det = RasterMeanDetector()
        assert det.predict([]).shape == (0,)
        assert det.predict_proba([]).shape == (0,)
        assert det.predict_proba_rasters(np.zeros((0, 96, 96))).shape == (0,)

    def test_feature_detector_empty(self):
        det = make_logistic_density()
        det.fit(tiny_grating_dataset(), rng=np.random.default_rng(1))
        assert det.predict_proba([]).shape == (0,)
        assert det.predict([]).shape == (0,)
        assert det.predict_proba_rasters(np.zeros((0, 96, 96))).shape == (0,)

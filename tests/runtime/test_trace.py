"""Span tracing: JSONL structure, span tree, zero perturbation of scores."""

import json

import numpy as np
import pytest

from repro.runtime import (
    NULL_TRACER,
    TRACE_SCHEMA,
    EngineConfig,
    ProgressReporter,
    ScanEngine,
    Telemetry,
    Tracer,
    read_trace,
)
from repro.shallow import make_logistic_density

from .conftest import DensityDetector, GradedDensityDetector, tiny_grating_dataset


def traced_scan(detector, layer, region, tmp_path, **flat):
    config = EngineConfig.from_kwargs(trace_dir=tmp_path / "trace", **flat)
    report = ScanEngine(detector, config=config).scan(layer, region)
    return report, read_trace(Tracer.path_in(tmp_path / "trace"))


def fitted_raster_detector():
    det = make_logistic_density()
    det.fit(tiny_grating_dataset(), rng=np.random.default_rng(1))
    return det


class TestNullTracer:
    def test_disabled_and_shared_span(self):
        assert NULL_TRACER.enabled is False
        span = NULL_TRACER.span("anything", kind="chunk", n=3)
        assert span is NULL_TRACER.span("other")
        with span as s:
            s.set(whatever=1)
        NULL_TRACER.event("noop", x=2)
        NULL_TRACER.close()


class TestTraceFile:
    def test_every_line_parses_and_brackets_match(self, layer, region, tmp_path):
        _report, records = traced_scan(
            GradedDensityDetector(), layer, region, tmp_path
        )
        assert records[0]["ev"] == "trace_start"
        assert records[0]["schema"] == TRACE_SCHEMA
        assert records[-1]["ev"] == "trace_end"
        opened = {r["id"] for r in records if r["ev"] == "span_open"}
        closed = {r["id"] for r in records if r["ev"] == "span_close"}
        assert opened == closed and opened

    def test_span_tree_shape(self, layer, region, tmp_path):
        _report, records = traced_scan(
            GradedDensityDetector(), layer, region, tmp_path
        )
        opens = [r for r in records if r["ev"] == "span_open"]
        scans = [r for r in opens if r["kind"] == "scan"]
        assert len(scans) == 1 and scans[0]["parent"] is None
        scan_id = scans[0]["id"]
        phases = [r for r in opens if r["kind"] == "phase"]
        assert phases and all(p["parent"] == scan_id for p in phases)
        chunks = [r for r in opens if r["kind"] == "chunk"]
        assert chunks
        phase_ids = {p["id"] for p in phases}
        assert all(c["parent"] in phase_ids | {scan_id} for c in chunks)

    def test_chunk_spans_cover_every_scored_window(
        self, layer, region, tmp_path
    ):
        report, records = traced_scan(
            GradedDensityDetector(), layer, region, tmp_path
        )
        chunk_closes = [
            r
            for r in records
            if r["ev"] == "span_close" and r["kind"] == "chunk"
        ]
        assert sum(c["n"] for c in chunk_closes) == report.n_scored
        for close in chunk_closes:
            assert close["wall_s"] >= 0
            assert close["cpu_s"] >= 0
            assert "attempts" in close and "counters" in close

    def test_scan_span_counter_deltas(self, layer, region, tmp_path):
        report, records = traced_scan(
            GradedDensityDetector(), layer, region, tmp_path
        )
        scan_close = next(
            r
            for r in records
            if r["ev"] == "span_close" and r["kind"] == "scan"
        )
        assert scan_close["counters"]["windows"] == report.n_windows
        assert scan_close["counters"]["scored"] == report.n_scored
        assert scan_close["n_scored"] == report.n_scored

    def test_records_are_sorted_json(self, layer, region, tmp_path):
        traced_scan(GradedDensityDetector(), layer, region, tmp_path)
        for line in Tracer.path_in(tmp_path / "trace").read_text().splitlines():
            record = json.loads(line)
            assert line == json.dumps(record, sort_keys=True)


class TestZeroPerturbation:
    @pytest.mark.parametrize(
        "make_detector,flat",
        [
            (GradedDensityDetector, {"dedup": False}),  # direct clip path
            (GradedDensityDetector, {}),  # dedup clip path
            (fitted_raster_detector, {"raster_plane": True}),  # raster path
        ],
        ids=["direct", "dedup", "raster"],
    )
    def test_scores_byte_identical_with_tracing(
        self, layer, region, tmp_path, make_detector, flat
    ):
        detector = make_detector()
        plain = ScanEngine(
            detector, config=EngineConfig.from_kwargs(**flat)
        ).scan(layer, region)
        traced, records = traced_scan(
            detector, layer, region, tmp_path, progress=lambda e: None, **flat
        )
        assert traced.scores.tobytes() == plain.scores.tobytes()
        assert np.array_equal(traced.flagged, plain.flagged)
        assert traced.scan_path == plain.scan_path
        assert records[-1]["ev"] == "trace_end"

    def test_collaborators_restored_after_scan(self, layer, region, tmp_path):
        engine = ScanEngine(
            DensityDetector(),
            config=EngineConfig.from_kwargs(trace_dir=tmp_path / "t"),
        )
        engine.scan(layer, region)
        assert engine.cache.tracer is NULL_TRACER


class TestProgress:
    def test_heartbeats_reach_callable_sink(self, layer, region):
        events = []
        config = EngineConfig.from_kwargs(
            progress=events.append, progress_every_chunks=1, chunk_clips=16
        )
        report = ScanEngine(GradedDensityDetector(), config=config).scan(
            layer, region
        )
        assert len(events) >= 2
        assert events[-1].phase == "done"
        assert events[-1].windows_done == report.n_windows
        assert events[-1].fraction == 1.0
        done = [e.windows_done for e in events]
        assert done == sorted(done)

    def test_reporter_cadence(self):
        telemetry = Telemetry()
        seen = []
        reporter = ProgressReporter(
            telemetry, windows_total=100, every_chunks=3, sinks=[seen.append]
        )
        for _ in range(7):
            telemetry.count("windows", 10)
            reporter.tick("score")
        assert len(seen) == 2  # chunks 3 and 6
        reporter.emit("done")
        assert seen[-1].phase == "done"
        assert seen[-1].windows_done == 70

    def test_event_format_is_human_line(self):
        telemetry = Telemetry()
        telemetry.count("windows", 50)
        telemetry.count("scored", 25)
        reporter = ProgressReporter(telemetry, windows_total=100)
        line = reporter.snapshot("score").format()
        assert "50/100 windows" in line
        assert "50% dedup" in line

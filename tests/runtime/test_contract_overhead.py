"""Contracts must observe, never perturb: ScanEngine results are
byte-identical with checking enabled vs disabled, on both scan paths.

(The companion micro-benchmark in ``benchmarks/test_contract_overhead.py``
shows the disabled-path overhead is unmeasurable; this test pins the
stronger property that enabling the checks changes nothing either.)
"""

import numpy as np
import pytest

from repro import contracts
from repro.geometry import Layer, Rect
from repro.runtime import ScanEngine
from repro.shallow import make_logistic_density

from .conftest import tiny_grating_dataset
from .test_raster_plane import RasterMeanDetector

REGION = Rect(0, 0, 4096, 4096)


@pytest.fixture(autouse=True)
def contracts_off():
    contracts.disable()
    yield
    contracts.disable()


@pytest.fixture
def tiled_layer() -> Layer:
    layer = Layer("metal1")
    rects = []
    for ox, oy in [(0, 0), (2048, 0), (0, 2048), (2048, 2048)]:
        for i in range(8):
            rects.append(Rect(ox, oy + i * 256, ox + 2048, oy + i * 256 + 64))
        rects.append(Rect(ox + 300, oy + 100, ox + 420, oy + 1900))
    layer.add_rects(rects)
    return layer


def _scan(detector, layer, **kw):
    engine = ScanEngine(detector, **kw)
    return engine.scan(layer, REGION, keep_clips=False)


def _assert_identical(a, b):
    assert a.centers == b.centers
    assert a.scores.dtype == b.scores.dtype
    assert a.scores.tobytes() == b.scores.tobytes()
    assert np.array_equal(a.flagged, b.flagged)


@pytest.mark.parametrize("raster_plane", [False, True], ids=["clip", "raster"])
@pytest.mark.parametrize("dedup", [False, True], ids=["direct", "dedup"])
def test_scan_identical_with_contracts_on(tiled_layer, raster_plane, dedup):
    det = RasterMeanDetector()
    baseline = _scan(det, tiled_layer, raster_plane=raster_plane, dedup=dedup)
    with contracts.checking():
        checked = _scan(det, tiled_layer, raster_plane=raster_plane, dedup=dedup)
    assert not contracts.enabled()
    _assert_identical(baseline, checked)


def test_fitted_detector_scan_identical(tiled_layer):
    det = make_logistic_density()
    det.fit(tiny_grating_dataset(), rng=np.random.default_rng(1))
    baseline = _scan(det, tiled_layer, raster_plane=True, dedup=True)
    with contracts.checking():
        checked = _scan(det, tiled_layer, raster_plane=True, dedup=True)
    _assert_identical(baseline, checked)


def test_enabled_contracts_hold_across_worker_pool(tiled_layer):
    """REPRO_CONTRACTS propagates to spawn-ed workers via the environment;
    in-process, the enabled engine path itself must satisfy every contract."""
    det = RasterMeanDetector()
    with contracts.checking():
        report = _scan(det, tiled_layer, raster_plane=True, dedup=False)
    assert report.n_windows == len(report.scores)

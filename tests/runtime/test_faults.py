"""Deterministic fault injection and the supervision ladder.

Three layers of proof:

* the **harness** itself — spec grammar, seeded determinism, and that
  every injection point actually fires when enabled (the CI chaos job
  inverts the usual gate: a fault that *cannot* fire is the failure),
* the **pool** — each fault kind (crash, error, stall, bad scores) is
  survived with byte-identical scores and the right telemetry,
* the **engine** — a chaos scan with workers dying and the cache being
  corrupted mid-run still produces the exact flagged set of a clean run.
"""

import multiprocessing

import numpy as np
import pytest

from repro.contracts import ContractViolation
from repro.geometry import Rect, extract_clip, iter_tile_centers
from repro.runtime import (
    INJECTION_POINTS,
    FaultInjector,
    FaultPolicy,
    ScanEngine,
    ScoreCache,
    WorkerPool,
)
from repro.runtime.faults import (  # lint: disable=no-deep-runtime-import  (tests the injection seam's private helpers directly)
    InjectedFault,
    _fires,
    execute_chunk_fault,
)

from ._fault_doubles import RasterMeanDetector, WorkerHostileDetector
from .conftest import DensityDetector, tiny_grating_dataset

pytestmark = pytest.mark.filterwarnings("ignore::UserWarning")

FAST = dict(max_chunk_retries=2, retry_backoff_s=0.01, chunk_timeout_s=5.0)


def _clip_chunks(n_chunks=4, per_chunk=6):
    clips = tiny_grating_dataset(n=n_chunks * per_chunk).clips
    return [
        clips[i : i + per_chunk] for i in range(0, len(clips), per_chunk)
    ]


# ----------------------------------------------------------------------
# spec grammar
# ----------------------------------------------------------------------
def test_parse_full_spec():
    policy = FaultPolicy.parse(
        "seed=7, worker_crash@1|3, nan_score=0.25, stall_s=0.5"
    )
    assert policy.seed == 7
    assert policy.stall_s == 0.5
    assert policy.rule("worker_crash").indices == (1, 3)
    assert policy.rule("nan_score").rate == 0.25
    assert policy.rule("chunk_error") is None


def test_parse_empty_spec_never_fires():
    injector = FaultInjector(FaultPolicy.parse(""))
    for point in INJECTION_POINTS:
        assert not any(injector.fires(point) for _ in range(50))
    assert injector.fired == {}


@pytest.mark.parametrize(
    "bad",
    [
        "frobnicate@0",            # unknown point
        "frobnicate=0.5",          # unknown key
        "worker_crash@x",          # non-integer index
        "worker_crash@-1",         # negative index
        "nan_score=1.5",           # rate outside [0, 1]
        "nan_score=maybe",         # non-float rate
        "seed=soon",               # non-int seed
        "stall_s=-1",              # negative stall
        "worker_crash",            # bare clause
    ],
)
def test_parse_rejects_junk(bad):
    with pytest.raises(ValueError):
        FaultPolicy.parse(bad)


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------
def test_same_seed_same_schedule():
    def schedule(seed):
        injector = FaultInjector(FaultPolicy.parse(f"seed={seed},chunk_error=0.3"))
        return [injector.fires("chunk_error") for _ in range(200)]

    first = schedule(11)
    assert first == schedule(11)
    assert any(first)
    assert not all(first)
    assert first != schedule(12)


def test_rate_is_roughly_honoured():
    rule = FaultPolicy.parse("chunk_error=0.2").rule("chunk_error")
    hits = sum(_fires(0, rule, i) for i in range(2000))
    assert 250 < hits < 550


@pytest.mark.parametrize("point", INJECTION_POINTS)
def test_every_point_fires_when_enabled(point):
    """The inverted gate: an unfireable injection point is a bug."""
    injector = FaultInjector(FaultPolicy.parse(f"seed=1,{point}@1"))
    assert not injector.fires(point)
    assert injector.fires(point)
    assert not injector.fires(point)
    assert injector.fired == {point: 1}


def test_chunk_fault_precedence_and_one_opportunity_each():
    injector = FaultInjector(
        FaultPolicy.parse("worker_crash@0,chunk_error@0|1,chunk_stall@0|1|2")
    )
    assert injector.chunk_fault() == ("worker_crash",)
    assert injector.chunk_fault() == ("chunk_error",)
    assert injector.chunk_fault() == ("chunk_stall", 0.05)
    assert injector.chunk_fault() is None


def test_execute_chunk_fault_in_process():
    with pytest.raises(InjectedFault):
        execute_chunk_fault(("worker_crash",), in_process=True)
    with pytest.raises(InjectedFault):
        execute_chunk_fault(("chunk_error",), in_process=True)
    execute_chunk_fault(("chunk_stall", 0.0), in_process=True)
    execute_chunk_fault(None)


def test_truncate_file_halves_bytes(tmp_path):
    target = tmp_path / "blob.bin"
    target.write_bytes(b"x" * 100)
    injector = FaultInjector(FaultPolicy.parse("cache_truncate@0"))
    assert injector.truncate_file(target, "cache_truncate")
    assert len(target.read_bytes()) == 50
    target.write_bytes(b"x" * 100)
    assert not injector.truncate_file(target, "cache_truncate")
    assert len(target.read_bytes()) == 100


# ----------------------------------------------------------------------
# pool supervision, fault by fault
# ----------------------------------------------------------------------
def _pool_scores(detector, chunks, **kw):
    with WorkerPool(detector, **kw) as pool:
        return np.concatenate(list(pool.map_scores(iter(chunks)))), pool


@pytest.mark.parametrize("workers", [1, 2])
def test_chunk_error_is_retried_byte_identical(workers):
    chunks = _clip_chunks()
    baseline, _ = _pool_scores(DensityDetector(), chunks)
    scores, pool = _pool_scores(
        DensityDetector(), chunks, workers=workers,
        faults="seed=1,chunk_error@0|2", **FAST,
    )
    assert np.array_equal(scores, baseline)
    assert pool.telemetry.counter("worker_errors") >= 2
    assert pool.telemetry.counter("pool_retries") >= 2
    assert pool.faults.fired["chunk_error"] == 2


def test_worker_crash_is_survived_byte_identical():
    chunks = _clip_chunks()
    baseline, _ = _pool_scores(DensityDetector(), chunks)
    scores, pool = _pool_scores(
        DensityDetector(), chunks, workers=2,
        faults="worker_crash@0", max_chunk_retries=2,
        retry_backoff_s=0.01, chunk_timeout_s=1.5,
    )
    assert np.array_equal(scores, baseline)
    assert pool.faults.fired["worker_crash"] == 1
    assert pool.telemetry.counter("pool_timeouts") >= 1
    assert pool.telemetry.counter("pool_retries") >= 1


def test_chunk_stall_trips_timeout_and_recovers():
    chunks = _clip_chunks()
    baseline, _ = _pool_scores(DensityDetector(), chunks)
    scores, pool = _pool_scores(
        DensityDetector(), chunks, workers=2,
        faults="chunk_stall@0,stall_s=30", max_chunk_retries=2,
        retry_backoff_s=0.01, chunk_timeout_s=0.5,
    )
    assert np.array_equal(scores, baseline)
    assert pool.telemetry.counter("pool_timeouts") >= 1


@pytest.mark.parametrize("workers", [1, 2])
@pytest.mark.parametrize("point", ["nan_score", "range_score"])
def test_bad_scores_repaired_byte_identical(point, workers):
    chunks = _clip_chunks()
    baseline, _ = _pool_scores(DensityDetector(), chunks)
    scores, pool = _pool_scores(
        DensityDetector(), chunks, workers=workers,
        faults=f"{point}@0", **FAST,
    )
    assert np.array_equal(scores, baseline)
    assert pool.telemetry.counter("score_repairs") == 1
    assert pool.faults.fired[point] == 1


def test_bad_scores_raise_when_policy_says_so():
    chunks = _clip_chunks()
    with pytest.raises(ContractViolation):
        _pool_scores(
            DensityDetector(), chunks, faults="nan_score@0",
            on_invalid_score="raise", **FAST,
        )


def test_retry_exhaustion_surfaces_real_error():
    """A chunk that fails in-process every time must raise, not loop."""

    class AlwaysBroken(DensityDetector):  # lint: disable=raster-parity -- pool tests use the clip path only
        def predict_proba(self, clips):
            raise RuntimeError("permanently broken")

    with pytest.raises(RuntimeError, match="permanently broken"):
        _pool_scores(AlwaysBroken(), _clip_chunks(), max_chunk_retries=1,
                     retry_backoff_s=0.01)


def test_full_ladder_rebuild_then_degrade():
    """Permanent worker-side failure walks retry -> rebuild -> in-process."""
    chunks = _clip_chunks()
    detector = WorkerHostileDetector()
    baseline = np.concatenate(
        [detector.predict_proba(chunk) for chunk in chunks]
    )
    scores, pool = _pool_scores(
        detector, chunks, workers=2, max_chunk_retries=1,
        retry_backoff_s=0.01, chunk_timeout_s=5.0,
        max_pool_rebuilds=1, degrade_after_failures=4,
    )
    assert np.array_equal(scores, baseline)
    t = pool.telemetry
    assert t.counter("pool_rebuilds") == 1
    assert t.counter("pool_degraded_chunks") >= 1
    assert t.counter("pool_degradations") == 1
    assert t.counter("worker_errors") >= 4


# ----------------------------------------------------------------------
# engine-level chaos
# ----------------------------------------------------------------------
CHAOS_SPEC = "seed=3,worker_crash@1,nan_score@0,chunk_error=0.2,cache_truncate@0"


def test_chaos_scan_flags_byte_identical(layer, region, tmp_path):
    """The acceptance drill: kill a worker and corrupt the cache mid-scan;
    the flagged set must not move by a single window."""
    clean = ScanEngine(
        DensityDetector(), workers=1, chunk_clips=4, raster_plane=False
    ).scan(layer, region, keep_clips=False)

    cache_dir = tmp_path / "cache"
    chaos = ScanEngine(
        DensityDetector(), workers=2, cache_dir=cache_dir, chunk_clips=4,
        raster_plane=False, chunk_timeout_s=1.5, max_chunk_retries=2,
        retry_backoff_s=0.01, faults=CHAOS_SPEC,
    )
    report = chaos.scan(layer, region, keep_clips=False)

    assert np.array_equal(report.scores, clean.scores)
    assert np.array_equal(report.flagged, clean.flagged)
    # the injected faults really happened...
    assert chaos.faults.fired["worker_crash"] == 1
    assert chaos.faults.fired["nan_score"] == 1
    assert chaos.faults.fired["cache_truncate"] == 1
    # ...and every recovery left a telemetry trace
    t = report.telemetry
    assert t.counter("pool_retries") >= 2
    assert t.counter("pool_timeouts") >= 1
    assert t.counter("score_repairs") >= 1
    assert t.counter("fault_worker_crash") == 1
    assert t.counter("fault_cache_truncate") == 1

    # the truncated cache file is quarantined on the next open, and the
    # rescan (cold cache) still reproduces the same flagged set
    rescan = ScanEngine(
        DensityDetector(), workers=1, cache_dir=cache_dir, chunk_clips=4,
        raster_plane=False,
    )
    report2 = rescan.scan(layer, region, keep_clips=False)
    assert report2.telemetry.counter("cache_quarantined") == 1
    assert (cache_dir / "scan-scores.json.quarantined").exists()
    assert np.array_equal(report2.flagged, clean.flagged)


# ----------------------------------------------------------------------
# score validation on every scan path
# ----------------------------------------------------------------------
SMALL = Rect(0, 0, 2048, 2048)


def _engine(detector, *, raster, dedup, workers, **kw):
    return ScanEngine(
        detector, workers=workers, dedup=dedup, raster_plane=raster,
        chunk_clips=16, chunk_timeout_s=5.0, max_chunk_retries=2,
        retry_backoff_s=0.01, **kw,
    )


@pytest.mark.parametrize("workers", [1, 2])
@pytest.mark.parametrize(
    "raster,dedup",
    [(False, False), (False, True), (True, False), (True, True)],
    ids=["direct", "dedup", "raster-direct", "raster-dedup"],
)
def test_every_path_repairs_bad_scores(layer, raster, dedup, workers):
    detector = RasterMeanDetector() if raster else DensityDetector()
    clean = _engine(detector, raster=raster, dedup=dedup, workers=1).scan(
        layer, SMALL, keep_clips=False
    )
    assert clean.scan_path == ("raster" if raster else "clip")

    repaired = _engine(
        detector, raster=raster, dedup=dedup, workers=workers,
        faults="nan_score@0",
    ).scan(layer, SMALL, keep_clips=False)
    assert np.array_equal(repaired.scores, clean.scores)
    assert np.array_equal(repaired.flagged, clean.flagged)
    assert repaired.telemetry.counter("score_repairs") == 1


@pytest.mark.parametrize(
    "raster,dedup",
    [(False, False), (False, True), (True, False), (True, True)],
    ids=["direct", "dedup", "raster-direct", "raster-dedup"],
)
@pytest.mark.parametrize("point", ["nan_score", "range_score"])
def test_every_path_rejects_bad_scores_on_raise(layer, raster, dedup, point):
    detector = RasterMeanDetector() if raster else DensityDetector()
    engine = _engine(
        detector, raster=raster, dedup=dedup, workers=1,
        faults=f"{point}@0", on_invalid_score="raise",
    )
    with pytest.raises(ContractViolation):
        engine.scan(layer, SMALL, keep_clips=False)


# ----------------------------------------------------------------------
# CLI spec handling
# ----------------------------------------------------------------------
def test_cli_rejects_bad_fault_spec(tmp_path, capsys):
    from repro.cli import main
    from repro.geometry import Layout
    from repro.geometry.gdsii import write_gdsii

    layout = Layout("block")
    layout.layer("metal1").add_rects(
        [Rect(0, i * 256, 2048, i * 256 + 64) for i in range(8)]
    )
    gds = tmp_path / "chip.gds"
    write_gdsii(layout, gds)

    rc = main(
        [
            "scan-chip", str(gds), "--detector", "logistic-density",
            "--inject-faults", "frobnicate@0",
        ]
    )
    assert rc == 2
    assert "bad --inject-faults spec" in capsys.readouterr().err

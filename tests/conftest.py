"""Shared fixtures: deterministic RNGs, canonical clips, tiny datasets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import ClipDataset
from repro.geometry import Clip, Layer, Rect, extract_clip

WINDOW = 768
CORE = 256
CENTER = (600, 600)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


def clip_from_rects(rects, tag="test") -> Clip:
    """Build a clip centered at CENTER from absolute-coordinate rects."""
    layer = Layer("metal1")
    layer.add_rects(list(rects))
    return extract_clip(layer, CENTER, WINDOW, CORE, tag=tag)


@pytest.fixture
def grating_clip() -> Clip:
    """Comfortable 64/128 vertical grating through the window."""
    rects = [Rect(88 + i * 128, 100, 88 + i * 128 + 64, 1100) for i in range(8)]
    return clip_from_rects(rects, tag="grating")


@pytest.fixture
def tip_pair_clip() -> Clip:
    """Two wires facing tip-to-tip with a 64 nm gap at the center."""
    return clip_from_rects(
        [Rect(96, 568, 568, 632), Rect(632, 568, 1104, 632)], tag="tips"
    )


@pytest.fixture
def empty_clip() -> Clip:
    """A clip with no shapes at all."""
    window = Rect(0, 0, WINDOW, WINDOW)
    core = Rect.from_center(WINDOW // 2, WINDOW // 2, CORE, CORE)
    return Clip(window=window, core=core, rects=(), tag="empty")


def synthetic_labeled_clips(rng: np.random.Generator, n: int = 40):
    """Tiny clip population with *geometric* (non-litho) labels.

    Dense gratings (spacing 48) are labeled hotspot, sparse ones (spacing
    128) are not — a separable toy task for learner plumbing tests that
    avoids the cost of oracle labeling.
    """
    clips, labels = [], []
    for i in range(n):
        hot = bool(rng.integers(2))
        space = 48 if hot else 128
        width = 64
        pitch = width + space
        offset = int(rng.integers(0, 4)) * 32
        rects = [
            Rect(offset + 100 + k * pitch, 100, offset + 100 + k * pitch + width, 1100)
            for k in range(10)
        ]
        clips.append(clip_from_rects(rects, tag=f"synthetic{i}"))
        labels.append(int(hot))
    return clips, np.asarray(labels, dtype=np.int64)


@pytest.fixture
def tiny_dataset(rng) -> ClipDataset:
    clips, labels = synthetic_labeled_clips(rng, n=40)
    return ClipDataset(name="tiny", clips=clips, labels=labels)

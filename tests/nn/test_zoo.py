"""Tests for the architecture zoo."""

import numpy as np
import pytest

from repro.nn import build_feature_tensor_cnn, build_mlp, build_raster_cnn


class TestFeatureTensorCNN:
    def test_output_shape(self, rng):
        model = build_feature_tensor_cnn(16, 12, rng)
        out = model.forward(rng.normal(size=(3, 16, 12, 12)))
        assert out.shape == (3, 2)

    def test_grid_must_divide_by_4(self, rng):
        with pytest.raises(ValueError):
            build_feature_tensor_cnn(16, 10, rng)

    def test_width_scales_params(self, rng):
        small = build_feature_tensor_cnn(16, 12, rng, width=8)
        big = build_feature_tensor_cnn(16, 12, rng, width=32)
        assert big.n_parameters() > small.n_parameters()

    def test_backward_runs(self, rng):
        model = build_feature_tensor_cnn(4, 8, rng, width=4)
        out = model.forward(rng.normal(size=(2, 4, 8, 8)))
        model.backward(np.ones_like(out))
        assert all(np.isfinite(p.grad).all() for p in model.params())


class TestRasterCNN:
    def test_output_shape(self, rng):
        model = build_raster_cnn(96, rng)
        out = model.forward(rng.normal(size=(2, 1, 96, 96)))
        assert out.shape == (2, 2)

    def test_indivisible_raises(self, rng):
        with pytest.raises(ValueError):
            build_raster_cnn(100, rng)


class TestMLP:
    def test_output_shape(self, rng):
        model = build_mlp(30, rng, hidden=(16, 8))
        out = model.forward(rng.normal(size=(5, 30)))
        assert out.shape == (5, 2)

    def test_hidden_sizes_respected(self, rng):
        model = build_mlp(10, rng, hidden=(7,))
        dense_layers = [l for l in model.layers if hasattr(l, "w")]
        assert dense_layers[0].w.shape == (10, 7)
        assert dense_layers[-1].w.shape == (7, 2)

"""Tests for binarized layers: quantization, STE gradients, learning."""

import numpy as np
import pytest

from repro.nn import (
    BinaryConv2D,
    BinaryDense,
    Trainer,
    TrainConfig,
    binarize,
    build_binary_cnn,
    predict_proba,
    ste_mask,
)


class TestBinarize:
    def test_signs_and_scale(self):
        w = np.array([[0.5, -1.5], [2.0, -0.1]])
        signs, alpha = binarize(w)
        np.testing.assert_array_equal(signs, [[1, -1], [1, -1]])
        assert alpha == pytest.approx(np.abs(w).mean())

    def test_zero_maps_to_positive(self):
        signs, _ = binarize(np.array([0.0, -0.0]))
        assert signs[0] == 1.0

    def test_ste_mask(self):
        w = np.array([-2.0, -0.5, 0.5, 2.0])
        np.testing.assert_array_equal(ste_mask(w), [0, 1, 1, 0])


class TestBinaryDense:
    def test_forward_uses_binarized_weights(self, rng):
        layer = BinaryDense(2, 1, rng)
        layer.w.value = np.array([[0.3], [-0.7]])
        layer.b.value = np.array([0.0])
        out = layer.forward(np.array([[1.0, 1.0]]))
        alpha = 0.5  # mean(|0.3|, |0.7|)
        assert out[0, 0] == pytest.approx(alpha - alpha)

    def test_gradients_gated_by_ste(self, rng):
        layer = BinaryDense(3, 2, rng)
        layer.w.value = np.array(
            [[0.5, 2.0], [-0.5, -2.0], [0.1, 0.9]]
        )
        x = rng.normal(size=(4, 3))
        layer.forward(x)
        layer.backward(np.ones((4, 2)))
        # latent weights beyond |1| receive zero gradient
        assert layer.w.grad[0, 1] == 0.0
        assert layer.w.grad[1, 1] == 0.0
        assert layer.w.grad[0, 0] != 0.0

    def test_input_gradient_shape(self, rng):
        layer = BinaryDense(5, 3, rng)
        x = rng.normal(size=(2, 5))
        layer.forward(x)
        grad = layer.backward(np.ones((2, 3)))
        assert grad.shape == x.shape


class TestBinaryConv:
    def test_forward_shape(self, rng):
        layer = BinaryConv2D(2, 4, kernel=3, rng=rng)
        out = layer.forward(rng.normal(size=(2, 2, 8, 8)))
        assert out.shape == (2, 4, 8, 8)

    def test_weights_effectively_two_valued(self, rng):
        layer = BinaryConv2D(1, 2, kernel=3, rng=rng)
        layer.forward(rng.normal(size=(1, 1, 6, 6)))
        unique = np.unique(np.abs(layer._wb_mat))
        assert len(unique) == 1  # one magnitude: +/- alpha

    def test_backward_runs_and_gates(self, rng):
        layer = BinaryConv2D(1, 1, kernel=3, rng=rng)
        layer.w.value[0, 0, 0, 0] = 5.0  # saturated latent
        x = rng.normal(size=(1, 1, 6, 6))
        layer.forward(x)
        layer.backward(np.ones((1, 1, 6, 6)))
        assert layer.w.grad[0, 0, 0, 0] == 0.0


class TestBinaryCNN:
    def test_builds_and_runs(self, rng):
        model = build_binary_cnn(4, 8, rng, width=4)
        out = model.forward(rng.normal(size=(2, 4, 8, 8)))
        assert out.shape == (2, 2)

    def test_grid_check(self, rng):
        with pytest.raises(ValueError):
            build_binary_cnn(4, 10, rng)

    def test_learns_toy_task(self, rng):
        """Binarized net separates an easy synthetic image task."""
        n = 60
        x = np.zeros((n, 1, 8, 8))
        y = np.zeros(n, dtype=np.int64)
        for i in range(n):
            hot = i % 2
            y[i] = hot
            if hot:
                x[i, 0, 2:6, 2:6] = 1.0  # bright center
            else:
                x[i, 0, :2, :] = 1.0  # bright band at the bottom
        x += rng.normal(0, 0.05, x.shape)
        model = build_binary_cnn(1, 8, rng, width=4)
        Trainer(TrainConfig(epochs=15, batch_size=10, lr=3e-3)).fit(
            model, x, y, rng
        )
        probs = predict_proba(model, x)
        assert (((probs >= 0.5).astype(int)) == y).mean() >= 0.9

"""Tests for the CNN detectors on the toy separable clip task."""

import numpy as np
import pytest

from repro.nn import (
    CNNDetector,
    CNNDetectorConfig,
    RasterCNNDetector,
    RasterCNNDetectorConfig,
)


@pytest.fixture(scope="module")
def toy_dataset():
    from repro.data.dataset import ClipDataset

    from ..conftest import synthetic_labeled_clips

    rng = np.random.default_rng(1234)
    clips, labels = synthetic_labeled_clips(rng, n=44)
    return ClipDataset("toy", clips, labels)


class TestCNNDetector:
    def test_unfitted_raises(self, toy_dataset):
        with pytest.raises(RuntimeError):
            CNNDetector().predict_proba(toy_dataset.clips[:2])

    def test_learns_toy_task(self, toy_dataset, rng):
        det = CNNDetector(
            CNNDetectorConfig(epochs=6, biased_epsilon=None, width=8)
        )
        report = det.fit(toy_dataset, rng=rng)
        assert report.train_seconds > 0
        assert "params=" in report.notes
        pred = det.predict(toy_dataset.clips)
        assert (pred == toy_dataset.labels).mean() >= 0.9

    def test_biased_phase_runs(self, toy_dataset, rng):
        det = CNNDetector(
            CNNDetectorConfig(
                epochs=2, biased_epsilon=0.2, biased_epochs=1, width=4
            )
        )
        det.fit(toy_dataset, rng=rng)
        probs = det.predict_proba(toy_dataset.clips[:4])
        assert ((probs >= 0) & (probs <= 1)).all()

    def test_deterministic_given_rng(self, toy_dataset):
        scores = []
        for _ in range(2):
            det = CNNDetector(
                CNNDetectorConfig(epochs=2, biased_epsilon=None, width=4)
            )
            det.fit(toy_dataset, rng=np.random.default_rng(5))
            scores.append(det.predict_proba(toy_dataset.clips[:6]))
        np.testing.assert_allclose(scores[0], scores[1])


class TestRasterCNNDetector:
    def test_learns_toy_task(self, toy_dataset, rng):
        det = RasterCNNDetector(
            RasterCNNDetectorConfig(epochs=4, width=4, batch_size=8)
        )
        det.fit(toy_dataset, rng=rng)
        pred = det.predict(toy_dataset.clips)
        assert (pred == toy_dataset.labels).mean() >= 0.85

    def test_unfitted_raises(self, toy_dataset):
        with pytest.raises(RuntimeError):
            RasterCNNDetector().predict_proba(toy_dataset.clips[:1])


class TestPersistence:
    def test_save_load_roundtrip(self, toy_dataset, tmp_path):
        from repro.nn import CNNDetector, CNNDetectorConfig

        det = CNNDetector(
            CNNDetectorConfig(epochs=2, biased_epsilon=None, width=4)
        )
        det.fit(toy_dataset, rng=np.random.default_rng(5))
        before = det.predict_proba(toy_dataset.clips[:6])
        path = tmp_path / "model.npz"
        det.save(path)
        loaded = CNNDetector.load(path)
        after = loaded.predict_proba(toy_dataset.clips[:6])
        np.testing.assert_allclose(before, after, rtol=1e-10)
        assert loaded.threshold == det.threshold

    def test_save_unfitted_raises(self, tmp_path):
        from repro.nn import CNNDetector

        with pytest.raises(RuntimeError):
            CNNDetector().save(tmp_path / "x.npz")

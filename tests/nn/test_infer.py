"""The fused inference backend: parity, quantization gate, wiring.

The contract under test is the one the scan path relies on: a compiled
:class:`~repro.nn.infer.InferencePlan` is the *same function* as the
eval-mode layer-by-layer forward (float mode: logits within 1e-10 for
every zoo architecture), the int8 mode refuses to ship a model it has
measurably damaged, and the plan never allocates per call (the
``Workspace`` hands back the same buffers).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    BACKENDS,
    CNNDetector,
    CNNDetectorConfig,
    Dense,
    PlanCompileError,
    QuantizationError,
    Sequential,
    Workspace,
    build_feature_tensor_cnn,
    build_mlp,
    build_raster_cnn,
    compile_plan,
    quantization_report,
)
from repro.nn.binary import build_binary_cnn
from repro.nn.layers import BatchNorm


def _randomize_bn(model, rng):
    """Give BatchNorm non-trivial running stats (as training would)."""
    for layer in model.layers:
        if isinstance(layer, BatchNorm):
            layer.running_mean = rng.normal(
                scale=0.5, size=layer.running_mean.shape
            )
            layer.running_var = rng.uniform(
                0.5, 2.0, size=layer.running_var.shape
            )


def _build(arch, rng):
    """(model, input shape) for every zoo architecture, sized small."""
    if arch == "feature-tensor-cnn":
        return build_feature_tensor_cnn(4, 8, rng, width=8), (4, 8, 8)
    if arch == "raster-cnn":
        return build_raster_cnn(24, rng, width=4), (1, 24, 24)
    if arch == "mlp":
        return build_mlp(10, rng, hidden=(16, 8)), (10,)
    raise AssertionError(arch)


ARCHES = ("feature-tensor-cnn", "raster-cnn", "mlp")


class TestFloatParity:
    @pytest.mark.parametrize("arch", ARCHES)
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_fused_matches_layer_by_layer(self, arch, seed):
        rng = np.random.default_rng(seed)
        model, shape = _build(arch, rng)
        _randomize_bn(model, rng)
        model.train_mode(False)
        x = rng.normal(size=(5,) + shape)

        plan = compile_plan(model)
        np.testing.assert_allclose(
            plan.forward(x), model.forward(x), rtol=0, atol=1e-10
        )

    def test_repeated_calls_stay_consistent(self):
        # workspace reuse must not leak state between batches
        rng = np.random.default_rng(3)
        model, shape = _build("raster-cnn", rng)
        _randomize_bn(model, rng)
        model.train_mode(False)
        plan = compile_plan(model)
        a = rng.normal(size=(4,) + shape)
        b = rng.normal(size=(4,) + shape)
        plan.forward(a)
        got_b = plan.forward(b).copy()
        np.testing.assert_allclose(got_b, model.forward(b), atol=1e-10)
        np.testing.assert_allclose(
            plan.forward(a), model.forward(a), atol=1e-10
        )

    def test_partial_batch_after_full_batch(self):
        # last band chunk is smaller: buffers must resize correctly
        rng = np.random.default_rng(4)
        model, shape = _build("feature-tensor-cnn", rng)
        model.train_mode(False)
        plan = compile_plan(model)
        full = rng.normal(size=(8,) + shape)
        plan.forward(full)
        np.testing.assert_allclose(
            plan.forward(full[:3]), model.forward(full[:3]), atol=1e-10
        )

    def test_predict_proba_is_softmax_of_logits(self):
        rng = np.random.default_rng(5)
        model, shape = _build("mlp", rng)
        model.train_mode(False)
        plan = compile_plan(model)
        x = rng.normal(size=(6,) + shape)
        probs = plan.predict_proba(x, batch_size=4)
        assert probs.dtype == np.float64 and probs.shape == (6,)
        assert ((probs >= 0) & (probs <= 1)).all()

    def test_describe_shows_fusion(self):
        rng = np.random.default_rng(6)
        model, _ = _build("raster-cnn", rng)
        plan = compile_plan(model)
        text = plan.describe()
        # BN folded into convs, ReLU fused: no standalone affine/relu ops
        assert "conv+relu" in text and "affine" not in text
        assert " relu" not in text


class TestStats:
    def test_fixed_counter_key_set(self):
        rng = np.random.default_rng(7)
        model, shape = _build("mlp", rng)
        plan = compile_plan(model)
        expected = {"infer_batches", "infer_windows", "infer_int8_windows"}
        assert set(plan.stats) == expected
        plan.forward(rng.normal(size=(3,) + shape))
        assert plan.stats["infer_batches"] == 1
        assert plan.stats["infer_windows"] == 3
        assert plan.stats["infer_int8_windows"] == 0  # float plan
        plan.reset_stats()
        assert set(plan.stats) == expected
        assert all(v == 0 for v in plan.stats.values())

    def test_int8_windows_counted_in_int8_mode(self):
        rng = np.random.default_rng(8)
        model, shape = _build("mlp", rng)
        plan = compile_plan(model, mode="int8")
        plan.forward(rng.normal(size=(4,) + shape))
        assert plan.stats["infer_int8_windows"] == 4


class TestWorkspace:
    def test_buffers_persist_across_calls(self):
        ws = Workspace()
        a = ws.empty(("x",), (4, 4), np.dtype(np.float64))
        b = ws.empty(("x",), (4, 4), np.dtype(np.float64))
        assert a is b

    def test_shape_change_reallocates_only_that_buffer(self):
        ws = Workspace()
        a = ws.empty(("a",), (4,), np.dtype(np.float64))
        b = ws.empty(("b",), (4,), np.dtype(np.float64))
        a2 = ws.empty(("a",), (8,), np.dtype(np.float64))
        assert a2 is not a
        assert ws.empty(("b",), (4,), np.dtype(np.float64)) is b

    def test_zeros_not_rezeroed_on_reuse(self):
        # conv padding relies on the halo staying zero while the
        # interior is overwritten; re-zeroing every call would defeat
        # the persistent-buffer design
        ws = Workspace()
        buf = ws.zeros(("z",), (3,), np.dtype(np.float64))
        assert (buf == 0).all()
        buf[:] = 7.0
        again = ws.zeros(("z",), (3,), np.dtype(np.float64))
        assert again is buf and (again == 7.0).all()

    def test_nbytes_and_clear(self):
        ws = Workspace()
        ws.empty(("x",), (10,), np.dtype(np.float64))
        assert ws.nbytes() == 80
        ws.clear()
        assert ws.nbytes() == 0


class TestCompileErrors:
    def test_binary_layers_rejected(self):
        rng = np.random.default_rng(9)
        model = build_binary_cnn(4, 8, rng, width=8)
        with pytest.raises(PlanCompileError):
            compile_plan(model)

    def test_bad_mode_rejected(self):
        rng = np.random.default_rng(10)
        model, _ = _build("mlp", rng)
        with pytest.raises(ValueError, match="mode"):
            compile_plan(model, mode="int4")


class TestQuantizationGate:
    def _model_and_calibration(self, seed=11):
        rng = np.random.default_rng(seed)
        model, shape = _build("mlp", rng)
        model.train_mode(False)
        calibration = rng.normal(size=(64,) + shape)
        return model, calibration

    def test_gate_rejects_over_quantized_model(self):
        # blow up one weight element per output column: the per-channel
        # scale then quantizes the remaining (information-carrying)
        # weights to a handful of levels, and the probabilities drift
        # beyond any reasonable budget
        model, calibration = self._model_and_calibration()
        first = next(l for l in model.layers if isinstance(l, Dense))
        first.w.value[0, :] = 300.0 * np.sign(first.w.value[0, :] + 1e-9)
        with pytest.raises(QuantizationError, match="REJECT"):
            compile_plan(
                model,
                mode="int8",
                calibration=calibration,
                max_delta_proba=1e-6,
            )

    def test_gate_passes_well_conditioned_model(self):
        model, calibration = self._model_and_calibration()
        plan = compile_plan(
            model, mode="int8", calibration=calibration,
            max_delta_proba=0.05, max_flag_disagreement=0.05,
        )
        assert plan.quant_report is not None
        assert plan.quant_report.passed
        assert "PASS" in plan.quant_report.summary()
        # gating ran the calibration through both plans; stats were reset
        assert plan.stats["infer_windows"] == 0

    def test_int8_round_trip_stays_close_when_gated(self):
        model, calibration = self._model_and_calibration()
        float_plan = compile_plan(model)
        int8_plan = compile_plan(model, mode="int8")
        report = quantization_report(
            float_plan, int8_plan, calibration, max_delta_proba=0.05
        )
        assert report.max_delta_proba <= 0.05

    def test_empty_calibration_rejected(self):
        model, calibration = self._model_and_calibration()
        with pytest.raises(ValueError, match="non-empty"):
            quantization_report(
                compile_plan(model),
                compile_plan(model, mode="int8"),
                calibration[:0],
            )


class TestDetectorBackends:
    @pytest.fixture(scope="class")
    def fitted(self):
        from repro.data.benchmarks import SUITE_CONFIGS
        from repro.data.dataset import ClipDataset
        from repro.data.synth import generate_clips
        from repro.litho import HotspotOracle

        rng = np.random.default_rng(0)
        clips, _ = generate_clips(rng, SUITE_CONFIGS[0].mix, 48, 768, 256)
        labels = HotspotOracle().label_many(clips)
        train = ClipDataset(name="t", clips=clips, labels=labels)
        det = CNNDetector(
            CNNDetectorConfig(epochs=2, biased_epsilon=None)
        )
        det.fit(train, rng=np.random.default_rng(1))
        return det, clips

    def test_backend_validation(self, fitted):
        det, _ = fitted
        with pytest.raises(ValueError, match="backend"):
            det.set_backend("tensorrt")

    def test_fused_scores_match_layers(self, fitted):
        det, clips = fitted
        base = det.predict_proba(clips)
        det.set_backend("fused")
        fused = det.predict_proba(clips)
        np.testing.assert_allclose(fused, base, rtol=0, atol=1e-10)
        assert (fused >= det.threshold).tolist() == (
            base >= det.threshold
        ).tolist()
        assert det.infer_stats()["infer_windows"] == len(clips)
        det.set_backend("layers")

    def test_int8_backend_passes_gate_and_agrees_on_flags(self, fitted):
        det, clips = fitted
        base = det.predict_proba(clips)
        det.set_backend("fused-int8")
        quant = det.predict_proba(clips)
        report = det._get_plan().quant_report
        assert report is not None and report.passed
        assert (quant >= det.threshold).tolist() == (
            base >= det.threshold
        ).tolist()
        det.set_backend("layers")

    def test_backend_survives_save_load(self, fitted, tmp_path):
        det, clips = fitted
        det.set_backend("fused")
        det.save(tmp_path / "m.npz")
        loaded = CNNDetector.load(tmp_path / "m.npz")
        assert loaded.backend == "fused"
        np.testing.assert_allclose(
            loaded.predict_proba(clips[:8]),
            det.predict_proba(clips[:8]),
            atol=1e-10,
        )
        det.set_backend("layers")

    def test_plan_not_pickled(self, fitted):
        import pickle

        det, _ = fitted
        det.set_backend("fused")
        assert det._plan is not None
        clone = pickle.loads(pickle.dumps(det))
        assert clone._plan is None  # recompiled lazily on first use
        det.set_backend("layers")


class TestEngineWiring:
    def test_engine_rejects_backend_on_unaware_detector(self):
        from repro.runtime import EngineConfig, ScanEngine
        from repro.shallow import make_logistic_density

        config = EngineConfig.from_kwargs(infer_backend="fused")
        with pytest.raises(TypeError, match="infer_backend"):
            ScanEngine(make_logistic_density(), config=config)

    def test_config_rejects_unknown_backend(self):
        from repro.runtime import EngineConfig

        with pytest.raises(ValueError, match="infer_backend"):
            EngineConfig.from_kwargs(infer_backend="cuda")

    def test_backends_tuple_is_the_contract(self):
        assert BACKENDS == ("layers", "fused", "fused-int8")

"""Tests for biased learning: the false-alarm knob must turn the right way."""

import numpy as np
import pytest

from repro.nn import (
    BiasedConfig,
    Dense,
    ReLU,
    Sequential,
    biased_fit,
    predict_proba,
)


def make_mlp(seed):
    rng = np.random.default_rng(seed)
    return Sequential([Dense(2, 16, rng), ReLU(), Dense(16, 2, rng)])


def overlapping_blobs(rng, n=300):
    """Deliberately overlapping classes: some points are ambiguous."""
    x0 = rng.normal(-0.7, 1.0, size=(2 * n // 3, 2))
    x1 = rng.normal(0.7, 1.0, size=(n // 3, 2))
    x = np.vstack([x0, x1])
    y = np.array([0] * (2 * n // 3) + [1] * (n // 3))
    return x, y


class TestBiasedConfig:
    def test_bad_epsilon_raises(self):
        with pytest.raises(ValueError):
            BiasedConfig(epsilon=0.6)


class TestBiasedFit:
    def test_two_histories(self, rng):
        x, y = overlapping_blobs(rng)
        model = make_mlp(0)
        h1, h2 = biased_fit(
            model, x, y, rng, BiasedConfig(base_epochs=4, biased_epochs=3)
        )
        assert h1.epochs_run == 4
        assert h2.epochs_run == 3

    def test_zero_biased_epochs_skips_phase2(self, rng):
        x, y = overlapping_blobs(rng)
        model = make_mlp(0)
        _h1, h2 = biased_fit(
            model, x, y, rng, BiasedConfig(base_epochs=2, biased_epochs=0)
        )
        assert h2.epochs_run == 0

    def test_epsilon_raises_recall_and_false_alarms(self, rng):
        """Larger epsilon biases the boundary into the NHS side: hotspot
        recall must not drop, false alarms must not drop either."""
        x, y = overlapping_blobs(rng)
        recall = {}
        false_alarms = {}
        for eps in (0.0, 0.3):
            model = make_mlp(7)
            biased_fit(
                model,
                x,
                y,
                np.random.default_rng(7),
                BiasedConfig(base_epochs=10, biased_epochs=8, epsilon=eps),
            )
            pred = predict_proba(model, x) >= 0.5
            recall[eps] = pred[y == 1].mean()
            false_alarms[eps] = int((pred & (y == 0)).sum())
        assert recall[0.3] >= recall[0.0]
        assert false_alarms[0.3] >= false_alarms[0.0]

    def test_epsilon_raises_nhs_scores(self, rng):
        x, y = overlapping_blobs(rng)
        mean_scores = {}
        for eps in (0.0, 0.3):
            model = make_mlp(3)
            biased_fit(
                model,
                x,
                y,
                np.random.default_rng(3),
                BiasedConfig(base_epochs=8, biased_epochs=8, epsilon=eps),
            )
            mean_scores[eps] = predict_proba(model, x)[y == 0].mean()
        assert mean_scores[0.3] > mean_scores[0.0]

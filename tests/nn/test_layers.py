"""Layer tests, centered on numerical gradient checking.

For every layer we verify d(loss)/d(input) and d(loss)/d(params) against
central finite differences of a scalar probe ``loss = sum(out * probe)``.
"""

import numpy as np
import pytest

from repro.nn import (
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool,
    MaxPool2D,
    ReLU,
)

EPS = 1e-5
RTOL = 1e-4
ATOL = 1e-6


def numerical_grad(f, x):
    """Central-difference gradient of scalar f wrt array x."""
    grad = np.zeros_like(x)
    flat = x.ravel()
    gflat = grad.ravel()
    for k in range(flat.size):
        orig = flat[k]
        flat[k] = orig + EPS
        f_plus = f()
        flat[k] = orig - EPS
        f_minus = f()
        flat[k] = orig
        gflat[k] = (f_plus - f_minus) / (2 * EPS)
    return grad


def check_input_grad(layer, x, rng):
    probe = rng.normal(size=layer.forward(x).shape)
    grad_in = layer.backward(probe)

    def loss():
        return float((layer.forward(x) * probe).sum())

    expected = numerical_grad(loss, x)
    np.testing.assert_allclose(grad_in, expected, rtol=RTOL, atol=ATOL)


def check_param_grads(layer, x, rng):
    probe = rng.normal(size=layer.forward(x).shape)
    for p in layer.params():
        p.zero_grad()
    layer.forward(x)
    layer.backward(probe)
    for p in layer.params():
        def loss(p=p):
            return float((layer.forward(x) * probe).sum())

        expected = numerical_grad(loss, p.value)
        np.testing.assert_allclose(
            p.grad, expected, rtol=RTOL, atol=ATOL, err_msg=p.name
        )


class TestDense:
    def test_forward_known(self, rng):
        layer = Dense(2, 2, rng)
        layer.w.value = np.array([[1.0, 0.0], [0.0, 2.0]])
        layer.b.value = np.array([1.0, -1.0])
        out = layer.forward(np.array([[3.0, 4.0]]))
        np.testing.assert_array_equal(out, [[4.0, 7.0]])

    def test_gradients(self, rng):
        layer = Dense(4, 3, rng)
        x = rng.normal(size=(5, 4))
        check_input_grad(layer, x, rng)
        check_param_grads(layer, x, rng)


class TestConv2D:
    def test_same_shape_stride1(self, rng):
        layer = Conv2D(3, 5, kernel=3, rng=rng)
        out = layer.forward(rng.normal(size=(2, 3, 8, 8)))
        assert out.shape == (2, 5, 8, 8)

    def test_stride2_halves(self, rng):
        layer = Conv2D(1, 2, kernel=2, rng=rng, stride=2, pad=0)
        out = layer.forward(rng.normal(size=(1, 1, 8, 8)))
        assert out.shape == (1, 2, 4, 4)

    def test_gradients(self, rng):
        layer = Conv2D(2, 3, kernel=3, rng=rng)
        x = rng.normal(size=(2, 2, 5, 5))
        check_input_grad(layer, x, rng)
        check_param_grads(layer, x, rng)

    def test_gradients_stride2(self, rng):
        layer = Conv2D(2, 2, kernel=2, rng=rng, stride=2, pad=0)
        x = rng.normal(size=(2, 2, 6, 6))
        check_input_grad(layer, x, rng)
        check_param_grads(layer, x, rng)


class TestReLU:
    def test_forward(self):
        layer = ReLU()
        out = layer.forward(np.array([-1.0, 0.0, 2.0]))
        np.testing.assert_array_equal(out, [0.0, 0.0, 2.0])

    def test_gradient(self, rng):
        layer = ReLU()
        x = rng.normal(size=(4, 6)) + 0.1  # keep away from the kink
        check_input_grad(layer, x, rng)


class TestMaxPool:
    def test_forward_known(self):
        layer = MaxPool2D(2)
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = layer.forward(x)
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_indivisible_raises(self, rng):
        with pytest.raises(ValueError):
            MaxPool2D(3).forward(rng.normal(size=(1, 1, 4, 4)))

    def test_gradient(self, rng):
        layer = MaxPool2D(2)
        # unique values ensure a stable argmax for finite differences
        x = rng.permutation(np.arange(64.0)).reshape(1, 1, 8, 8) * 0.1
        check_input_grad(layer, x, rng)

    def test_backward_routes_to_argmax(self):
        layer = MaxPool2D(2)
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        layer.forward(x)
        grad = layer.backward(np.array([[[[7.0]]]]))
        np.testing.assert_array_equal(grad[0, 0], [[0, 0], [0, 7.0]])


class TestGlobalAvgPool:
    def test_forward(self, rng):
        layer = GlobalAvgPool()
        x = rng.normal(size=(2, 3, 4, 4))
        np.testing.assert_allclose(layer.forward(x), x.mean(axis=(2, 3)))

    def test_gradient(self, rng):
        layer = GlobalAvgPool()
        x = rng.normal(size=(2, 3, 4, 4))
        check_input_grad(layer, x, rng)


class TestFlatten:
    def test_roundtrip(self, rng):
        layer = Flatten()
        x = rng.normal(size=(3, 2, 4, 4))
        out = layer.forward(x)
        assert out.shape == (3, 32)
        grad = layer.backward(out)
        assert grad.shape == x.shape


class TestDropout:
    def test_eval_mode_identity(self, rng):
        layer = Dropout(0.5, rng)
        layer.train_mode(False)
        x = rng.normal(size=(4, 8))
        np.testing.assert_array_equal(layer.forward(x), x)

    def test_train_mode_scales(self, rng):
        layer = Dropout(0.5, rng)
        x = np.ones((2000,))
        out = layer.forward(x)
        # inverted dropout preserves the mean
        assert out.mean() == pytest.approx(1.0, abs=0.1)
        assert set(np.round(np.unique(out), 6)) <= {0.0, 2.0}

    def test_backward_uses_same_mask(self, rng):
        layer = Dropout(0.3, rng)
        x = np.ones((10, 10))
        out = layer.forward(x)
        grad = layer.backward(np.ones_like(x))
        np.testing.assert_array_equal(grad, out)

    def test_bad_p_raises(self, rng):
        with pytest.raises(ValueError):
            Dropout(1.0, rng)


class TestBatchNorm:
    def test_normalizes_batch_2d(self, rng):
        layer = BatchNorm(4)
        x = rng.normal(3.0, 2.0, size=(50, 4))
        out = layer.forward(x)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_normalizes_batch_4d(self, rng):
        layer = BatchNorm(3)
        x = rng.normal(-1.0, 4.0, size=(10, 3, 6, 6))
        out = layer.forward(x)
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-10)

    def test_eval_uses_running_stats(self, rng):
        layer = BatchNorm(2, momentum=0.0)  # running stats = last batch
        x = rng.normal(5.0, 2.0, size=(100, 2))
        layer.forward(x)
        layer.train_mode(False)
        out = layer.forward(x)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=0.1)

    def test_gradients_2d(self, rng):
        layer = BatchNorm(3)
        x = rng.normal(size=(6, 3))
        check_input_grad(layer, x, rng)
        check_param_grads(layer, x, rng)

    def test_gradients_4d(self, rng):
        layer = BatchNorm(2)
        x = rng.normal(size=(3, 2, 4, 4))
        check_input_grad(layer, x, rng)
        check_param_grads(layer, x, rng)

    def test_rejects_3d(self, rng):
        with pytest.raises(ValueError):
            BatchNorm(2).forward(rng.normal(size=(2, 2, 2)))

"""Tests for im2col/col2im."""

import numpy as np
import pytest

from repro.nn.im2col import col2im, conv_out_size, im2col


class TestOutSize:
    def test_same_padding(self):
        assert conv_out_size(12, 3, 1, 1) == 12

    def test_stride(self):
        assert conv_out_size(8, 2, 2, 0) == 4

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            conv_out_size(2, 5, 1, 0)


class TestIm2col:
    def test_shape(self):
        x = np.zeros((2, 3, 8, 8))
        cols = im2col(x, 3, 3, 1, 1)
        assert cols.shape == (2 * 8 * 8, 3 * 9)

    def test_known_values_no_pad(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        cols = im2col(x, 2, 2, 1, 0)  # 3x3 output positions
        assert cols.shape == (9, 4)
        np.testing.assert_array_equal(cols[0], [0, 1, 4, 5])
        np.testing.assert_array_equal(cols[-1], [10, 11, 14, 15])

    def test_padding_zeros(self):
        x = np.ones((1, 1, 2, 2))
        cols = im2col(x, 3, 3, 1, 1)
        # the corner receptive field sees 4 ones and 5 pad zeros
        assert cols[0].sum() == 4

    def test_conv_as_matmul_matches_direct(self):
        rng = np.random.default_rng(0)
        x = rng.random((2, 3, 6, 6))
        w = rng.random((4, 3, 3, 3))
        cols = im2col(x, 3, 3, 1, 1)
        out = (cols @ w.reshape(4, -1).T).reshape(2, 6, 6, 4).transpose(0, 3, 1, 2)
        # direct (slow) convolution reference
        xp = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        ref = np.zeros((2, 4, 6, 6))
        for n in range(2):
            for o in range(4):
                for i in range(6):
                    for j in range(6):
                        ref[n, o, i, j] = (
                            xp[n, :, i : i + 3, j : j + 3] * w[o]
                        ).sum()
        np.testing.assert_allclose(out, ref, rtol=1e-12)


class TestCol2im:
    def test_adjoint_property(self):
        """col2im is the transpose of im2col: <im2col(x), c> == <x, col2im(c)>."""
        rng = np.random.default_rng(1)
        x = rng.random((2, 3, 6, 6))
        cols = im2col(x, 3, 3, 1, 1)
        c = rng.random(cols.shape)
        lhs = (cols * c).sum()
        rhs = (x * col2im(c, x.shape, 3, 3, 1, 1)).sum()
        assert lhs == pytest.approx(rhs, rel=1e-12)

    def test_accumulates_overlaps(self):
        x_shape = (1, 1, 3, 3)
        cols = np.ones((9, 9))  # 3x3 kernel, same padding
        back = col2im(cols, x_shape, 3, 3, 1, 1)
        # center pixel is touched by all 9 receptive fields
        assert back[0, 0, 1, 1] == 9

    def test_stride2_roundtrip_counts(self):
        x_shape = (1, 1, 4, 4)
        cols = np.ones((4, 4))  # 2x2 kernel stride 2: disjoint fields
        back = col2im(cols, x_shape, 2, 2, 2, 0)
        np.testing.assert_array_equal(back[0, 0], np.ones((4, 4)))

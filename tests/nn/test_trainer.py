"""Tests for the training loops."""

import numpy as np
import pytest

from repro.nn import (
    Dense,
    ReLU,
    Sequential,
    SoftTargetTrainer,
    TrainConfig,
    Trainer,
    predict_proba,
    soft_labels_shift,
)


def make_mlp(rng, d=2):
    return Sequential([Dense(d, 16, rng), ReLU(), Dense(16, 2, rng)])


def blobs(rng, n=120):
    x0 = rng.normal(-1.5, 0.7, size=(n // 2, 2))
    x1 = rng.normal(1.5, 0.7, size=(n // 2, 2))
    x = np.vstack([x0, x1]).astype(np.float64)
    y = np.array([0] * (n // 2) + [1] * (n // 2))
    perm = rng.permutation(n)
    return x[perm], y[perm]


class TestTrainer:
    def test_loss_decreases(self, rng):
        x, y = blobs(rng)
        model = make_mlp(rng)
        history = Trainer(TrainConfig(epochs=15, batch_size=16)).fit(
            model, x, y, rng
        )
        assert history.epochs_run == 15
        assert history.train_loss[-1] < history.train_loss[0]

    def test_learns_blobs(self, rng):
        x, y = blobs(rng)
        model = make_mlp(rng)
        Trainer(TrainConfig(epochs=20, batch_size=16)).fit(model, x, y, rng)
        probs = predict_proba(model, x)
        assert (((probs >= 0.5).astype(int)) == y).mean() >= 0.95

    def test_validation_tracked(self, rng):
        x, y = blobs(rng, n=160)
        model = make_mlp(rng)
        history = Trainer(TrainConfig(epochs=5)).fit(
            model, x[:120], y[:120], rng, x_val=x[120:], y_val=y[120:]
        )
        assert len(history.val_loss) == 5
        assert len(history.val_accuracy) == 5

    def test_early_stopping_can_trigger(self, rng):
        x, y = blobs(rng, n=160)
        model = make_mlp(rng)
        config = TrainConfig(epochs=60, early_stop_patience=2, lr=5e-3)
        history = Trainer(config).fit(
            model, x[:120], y[:120], rng, x_val=x[120:], y_val=y[120:]
        )
        assert history.epochs_run <= 60

    def test_class_weights_accepted(self, rng):
        x, y = blobs(rng)
        model = make_mlp(rng)
        Trainer(
            TrainConfig(epochs=3), class_weights=(1.0, 5.0)
        ).fit(model, x, y, rng)

    def test_bad_config_raises(self):
        with pytest.raises(ValueError):
            TrainConfig(epochs=0)

    def test_custom_optimizer_factory(self, rng):
        from repro.nn import SGD

        x, y = blobs(rng)
        model = make_mlp(rng)
        trainer = Trainer(
            TrainConfig(epochs=5),
            make_optimizer=lambda params: SGD(params, lr=0.05),
        )
        history = trainer.fit(model, x, y, rng)
        assert history.train_loss[-1] < history.train_loss[0]


class TestPredictProba:
    def test_batched_equals_full(self, rng):
        x, y = blobs(rng)
        model = make_mlp(rng)
        Trainer(TrainConfig(epochs=2)).fit(model, x, y, rng)
        a = predict_proba(model, x, batch_size=7)
        b = predict_proba(model, x, batch_size=1000)
        np.testing.assert_allclose(a, b, rtol=1e-12)

    def test_eval_mode_restored(self, rng):
        model = make_mlp(rng)
        predict_proba(model, rng.normal(size=(4, 2)))
        assert all(layer.training for layer in model.layers)


class TestSoftTargetTrainer:
    def test_loss_decreases(self, rng):
        x, y = blobs(rng)
        targets = soft_labels_shift(y, 0.2)
        model = make_mlp(rng)
        history = SoftTargetTrainer(TrainConfig(epochs=10)).fit(
            model, x, targets, rng
        )
        assert history.train_loss[-1] < history.train_loss[0]

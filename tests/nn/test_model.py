"""Tests for the Sequential container and persistence."""

import numpy as np
import pytest

from repro.nn import BatchNorm, Conv2D, Dense, Flatten, MaxPool2D, ReLU, Sequential


@pytest.fixture
def model(rng):
    return Sequential(
        [
            Conv2D(1, 4, kernel=3, rng=rng),
            BatchNorm(4),
            ReLU(),
            MaxPool2D(2),
            Flatten(),
            Dense(4 * 4 * 4, 2, rng=rng),
        ]
    )


class TestSequential:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            Sequential([])

    def test_forward_shape(self, model, rng):
        out = model.forward(rng.normal(size=(3, 1, 8, 8)))
        assert out.shape == (3, 2)

    def test_params_collected(self, model):
        # conv w/b + bn gamma/beta + dense w/b
        assert len(model.params()) == 6
        assert model.n_parameters() > 0

    def test_train_mode_propagates(self, model):
        model.train_mode(False)
        assert all(not layer.training for layer in model.layers)

    def test_end_to_end_gradient(self, model, rng):
        """Full-stack backward against finite differences on one weight."""
        x = rng.normal(size=(4, 1, 8, 8))
        probe = rng.normal(size=(4, 2))

        def loss():
            return float((model.forward(x) * probe).sum())

        model.forward(x)
        for p in model.params():
            p.zero_grad()
        model.backward(probe)
        dense_w = model.params()[-2]
        k = 7  # arbitrary weight index
        eps = 1e-5
        orig = dense_w.value.ravel()[k]
        dense_w.value.ravel()[k] = orig + eps
        f_plus = loss()
        dense_w.value.ravel()[k] = orig - eps
        f_minus = loss()
        dense_w.value.ravel()[k] = orig
        numeric = (f_plus - f_minus) / (2 * eps)
        assert dense_w.grad.ravel()[k] == pytest.approx(numeric, rel=1e-4)


class TestPersistence:
    def test_save_load_roundtrip(self, model, rng, tmp_path):
        x = rng.normal(size=(2, 1, 8, 8))
        model.forward(x)  # populate batchnorm running stats
        model.train_mode(False)
        before = model.forward(x)
        path = tmp_path / "model.npz"
        model.save(path)

        fresh = Sequential(
            [
                Conv2D(1, 4, kernel=3, rng=np.random.default_rng(999)),
                BatchNorm(4),
                ReLU(),
                MaxPool2D(2),
                Flatten(),
                Dense(64, 2, rng=np.random.default_rng(999)),
            ]
        )
        fresh.load(path)
        fresh.train_mode(False)
        after = fresh.forward(x)
        np.testing.assert_allclose(before, after, rtol=1e-12)

    def test_shape_mismatch_raises(self, model, rng, tmp_path):
        path = tmp_path / "model.npz"
        model.save(path)
        other = Sequential([Dense(3, 2, rng=rng)])
        with pytest.raises((ValueError, KeyError)):
            other.load(path)

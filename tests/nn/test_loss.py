"""Tests for losses: values, gradients, class weighting, soft targets."""

import numpy as np
import pytest

from repro.nn import (
    SoftmaxCrossEntropy,
    SoftTargetCrossEntropy,
    soft_labels_shift,
    softmax,
)


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        p = softmax(rng.normal(size=(10, 2)) * 5)
        np.testing.assert_allclose(p.sum(axis=1), 1.0)

    def test_stable_for_large_logits(self):
        p = softmax(np.array([[1000.0, 999.0]]))
        assert np.isfinite(p).all()
        assert p[0, 0] > p[0, 1]


class TestSoftmaxCrossEntropy:
    def test_perfect_prediction_near_zero(self):
        loss = SoftmaxCrossEntropy()
        logits = np.array([[20.0, -20.0], [-20.0, 20.0]])
        labels = np.array([0, 1])
        assert loss.forward(logits, labels) < 1e-6

    def test_uniform_prediction_is_log2(self):
        loss = SoftmaxCrossEntropy()
        logits = np.zeros((4, 2))
        labels = np.array([0, 1, 0, 1])
        assert loss.forward(logits, labels) == pytest.approx(np.log(2.0))

    def test_rejects_non_binary_head(self):
        with pytest.raises(ValueError):
            SoftmaxCrossEntropy().forward(np.zeros((2, 3)), np.array([0, 1]))

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            SoftmaxCrossEntropy().backward()

    def test_gradient_numerically(self, rng):
        loss = SoftmaxCrossEntropy()
        logits = rng.normal(size=(5, 2))
        labels = rng.integers(0, 2, 5)
        loss.forward(logits, labels)
        grad = loss.backward()
        eps = 1e-6
        for i in range(5):
            for j in range(2):
                lp = logits.copy()
                lp[i, j] += eps
                lm = logits.copy()
                lm[i, j] -= eps
                num = (
                    SoftmaxCrossEntropy().forward(lp, labels)
                    - SoftmaxCrossEntropy().forward(lm, labels)
                ) / (2 * eps)
                assert grad[i, j] == pytest.approx(num, rel=1e-4, abs=1e-8)

    def test_class_weights_reweigh_loss(self):
        logits = np.array([[0.0, 0.0], [0.0, 0.0]])
        labels = np.array([0, 1])
        plain = SoftmaxCrossEntropy().forward(logits, labels)
        # weighting hotspots 3x leaves the mean unchanged for symmetric
        # logits (weights are normalized), but changes the gradient split
        weighted = SoftmaxCrossEntropy(class_weights=(1.0, 3.0))
        weighted_loss = weighted.forward(logits, labels)
        assert weighted_loss == pytest.approx(plain)
        grad = weighted.backward()
        assert abs(grad[1]).sum() > abs(grad[0]).sum()

    def test_weighted_gradient_numerically(self, rng):
        loss = SoftmaxCrossEntropy(class_weights=(0.5, 2.0))
        logits = rng.normal(size=(4, 2))
        labels = np.array([0, 1, 1, 0])
        loss.forward(logits, labels)
        grad = loss.backward()
        eps = 1e-6
        for i in range(4):
            for j in range(2):
                lp = logits.copy(); lp[i, j] += eps
                lm = logits.copy(); lm[i, j] -= eps
                ref = SoftmaxCrossEntropy(class_weights=(0.5, 2.0))
                num = (ref.forward(lp, labels) - ref.forward(lm, labels)) / (2 * eps)
                assert grad[i, j] == pytest.approx(num, rel=1e-4, abs=1e-8)


class TestSoftLabels:
    def test_shift_only_nonhotspots(self):
        labels = np.array([0, 1, 0])
        targets = soft_labels_shift(labels, 0.2)
        np.testing.assert_allclose(targets[1], [0.0, 1.0])
        np.testing.assert_allclose(targets[0], [0.8, 0.2])
        np.testing.assert_allclose(targets.sum(axis=1), 1.0)

    def test_epsilon_zero_is_hard(self):
        labels = np.array([0, 1])
        targets = soft_labels_shift(labels, 0.0)
        np.testing.assert_array_equal(targets, [[1.0, 0.0], [0.0, 1.0]])

    def test_bad_epsilon_raises(self):
        with pytest.raises(ValueError):
            soft_labels_shift(np.array([0, 1]), 0.5)
        with pytest.raises(ValueError):
            soft_labels_shift(np.array([0, 1]), -0.1)


class TestSoftTargetCrossEntropy:
    def test_matches_hard_ce_on_hard_targets(self, rng):
        logits = rng.normal(size=(6, 2))
        labels = rng.integers(0, 2, 6)
        hard = SoftmaxCrossEntropy().forward(logits, labels)
        soft = SoftTargetCrossEntropy().forward(
            logits, soft_labels_shift(labels, 0.0)
        )
        assert soft == pytest.approx(hard)

    def test_gradient_numerically(self, rng):
        logits = rng.normal(size=(4, 2))
        targets = soft_labels_shift(np.array([0, 1, 0, 1]), 0.3)
        loss = SoftTargetCrossEntropy()
        loss.forward(logits, targets)
        grad = loss.backward()
        eps = 1e-6
        for i in range(4):
            for j in range(2):
                lp = logits.copy(); lp[i, j] += eps
                lm = logits.copy(); lm[i, j] -= eps
                ref = SoftTargetCrossEntropy()
                num = (ref.forward(lp, targets) - ref.forward(lm, targets)) / (
                    2 * eps
                )
                assert grad[i, j] == pytest.approx(num, rel=1e-4, abs=1e-8)

"""Tests for SGD and Adam on analytic objectives."""

import numpy as np
import pytest

from repro.nn import SGD, Adam
from repro.nn.init import Param


def quadratic_step(optimizer, params, target):
    """One gradient step on sum((p - target)^2)."""
    optimizer.zero_grad()
    for p in params:
        p.grad += 2 * (p.value - target)
    optimizer.step()


class TestSGD:
    def test_converges_on_quadratic(self):
        p = Param(np.array([10.0, -10.0]))
        opt = SGD([p], lr=0.1, momentum=0.0)
        for _ in range(200):
            quadratic_step(opt, [p], 3.0)
        np.testing.assert_allclose(p.value, 3.0, atol=1e-6)

    def test_momentum_accelerates(self):
        losses = {}
        for momentum in (0.0, 0.9):
            p = Param(np.array([10.0]))
            opt = SGD([p], lr=0.01, momentum=momentum)
            for _ in range(50):
                quadratic_step(opt, [p], 0.0)
            losses[momentum] = abs(float(p.value[0]))
        assert losses[0.9] < losses[0.0]

    def test_weight_decay_shrinks(self):
        p = Param(np.array([5.0]))
        opt = SGD([p], lr=0.1, momentum=0.0, weight_decay=0.5)
        opt.zero_grad()  # zero gradient: only decay acts
        opt.step()
        assert abs(p.value[0]) < 5.0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SGD([Param(np.zeros(1))], lr=0.0)
        with pytest.raises(ValueError):
            SGD([Param(np.zeros(1))], lr=0.1, momentum=1.0)

    def test_zero_grad_clears(self):
        p = Param(np.ones(3))
        opt = SGD([p], lr=0.1)
        p.grad += 5.0
        opt.zero_grad()
        np.testing.assert_array_equal(p.grad, 0.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Param(np.array([10.0, -4.0]))
        opt = Adam([p], lr=0.2)
        for _ in range(300):
            quadratic_step(opt, [p], 1.5)
        np.testing.assert_allclose(p.value, 1.5, atol=1e-4)

    def test_first_step_size_is_lr(self):
        """With bias correction, |first step| == lr regardless of grad scale."""
        for scale in (1e-3, 1.0, 1e3):
            p = Param(np.array([0.0]))
            opt = Adam([p], lr=0.1)
            opt.zero_grad()
            p.grad += scale
            opt.step()
            assert abs(p.value[0]) == pytest.approx(0.1, rel=1e-3)

    def test_handles_sparse_directions(self):
        """Adam adapts per-dimension: both coordinates converge."""
        p = Param(np.array([100.0, 0.001]))
        opt = Adam([p], lr=0.5)
        for _ in range(600):
            opt.zero_grad()
            p.grad += 2 * p.value * np.array([1.0, 100.0])  # ill-conditioned
            opt.step()
        # without lr decay Adam settles into a limit cycle of ~lr size
        np.testing.assert_allclose(p.value, 0.0, atol=0.2)

    def test_weight_decay_decoupled(self):
        p = Param(np.array([5.0]))
        opt = Adam([p], lr=0.1, weight_decay=0.5)
        opt.zero_grad()
        opt.step()  # zero grad: decay only (plus epsilon-sized Adam step)
        assert abs(p.value[0]) < 5.0

"""Detect -> correct -> re-verify: closing the DFM loop with rule-based OPC.

Run with::

    python examples/hotspot_repair.py

Finds hotspots in a generated clip population with the lithography oracle,
applies the rule-based OPC moves (isolated-wire biasing + line-end
hammerheads), and re-verifies.  Reports the fix rate per defect kind —
the survey's "what happens after detection" pointer made concrete.
"""

import collections

import numpy as np

from repro.data import FamilyMix, generate_clips
from repro.litho import HotspotOracle, OPCRules, correct_clip


def main():
    rng = np.random.default_rng(11)
    oracle = HotspotOracle()
    mix = FamilyMix(
        weights={
            "isolated_wire": 2.0,
            "tip_pair": 1.0,
            "grating": 1.0,
            "l_corners": 1.0,
        },
        marginal_p={},
        default_marginal_p=0.5,  # deliberately hotspot-rich
    )
    print("generating a hotspot-rich clip population...")
    clips, _specs = generate_clips(rng, mix, 150)

    print("labeling with the lithography oracle...")
    analyses = [oracle.analyze(c) for c in clips]
    hotspots = [
        (clip, a) for clip, a in zip(clips, analyses) if a.is_hotspot
    ]
    print(f"  {len(hotspots)}/{len(clips)} clips are hotspots\n")

    rules = OPCRules(iso_bias_nm=16, hammer_extend_nm=24, hammer_overhang_nm=16)
    print("applying rule-based OPC (edge bias + hammerheads) and re-verifying...")
    fixed = 0
    by_kind = collections.Counter()
    fixed_by_kind = collections.Counter()
    for clip, analysis in hotspots:
        kinds = analysis.defect_kinds
        by_kind.update(kinds)
        corrected = correct_clip(clip, rules)
        if not oracle.analyze(corrected).is_hotspot:
            fixed += 1
            fixed_by_kind.update(kinds)

    print(f"\n  fixed {fixed}/{len(hotspots)} hotspots "
          f"({100 * fixed / max(len(hotspots), 1):.0f}%)\n")
    print("  per defect kind (a hotspot may carry several):")
    for kind in sorted(by_kind):
        total = by_kind[kind]
        got = fixed_by_kind[kind]
        print(f"    {kind:8s} {got:3d}/{total:3d} fixed")
    print(
        "\n  (necks/opens on isolated wires respond to edge bias; tip "
        "pullback to hammerheads;\n   bridges/spots need spacing moves the "
        "rule set deliberately does not attempt)"
    )


if __name__ == "__main__":
    main()

"""Process-window exploration of a marginal pattern.

Run with::

    python examples/process_window.py

Shows the physics behind the labels: a tip-to-tip pattern is printed
across a dose x defocus grid, and the printed topology is tracked.  The
pattern prints fine at nominal but bridges at high dose / fails at strong
defocus — exactly why a clip can be DRC-clean yet be a hotspot.
"""

import numpy as np

from repro.geometry import Layer, Rect, extract_clip
from repro.litho import LithoSimulator

DOSES = (0.92, 0.96, 1.0, 1.04, 1.08)
DEFOCUS = (0.0, 24.0, 48.0)


def tip_pair_clip(gap_nm):
    layer = Layer("metal1")
    x_end = 600 - gap_nm // 2
    layer.add_rects(
        [Rect(96, 568, x_end, 632), Rect(x_end + gap_nm, 568, 1104, 632)]
    )
    return extract_clip(layer, (600, 600), 768, 256, tag=f"t2t-{gap_nm}")


def ascii_print(printed, step=3):
    """Coarse ASCII rendering of the printed raster (top row first)."""
    sub = printed[::step, ::step]
    return ["".join("#" if v else "." for v in row) for row in sub[::-1]]


def main():
    sim = LithoSimulator()
    print(f"resist threshold (calibrated): {sim.resist.threshold:.3f}")
    print(f"principal optics blur sigma:   {sim.optics.base_sigma_nm:.1f} nm\n")

    for gap in (96, 32, 24):
        clip = tip_pair_clip(gap)
        print(f"=== tip-to-tip gap {gap} nm ===")
        print("   dose ->", "  ".join(f"{d:5.2f}" for d in DOSES))
        for defocus in DEFOCUS:
            cells = []
            for dose in DOSES:
                n = sim.printed_component_count(clip, dose=dose, defocus_nm=defocus)
                if n == 0:
                    cells.append("OPEN ")  # nothing printed
                elif n == 1:
                    cells.append("SHORT")  # tips merged: bridge
                elif n == 2:
                    cells.append("  ok ")
                else:
                    cells.append("SPOT ")  # spurious extra printing
            print(f"   defocus {defocus:4.0f}nm  " + "  ".join(cells))
        band = sim.pv_band(clip, doses=DOSES, defocus_values_nm=DEFOCUS)
        print(f"   PV-band area: {int(band.sum())} px "
              f"({100 * band.mean():.1f}% of the window)\n")

    print("=== print of the 24 nm gap pattern at dose +8% (center rows) ===")
    clip = tip_pair_clip(24)
    printed = sim.print_clip(clip, dose=1.08)
    lines = ascii_print(printed)
    mid = len(lines) // 2
    for line in lines[mid - 3 : mid + 3]:
        print("   " + line)


if __name__ == "__main__":
    main()

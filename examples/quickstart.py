"""Quickstart: simulate a clip, label it, train a detector, evaluate.

Run with::

    python examples/quickstart.py

Walks the full pipeline in miniature:

1. build two layout clips by hand — a comfortable grating and a marginal
   tight-spacing pair,
2. run the lithography oracle on both and print the verdicts,
3. generate a small labeled benchmark and train the CCAS SVM on it,
4. evaluate on the held-out test split and print the contest metrics.
"""

import numpy as np

from repro.api import (
    HotspotOracle,
    Layer,
    Rect,
    evaluate_detector,
    extract_clip,
    make_benchmark,
)
from repro.data import BenchmarkConfig, FamilyMix
from repro.shallow import make_svm_ccas


def build_clip(rects, tag):
    layer = Layer("metal1")
    layer.add_rects(rects)
    return extract_clip(layer, (600, 600), window_size=768, core_size=256, tag=tag)


def main():
    print("=== 1. lithography oracle on two hand-built clips ===")
    comfortable = build_clip(
        [Rect(88 + i * 128, 96, 88 + i * 128 + 64, 1104) for i in range(8)],
        tag="dense 64/128 grating",
    )
    marginal = build_clip(
        [Rect(504, 96, 568, 1104), Rect(608, 96, 672, 1104)],
        tag="two wires at 40 nm spacing",
    )
    oracle = HotspotOracle()
    for clip in (comfortable, marginal):
        analysis = oracle.analyze(clip)
        verdict = "HOTSPOT" if analysis.is_hotspot else "clean"
        kinds = ", ".join(analysis.defect_kinds) or "none"
        print(f"  {clip.tag:32s} -> {verdict:8s} (defects: {kinds})")

    print("\n=== 2. generate a small labeled benchmark ===")
    config = BenchmarkConfig(
        name="demo",
        n_train=120,
        n_test=120,
        mix=FamilyMix(
            weights={"grating": 2.0, "tip_pair": 1.0, "isolated_wire": 1.0},
            marginal_p={},
            default_marginal_p=0.3,
        ),
    )
    bench = make_benchmark(config, seed=7, oracle=oracle)
    print(" ", bench.summary())

    print("\n=== 3. train the CCAS SVM and evaluate ===")
    detector = make_svm_ccas()
    result = evaluate_detector(detector, bench, rng=np.random.default_rng(0))
    print(f"  accuracy (hotspot recall): {100 * result.accuracy:.1f}%")
    print(f"  false alarms:              {result.false_alarms}")
    print(f"  precision:                 {100 * result.confusion.precision:.1f}%")
    print(f"  AUC:                       {result.auc:.3f}")
    print(f"  train time:                {result.fit_seconds:.2f}s")
    print(f"  test time:                 {result.predict_seconds:.2f}s")


if __name__ == "__main__":
    main()

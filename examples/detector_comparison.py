"""From shallow to deep: compare all three detector generations.

Run with::

    python examples/detector_comparison.py

Generates one benchmark and runs pattern matching, the CCAS SVM, AdaBoost,
the CNN, and an ensemble of the learned detectors — then prints the
contest-style comparison table.  A one-file version of the paper's story.
"""

import numpy as np

from repro.api import evaluate_detector, make_benchmark
from repro.bench import format_table
from repro.core import SoftVoteEnsemble
from repro.data import BenchmarkConfig, FamilyMix
from repro.nn import CNNDetector, CNNDetectorConfig
from repro.shallow import (
    make_adaboost_density,
    make_pattern_exact,
    make_pattern_fuzzy,
    make_svm_ccas,
)


def main():
    config = BenchmarkConfig(
        name="cmp",
        n_train=250,
        n_test=250,
        mix=FamilyMix(
            weights={
                "grating": 1.5,
                "comb": 1.0,
                "tip_pair": 1.0,
                "l_corners": 1.0,
                "isolated_wire": 0.5,
            },
            marginal_p={},
            default_marginal_p=0.18,
        ),
    )
    print("generating benchmark (lithography-labeled)...")
    bench = make_benchmark(config, seed=2017)
    print(" ", bench.summary(), "\n")

    detectors = [
        ("gen 1", make_pattern_exact()),
        ("gen 1", make_pattern_fuzzy()),
        ("gen 2", make_adaboost_density()),
        ("gen 2", make_svm_ccas()),
        ("gen 3", CNNDetector(CNNDetectorConfig(epochs=10, width=20))),
        (
            "gen 2+3",
            SoftVoteEnsemble(
                [
                    make_svm_ccas(),
                    CNNDetector(CNNDetectorConfig(epochs=10, width=20)),
                ],
                name="svm+cnn-ensemble",
            ),
        ),
    ]

    rows = []
    for generation, det in detectors:
        print(f"running {det.name} ...")
        result = evaluate_detector(det, bench, rng=np.random.default_rng(1))
        rows.append(
            {
                "generation": generation,
                "detector": det.name,
                "accuracy_%": round(100 * result.accuracy, 1),
                "false_alarms": result.false_alarms,
                "precision_%": round(100 * result.confusion.precision, 1),
                "auc": None if result.auc is None else round(result.auc, 3),
                "odst_s": round(result.odst_seconds, 1),
            }
        )

    print("\n" + format_table(rows, title="From shallow to deep"))


if __name__ == "__main__":
    main()

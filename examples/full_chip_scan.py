"""Full-chip hotspot scan: tile a layout into clips and sweep a detector.

Run with::

    python examples/full_chip_scan.py

The intro scenario of every hotspot-detection paper: a routed block is too
large for exhaustive lithography simulation, so a fast learned detector
sweeps all clip windows and only the flagged ones go to simulation.

This example:

1. synthesizes a routed-block layout with seeded marginal geometries
   (:func:`repro.data.synthesize_routed_block`),
2. trains the CNN detector on a generated benchmark,
3. sweeps the block with :class:`repro.api.ScanEngine` (dedup cache +
   live progress heartbeats via :class:`repro.api.EngineConfig`),
   verifying flagged windows with the lithography oracle,
4. prints the hotspot heat-map, the simulation-savings ratio, and how
   many of the seeded marginal spots the scan recovered.
"""

import numpy as np

from repro.api import (
    EngineConfig,
    HotspotOracle,
    Rect,
    ScanEngine,
    make_benchmark,
)
from repro.data import (
    BenchmarkConfig,
    FamilyMix,
    RoutedBlockConfig,
    seeded_recall,
    synthesize_routed_block,
)
from repro.nn import CNNDetector, CNNDetectorConfig

BLOCK = Rect(0, 0, 6144, 6144)


def main():
    rng = np.random.default_rng(42)
    print("=== synthesizing a 6.1 x 6.1 um routed block ===")
    layer, seeded = synthesize_routed_block(
        rng, BLOCK, RoutedBlockConfig(n_marginal=6)
    )
    print(f"  {len(layer.polygons)} polygons, {len(seeded)} marginal spots seeded")

    print("\n=== training the CNN detector on a generated benchmark ===")
    config = BenchmarkConfig(
        name="scan-train",
        n_train=200,
        n_test=50,
        mix=FamilyMix(
            weights={"grating": 1.0, "random_routing": 2.0, "tip_pair": 1.0},
            marginal_p={},
            default_marginal_p=0.25,
        ),
    )
    bench = make_benchmark(config, seed=3)
    # a generous false-alarm budget: scanning prefers recall, the litho
    # verification step cleans up the extra flags cheaply
    detector = CNNDetector(CNNDetectorConfig(epochs=8, width=16, fa_cap=0.3))
    detector.fit(bench.train, rng=rng)
    print(f"  trained on {bench.train.summary()}")

    print("\n=== sweeping the block (verified with litho-sim) ===")
    oracle = HotspotOracle()
    engine = ScanEngine(
        detector, config=EngineConfig.from_kwargs(progress="stderr")
    )
    result = engine.scan(layer, BLOCK, oracle=oracle)
    print(
        f"  {len(result.clips)} clip windows, {result.n_flagged} flagged "
        f"({100 * result.flag_ratio:.0f}% of full simulation cost), "
        f"{100 * result.dedup_ratio:.0f}% resolved by the dedup cache"
    )
    confirmed = int(result.confirmed.sum()) if result.confirmed is not None else 0
    print(f"  confirmed hotspots: {confirmed}")
    recall = seeded_recall(seeded, result.hotspot_regions())
    print(f"  seeded-spot recall: {100 * recall:.0f}%")

    print("\n  hotspot heat-map ('#' flagged, '+' warm, '.' cold):")
    grid = result.heat_map()
    for row in grid[::-1]:
        line = "".join(
            "#" if s >= detector.threshold else "+" if s >= 0.2 else "."
            for s in row
        )
        print("   " + line)


if __name__ == "__main__":
    main()
